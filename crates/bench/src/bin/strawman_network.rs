//! Extension experiment **E9**: network-aware straw-man bounds (Section
//! III-B's proposed refinement of Table VII).
//!
//! Adds per-processor injection bandwidth (default: 0.1 B/flop, Blue
//! Gene/Q-class balance) to the three straw men and reports
//! `max(T_flop, T_comm)` per application, flagging which resource binds.
//!
//! Run with `cargo run --release -p exareq-bench --bin strawman_network`.

use exareq_bench::write_report;
use exareq_codesign::{analyze_with_network, catalog, default_network, table_six};

fn main() {
    let systems = table_six();
    let network = default_network(&systems);
    let mut out = String::new();
    out.push_str("== E9: network-aware wall-time lower bounds ==\n");
    out.push_str("injection bandwidth per processor (0.1 B/flop balance):\n");
    for n in &network {
        out.push_str(&format!("  {:<20} {:.1e} B/s\n", n.system, n.bytes_per_sec));
    }
    out.push('\n');

    for app in catalog::paper_models() {
        match analyze_with_network(&app, &systems, &network) {
            None => out.push_str(&format!(
                "== {} ==\n  excluded (cannot fill every system)\n\n",
                app.name
            )),
            Some(res) => {
                out.push_str(&format!("== {} ==\n", app.name));
                out.push_str(&format!(
                    "  {:<20} {:>12} {:>12} {:>12} {:>10}\n",
                    "system", "T_flop [s]", "T_comm [s]", "bound [s]", "binds"
                ));
                for o in &res {
                    out.push_str(&format!(
                        "  {:<20} {:>12.3} {:>12.3} {:>12.3} {:>10}\n",
                        o.system,
                        o.t_flop,
                        o.t_comm,
                        o.t_bound,
                        if o.network_bound {
                            "network"
                        } else {
                            "compute"
                        }
                    ));
                }
                out.push('\n');
            }
        }
    }
    out.push_str(
        "Findings beyond Table VII: MILC's requirement balance (1e9·n comm\n\
         bytes per 1e10·n flops = 0.1 B/F) sits exactly at the machine balance\n\
         — the classic bytes-to-flop reasoning of the paper's introduction\n\
         reproduced from fitted models. Relearn, compute-bound in Table VII,\n\
         becomes *network-bound everywhere*: its 10·Alltoall(p) term, invisible\n\
         at measurement scale, grows linearly in p and dominates at p ≈ 10⁹ —\n\
         exactly the class of surprise the requirements method exists to catch.\n",
    );
    print!("{out}");
    write_report("strawman_network.txt", &out);
}
