//! Regenerates **Table II**: per-process requirement models of the five
//! study applications, from measurement to model, and compares the fitted
//! lead exponents against the published table.
//!
//! Run with `cargo run --release -p exareq-bench --bin table2`.

use exareq::pipeline::model_requirements;
use exareq_apps::AppGrid;
use exareq_bench::{all_surveys, fmt_exp, paper_lead_exponents, repro_config, write_report};
use exareq_codesign::report::render_requirements;
use exareq_core::collective::render_comm_rows;

fn main() {
    let grid = AppGrid::default();
    println!(
        "== Table II reproduction ==\nmeasurement grid: p = {:?}, n = {:?}\n",
        grid.p_values, grid.n_values
    );
    let cfg = repro_config();
    let mut out = String::new();
    let mut matches = 0usize;
    let mut total = 0usize;

    for survey in all_surveys(&grid) {
        let modeled =
            model_requirements(&survey, &cfg).unwrap_or_else(|e| panic!("{}: {e}", survey.app));

        out.push_str(&render_requirements(&modeled.requirements));
        out.push_str("  communication by collective:\n");
        for row in render_comm_rows(&modeled.comm_symbolic) {
            out.push_str(&format!("    {row}\n"));
        }

        // Paper-vs-measured lead exponents.
        out.push_str("  lead exponents vs paper (p-side | n-side):\n");
        let r = &modeled.requirements;
        let measured = [
            ("#Bytes used", &r.bytes_used),
            ("#FLOP", &r.flops),
            ("#Bytes sent & received", &r.comm_bytes),
            ("#Loads & stores", &r.loads_stores),
            ("Stack distance", &r.stack_distance),
        ];
        for (label, pp, pn) in paper_lead_exponents(&survey.app) {
            let model = measured
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, m)| *m)
                .expect("metric present");
            let mp = model.dominant_exponents(0);
            let mn = model.dominant_exponents(1);
            let ok = mp == pp && mn == pn;
            total += 1;
            if ok {
                matches += 1;
            }
            out.push_str(&format!(
                "    {:<24} measured {:<18} | {:<18} paper {:<18} | {:<18} {}\n",
                label,
                fmt_exp(mp, "p"),
                fmt_exp(mn, "n"),
                fmt_exp(pp, "p"),
                fmt_exp(pn, "n"),
                if ok { "MATCH" } else { "DIFF" }
            ));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "lead-exponent agreement with Table II: {matches}/{total}\n"
    ));
    print!("{out}");
    write_report("table2.txt", &out);
}
