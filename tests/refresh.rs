//! End-to-end tests of the online refresh loop: a real `exareq serve`
//! subprocess fed `POST /observations` over raw TCP.
//!
//! The contracts under test are the refresh subsystem's headline
//! promises:
//!
//! - an acknowledged observation is **durable** — a `SIGKILL` after the
//!   200 loses nothing, and a restarted daemon resumes the journal
//!   (truncating at most one torn tail line);
//! - a staleness-triggered refit **atomically republishes** the artifact
//!   — the registry generation bumps, `/predict` grows confidence
//!   intervals, and a kill at any point leaves a parseable artifact;
//! - a daemon with journaled observations still drains on SIGTERM and
//!   exits 0.

#![cfg(unix)]

use exareq::codesign::catalog;
use exareq::serve::artifact;
use exareq::signal::{send_signal, SIGTERM};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A daemon subprocess bound to an ephemeral port, killed on drop so a
/// failing test never leaks a listener.
struct Daemon {
    child: Child,
    addr: String,
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A model dir holding only the Kripke artifact (`flops = 1e7·n`), so
/// every refit in these tests fits one well-known truth shape.
fn model_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("exareq_refresh_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("model dir");
    let app = catalog::kripke();
    std::fs::write(
        dir.join("kripke.json"),
        artifact::requirements_to_string(&app),
    )
    .expect("write artifact");
    dir
}

fn spawn_daemon(dir: &std::path::Path, extra: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_exareq"))
        .arg("serve")
        .arg("--model-dir")
        .arg(dir)
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn exareq serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut ready = String::new();
    reader.read_line(&mut ready).expect("readable stdout");
    let addr = ready
        .strip_prefix("serving on ")
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected ready line: {ready}"))
        .to_string();
    Daemon {
        child,
        addr,
        _stdout: reader,
    }
}

/// One raw HTTP exchange; returns (status, body as text).
fn http(addr: &str, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no head terminator in {response:?}"));
    let head = String::from_utf8_lossy(&response[..head_end]);
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head}"));
    (
        status,
        String::from_utf8_lossy(&response[head_end + 4..]).into_owned(),
    )
}

fn get(addr: &str, target: &str) -> (u16, String) {
    http(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: &str, target: &str, body: &str) -> (u16, String) {
    http(
        addr,
        format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Posts one flops observation for Kripke; returns the 200 body.
fn observe(addr: &str, p: f64, n: f64, value: f64) -> String {
    let body = format!(r#"{{"model":"Kripke","metric":"flops","p":{p},"n":{n},"value":{value}}}"#);
    let (status, body) = post(addr, "/observations", &body);
    assert_eq!(status, 200, "{body}");
    body
}

/// The shifted truth the observations report: 1.25× the served Kripke
/// flops model, so refits have something real to converge to.
fn truth(p: f64, n: f64) -> f64 {
    catalog::kripke().flops.eval(&[p, n]) * 1.25
}

/// The two-axis observation sweep that carries a coarse full re-search:
/// five p values at the base n, then four more n values at the base p.
fn sweep() -> Vec<(f64, f64)> {
    let mut configs: Vec<(f64, f64)> = [2.0, 4.0, 8.0, 16.0, 32.0]
        .iter()
        .map(|&p| (p, 64.0))
        .collect();
    configs.extend([128.0, 256.0, 512.0, 1024.0].iter().map(|&n| (2.0, n)));
    configs
}

/// JSON field extraction without a parser dependency: the number after
/// `"key":` in a minijson-rendered body.
fn field_f64(body: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let rest = &body[body.find(&pat).unwrap_or_else(|| panic!("{key} in {body}")) + pat.len()..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|_| panic!("{key} numeric in {body}"))
}

#[test]
fn observations_trigger_refits_that_bump_generation_and_narrow_predictions() {
    let dir = model_dir("refit");
    let mut daemon = spawn_daemon(
        &dir,
        &[
            "--refresh-min-points",
            "6",
            "--refresh-full-every",
            "9",
            "--refresh-cv-drift",
            "5",
        ],
    );

    let (_, models) = get(&daemon.addr, "/models");
    let generation_before = field_f64(&models, "generation");

    // Before any refit, /predict has no confidence member.
    let (status, body) = post(
        &daemon.addr,
        "/predict",
        r#"{"model":"Kripke","p":8,"n":256}"#,
    );
    assert_eq!(status, 200);
    assert!(!body.contains("ci95_rel"), "{body}");

    let mut last = String::new();
    for (i, &(p, n)) in sweep().iter().enumerate() {
        last = observe(&daemon.addr, p, n, truth(p, n));
        assert_eq!(field_f64(&last, "observations") as usize, i + 1, "{last}");
    }
    // The ninth observation trips the count trigger: a full re-search
    // republished the artifact and reset the staleness counter.
    assert!(last.contains("\"refit\":\"full\""), "{last}");
    assert_eq!(field_f64(&last, "since_full_refit"), 0.0, "{last}");
    assert!(
        field_f64(&last, "generation") > generation_before,
        "a published refit must bump the registry generation: {last}"
    );

    // The swap is served: /predict now tracks the shifted truth and
    // carries the confidence interval from the refit's LOO residuals.
    let (status, body) = post(
        &daemon.addr,
        "/predict",
        r#"{"model":"Kripke","p":8,"n":2048}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("ci95_rel"), "{body}");
    let served = field_f64(&body, "flops");
    let want = truth(8.0, 2048.0);
    assert!(
        (served - want).abs() / want < 0.05,
        "served flops {served} must track the observed truth {want}"
    );

    // /models surfaces the staleness row and the quality block.
    let (_, models) = get(&daemon.addr, "/models");
    assert!(field_f64(&models, "generation") > generation_before);
    assert_eq!(field_f64(&models, "observed"), 9.0, "{models}");
    assert_eq!(field_f64(&models, "since_full_refit"), 0.0, "{models}");
    assert!(models.contains("\"quality\":"), "{models}");
    assert!(models.contains("\"cv_smape\":"), "{models}");

    // /metrics exposes the refresh counters and the staleness gauge.
    let (_, metrics) = get(&daemon.addr, "/metrics");
    assert!(
        metrics.contains("refresh_observations_total 9"),
        "{metrics}"
    );
    assert!(
        metrics.contains("refresh_refits_total{kind=\"full\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("refresh_model_staleness{model=\"Kripke\"} 0"),
        "{metrics}"
    );

    // A daemon with journaled observations still drains clean on SIGTERM.
    assert!(send_signal(daemon.child.id(), SIGTERM), "deliver SIGTERM");
    let started = Instant::now();
    let status = loop {
        if let Some(status) = daemon.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "daemon failed to exit after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0), "a drained shutdown exits 0");
}

#[test]
fn sigkill_after_acknowledgement_loses_nothing_and_leaves_whole_artifacts() {
    let dir = model_dir("sigkill");
    // Aggressive policy: every observation past the sixth refits and
    // rewrites the artifact, so the SIGKILL lands as close to an
    // artifact swap as the wire allows.
    let flags = [
        "--refresh-min-points",
        "6",
        "--refresh-full-every",
        "9",
        "--refresh-cv-drift",
        "5",
    ];
    let acked = {
        let mut daemon = spawn_daemon(&dir, &flags);
        let mut acked = 0u64;
        for &(p, n) in &sweep() {
            observe(&daemon.addr, p, n, truth(p, n));
            acked += 1;
        }
        // SIGKILL immediately after the ack of a full-refit observation:
        // no drain, no atexit — whatever is on disk is what survives.
        daemon.child.kill().expect("SIGKILL");
        daemon.child.wait().expect("reap");
        acked
    };

    // The restarted daemon resumes the journal: every acknowledged
    // observation is still counted, the artifact parses (no registry
    // errors), and the refitted model is still the one served.
    let daemon = spawn_daemon(&dir, &flags);
    let (_, models) = get(&daemon.addr, "/models");
    assert!(
        models.contains("\"errors\":[]"),
        "torn artifact after SIGKILL: {models}"
    );
    assert_eq!(
        field_f64(&models, "observed"),
        acked as f64,
        "an acknowledged observation must survive SIGKILL: {models}"
    );
    assert_eq!(field_f64(&models, "since_full_refit"), 0.0, "{models}");
    let (status, body) = post(
        &daemon.addr,
        "/predict",
        r#"{"model":"Kripke","p":8,"n":2048}"#,
    );
    assert_eq!(status, 200, "{body}");
    let served = field_f64(&body, "flops");
    let want = truth(8.0, 2048.0);
    assert!(
        (served - want).abs() / want < 0.05,
        "the refitted artifact must survive the kill: served {served}, want {want}"
    );
}

#[test]
fn torn_journal_tail_is_truncated_on_restart_and_appends_resume() {
    let dir = model_dir("torn");
    let flags = ["--refresh-min-points", "6"];
    {
        let daemon = spawn_daemon(&dir, &flags);
        for (i, &(p, n)) in sweep()[..4].iter().enumerate() {
            let body = observe(&daemon.addr, p, n, truth(p, n));
            assert_eq!(field_f64(&body, "observations") as usize, i + 1);
        }
        // Daemon killed on drop — a crash, not a drain.
    }

    // Simulate a torn append: a write that died mid-line, no newline.
    let journal = dir.join("kripke.obs.jsonl");
    assert!(journal.exists(), "journal must sit next to the artifact");
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .expect("open journal");
    f.write_all(b"{\"coords\":[16,51").expect("torn tail");
    drop(f);

    // Restart: the torn line is truncated, the four whole ones survive,
    // and the journal accepts new appends exactly where it left off.
    let daemon = spawn_daemon(&dir, &flags);
    let (_, models) = get(&daemon.addr, "/models");
    assert_eq!(field_f64(&models, "observed"), 4.0, "{models}");
    let body = observe(&daemon.addr, 16.0, 64.0, truth(16.0, 64.0));
    assert_eq!(field_f64(&body, "observations"), 5.0, "{body}");
    let (_, models) = get(&daemon.addr, "/models");
    assert_eq!(field_f64(&models, "observed"), 5.0, "{models}");
}

#[test]
fn exareq_plan_ranks_the_journal_into_a_measurement_plan() {
    let dir = model_dir("plan");
    {
        let daemon = spawn_daemon(&dir, &["--refresh-min-points", "6"]);
        for &(p, n) in &sweep() {
            observe(&daemon.addr, p, n, truth(p, n));
        }
    }

    // The offline planner reads the daemon's journal sibling-named next
    // to the artifact and ranks the unmeasured lattice.
    let out = Command::new(env!("CARGO_BIN_EXE_exareq"))
        .args(["plan", "--artifact"])
        .arg(dir.join("kripke.json"))
        .args([
            "--p",
            "2,4,8,16,32,64",
            "--n",
            "64,128,256,512,1024,4096",
            "--top",
            "3",
            "--json",
        ])
        .output()
        .expect("run exareq plan");
    assert!(
        out.status.success(),
        "plan failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 3, "--top 3 emits three candidates: {stdout}");
    for line in &lines {
        assert!(line.contains("\"score\":"), "{line}");
        assert!(line.contains("\"leverage\":"), "{line}");
    }
    // The top pick is an unmeasured extrapolation-leaning config, never
    // one of the nine already-journaled ones.
    let already: Vec<String> = sweep()
        .iter()
        .map(|(p, n)| format!("\"p\":{p},\"n\":{n}"))
        .collect();
    for line in &lines {
        assert!(
            !already.iter().any(|k| line.contains(k.as_str())),
            "plan must not re-measure a journaled config: {line}"
        );
    }
}
