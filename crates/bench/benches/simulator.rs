//! Performance of the message-passing simulator (P1): collective
//! operations across rank counts and payload sizes, and raw point-to-point
//! message throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use exareq_sim::run_ranks;
use std::hint::black_box;

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(20);
    for p in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("allreduce_1k_doubles", p), &p, |b, &p| {
            b.iter(|| {
                let r = run_ranks(p, |rank| {
                    let mut v = vec![1.0f64; 1024];
                    rank.allreduce_sum(&mut v);
                    v[0]
                });
                black_box(r[0].value)
            });
        });
        g.bench_with_input(BenchmarkId::new("bcast_64KiB", p), &p, |b, &p| {
            b.iter(|| {
                let r = run_ranks(p, |rank| {
                    let payload = vec![7u8; 64 * 1024];
                    rank.bcast(0, &payload).len()
                });
                black_box(r[0].value)
            });
        });
        g.bench_with_input(BenchmarkId::new("alltoall_1KiB_blocks", p), &p, |b, &p| {
            b.iter(|| {
                let r = run_ranks(p, |rank| {
                    let blocks: Vec<Vec<u8>> = (0..p).map(|_| vec![0u8; 1024]).collect();
                    rank.alltoall(&blocks).len()
                });
                black_box(r[0].value)
            });
        });
    }
    g.finish();
}

fn bench_p2p(c: &mut Criterion) {
    let mut g = c.benchmark_group("point_to_point");
    g.sample_size(20);
    for msg in [1usize << 10, 1 << 16, 1 << 20] {
        g.throughput(Throughput::Bytes(100 * msg as u64));
        g.bench_with_input(BenchmarkId::new("pingpong_100x", msg), &msg, |b, &msg| {
            b.iter(|| {
                let r = run_ranks(2, |rank| {
                    let buf = vec![0u8; msg];
                    for i in 0..50u64 {
                        if rank.rank() == 0 {
                            rank.send(1, i, &buf);
                            let _ = rank.recv(1, i + 1000);
                        } else {
                            let _ = rank.recv(0, i);
                            rank.send(0, i + 1000, &buf);
                        }
                    }
                    rank.stats().total()
                });
                black_box(r[0].value)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives, bench_p2p);
criterion_main!(benches);
