//! Miss-ratio curves from stack-distance distributions.
//!
//! Section II-D's cache narrative — "as long as the problem size is small
//! enough that all matrices fit in the cache, performance will remain at a
//! constant high … eventually all accesses to B will be cache misses" — is
//! the classic stack-distance argument: under LRU, an access misses a
//! fully-associative cache of capacity `C` lines exactly when its stack
//! distance is ≥ `C`. This module turns collected samples into that curve,
//! letting the co-designer read off, per cache size, which instruction
//! groups fall out first.

use crate::sampler::GroupSamples;
use serde::{Deserialize, Serialize};

/// A miss-ratio curve: for each capacity, the fraction of (sampled, warm)
/// accesses that would miss an LRU cache of that capacity. Cold
/// (first-touch) accesses can be included as compulsory misses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRatioCurve {
    /// Evaluated capacities (in distinct-line units), ascending.
    pub capacities: Vec<u64>,
    /// Miss ratio at each capacity, in `[0, 1]`.
    pub miss_ratios: Vec<f64>,
}

impl MissRatioCurve {
    /// Miss ratio at an arbitrary capacity (step interpolation; capacities
    /// outside the evaluated range clamp to the ends).
    pub fn at(&self, capacity: u64) -> f64 {
        if self.capacities.is_empty() {
            return 0.0;
        }
        match self.capacities.binary_search(&capacity) {
            Ok(i) => self.miss_ratios[i],
            Err(0) => self.miss_ratios[0],
            Err(i) => self.miss_ratios[i - 1],
        }
    }

    /// The smallest evaluated capacity whose miss ratio drops to or below
    /// `target` — "how much cache does this loop need".
    pub fn capacity_for(&self, target: f64) -> Option<u64> {
        self.capacities
            .iter()
            .zip(&self.miss_ratios)
            .find(|(_, &m)| m <= target)
            .map(|(&c, _)| c)
    }
}

/// Computes the miss-ratio curve of one instruction group at the given
/// capacities (sorted ascending internally).
///
/// `include_cold` counts first-touch accesses as compulsory misses at
/// every capacity (the usual convention); warm accesses miss when their
/// stack distance ≥ capacity.
pub fn miss_ratio_curve(
    group: &GroupSamples,
    capacities: &[u64],
    include_cold: bool,
) -> MissRatioCurve {
    let mut caps: Vec<u64> = capacities.to_vec();
    caps.sort_unstable();
    caps.dedup();

    // Sort distances once; misses at capacity C = #(sd ≥ C) via binary
    // search.
    let mut sd = group.stack.clone();
    sd.sort_unstable();
    let warm = sd.len() as f64;
    let cold = if include_cold { group.cold as f64 } else { 0.0 };
    let total = warm + cold;

    let ratios = caps
        .iter()
        .map(|&c| {
            if total == 0.0 {
                return 0.0;
            }
            let first_hit = sd.partition_point(|&d| d < c);
            let warm_misses = warm - first_hit as f64;
            (warm_misses + cold) / total
        })
        .collect();
    MissRatioCurve {
        capacities: caps,
        miss_ratios: ratios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{BurstSampler, BurstSchedule};

    fn cyclic_group(window: u64, passes: usize) -> GroupSamples {
        let mut s = BurstSampler::new(BurstSchedule::always());
        let g = s.register_group("cyclic");
        for _ in 0..passes {
            for i in 0..window {
                s.access(g, i);
            }
        }
        s.groups()[g].clone()
    }

    #[test]
    fn cyclic_pattern_has_a_cliff() {
        // Cyclic reuse over 64 addresses: SD of every warm access is 63.
        // Caches of ≥ 64 lines hit everything; smaller ones miss everything
        // — the LRU pathology.
        let g = cyclic_group(64, 4);
        let curve = miss_ratio_curve(&g, &[16, 32, 63, 64, 128], false);
        assert_eq!(curve.at(16), 1.0);
        assert_eq!(curve.at(63), 1.0);
        assert_eq!(curve.at(64), 0.0);
        assert_eq!(curve.at(128), 0.0);
        assert_eq!(curve.capacity_for(0.05), Some(64));
    }

    #[test]
    fn cold_misses_are_compulsory() {
        let g = cyclic_group(64, 4);
        // 64 cold + 192 warm accesses; with cold included, even an infinite
        // cache misses 64/256 = 25%.
        let curve = miss_ratio_curve(&g, &[1024], true);
        assert!((curve.at(1024) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mixed_distances_step_down() {
        let g = GroupSamples {
            name: "mixed".into(),
            stack: vec![2, 2, 2, 50, 50, 1000],
            reuse: vec![],
            accesses: 6,
            cold: 0,
        };
        let curve = miss_ratio_curve(&g, &[1, 3, 51, 1001], false);
        assert_eq!(curve.at(1), 1.0); // everything misses a 1-line cache
        assert!((curve.at(3) - 0.5).abs() < 1e-12); // the three 2s now hit
        assert!((curve.at(51) - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(curve.at(1001), 0.0);
        // Step interpolation clamps.
        assert_eq!(curve.at(0), 1.0);
        assert!((curve.at(500) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_group_yields_zeros() {
        let g = GroupSamples::default();
        let curve = miss_ratio_curve(&g, &[4, 8], false);
        assert_eq!(curve.miss_ratios, vec![0.0, 0.0]);
        assert_eq!(curve.capacity_for(0.0), Some(4));
    }

    #[test]
    fn capacity_for_unreachable_target() {
        let g = cyclic_group(64, 3);
        let curve = miss_ratio_curve(&g, &[8, 16], false);
        assert_eq!(curve.capacity_for(0.5), None);
    }
}
