//! Property-based verification of the compiled PMNF representation:
//! lowering an arbitrary model must preserve `eval` **bit-for-bit** —
//! the serve daemon's `/predict` and `/predict_batch` contract is
//! byte-identity with the direct library call, and that only holds if
//! the compiled evaluator reproduces the interpreted fold exactly.

use exareq::core::compiled::CompiledModel;
use exareq::core::pmnf::{Exponents, Model, Term};
use proptest::prelude::*;

/// An exponent pair off the fitter's coarse grid, plus the constant
/// pair — the compiled form elides constant factors, and that elision
/// must stay bit-exact.
fn grid_exponents() -> impl Strategy<Value = Exponents> {
    (0usize..7, 0usize..3).prop_map(|(i, j)| Exponents::new(i as f64 * 0.5, j as f64))
}

/// A term over `arity` parameters with a coefficient spanning signs and
/// magnitudes (requirement metrics are nonnegative, but bit-identity
/// must not depend on that).
fn term(arity: usize) -> impl Strategy<Value = Term> {
    (
        prop_oneof![-1e9f64..1e9, -1.0f64..1.0, Just(0.0f64)],
        proptest::collection::vec(grid_exponents(), arity),
    )
        .prop_map(|(coeff, factors)| Term::new(coeff, factors))
}

/// An arbitrary PMNF model: 1–3 parameters, 0–5 terms (zero terms is
/// the degraded constant model the twin-model fallback produces).
fn model() -> impl Strategy<Value = Model> {
    (1usize..=3).prop_flat_map(|arity| {
        (
            -1e6f64..1e6,
            proptest::collection::vec(term(arity), 0..=5),
            Just(arity),
        )
            .prop_map(|(constant, terms, arity)| {
                let params = ["p", "n", "m"][..arity]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
                Model::new(constant, terms, params)
            })
    })
}

/// Coordinates covering the clamp region (`x < 1`), the usual scaling
/// ranges, and extreme configurations.
fn coords(arity: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![0.0f64..1.0, 1.0f64..1e6, 1e6f64..1e12, Just(1.0f64)],
        arity,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core contract: for any model and any coordinates, the
    /// compiled evaluation returns the *same bits* as the interpreted
    /// one — not merely approximately equal.
    #[test]
    fn compiled_eval_is_bit_identical_to_interpreted(
        m in model(),
    ) {
        let compiled = CompiledModel::lower(&m);
        prop_assert_eq!(compiled.arity(), m.params.len());
        // A handful of deterministic probe points per generated model.
        let probes: Vec<Vec<f64>> = vec![
            vec![1.0; m.params.len()],
            vec![0.5; m.params.len()],
            vec![2.0; m.params.len()],
            vec![1e6; m.params.len()],
            (0..m.params.len()).map(|i| 2f64.powi(i as i32 + 3)).collect(),
        ];
        for point in &probes {
            let interpreted = m.eval(point);
            let fast = compiled.eval(point);
            prop_assert_eq!(
                interpreted.to_bits(),
                fast.to_bits(),
                "model {:?} at {:?}: {} vs {}",
                &m, point, interpreted, fast
            );
        }
    }

    /// Same bit-identity under independently drawn coordinates, so the
    /// clamp region and extreme scales are explored jointly with the
    /// model structure.
    #[test]
    fn compiled_eval_matches_on_random_coordinates(
        (m, point) in model().prop_flat_map(|m| {
            let arity = m.params.len();
            (Just(m), coords(arity))
        }),
    ) {
        let compiled = CompiledModel::lower(&m);
        prop_assert_eq!(
            m.eval(&point).to_bits(),
            compiled.eval(&point).to_bits(),
            "model {:?} at {:?}", &m, &point
        );
    }

    /// Lowering elides exactly the constant (`x^0·log^0`) factors — the
    /// compression that makes batch evaluation cheap — and nothing else.
    #[test]
    fn lowering_keeps_only_non_constant_factors(m in model()) {
        let compiled = CompiledModel::lower(&m);
        let expected: usize = m
            .terms
            .iter()
            .flat_map(|t| &t.factors)
            .filter(|f| !f.is_constant())
            .count();
        prop_assert_eq!(compiled.factors().len(), expected);
        prop_assert_eq!(compiled.terms().len(), m.terms.len());
    }

    /// Lowering is deterministic: two independent lowerings evaluate to
    /// the same bits everywhere probed.
    #[test]
    fn lowering_is_deterministic(
        (m, point) in model().prop_flat_map(|m| {
            let arity = m.params.len();
            (Just(m), coords(arity))
        }),
    ) {
        let a = CompiledModel::lower(&m);
        let b = CompiledModel::lower(&m);
        prop_assert_eq!(a.eval(&point).to_bits(), b.eval(&point).to_bits());
    }
}

#[test]
fn degraded_constant_model_compiles_and_matches() {
    // The twin-model fallback ships constant models with zero terms;
    // they must survive lowering untouched.
    let m = Model::constant(42.5, vec!["p".to_string(), "n".to_string()]);
    let compiled = CompiledModel::lower(&m);
    for point in [[2.0, 64.0], [0.1, 0.2], [1e9, 1e9]] {
        assert_eq!(m.eval(&point).to_bits(), compiled.eval(&point).to_bits());
    }
    assert!(compiled.terms().is_empty());
    assert!(compiled.factors().is_empty());
}
