//! System skeletons and relative upgrades (Section II-E, Table III).
//!
//! A *system skeleton* characterizes a machine only by the process count it
//! hosts and the memory available per process; everything else about the
//! system is derived from the requirements the target application exposes
//! through the skeleton.

use serde::{Deserialize, Serialize};

/// The minimal system characterization of the co-design method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemSkeleton {
    /// Number of (potentially multithreaded) MPI processes the system
    /// hosts — the paper's rule of thumb: one per socket.
    pub processes: f64,
    /// Memory available per process, in bytes.
    pub mem_per_process: f64,
}

impl SystemSkeleton {
    /// Creates a skeleton.
    pub fn new(processes: f64, mem_per_process: f64) -> Self {
        SystemSkeleton {
            processes,
            mem_per_process,
        }
    }

    /// The reference large system used for the upgrade study: 10⁶ sockets
    /// with 6.4 GB per process. Chosen so that (a) every study application,
    /// including icoFoam with its `p·log p` footprint term, can still fill
    /// the machine, and (b) the published Table II coefficients put each
    /// application in the asymptotic regime the paper's Table V numbers
    /// reflect (e.g. icoFoam's problem-per-process ratio of 0.5 under
    /// upgrade A falls out exactly at this provisioning).
    pub fn reference_large() -> Self {
        SystemSkeleton::new(1e6, 6.4e9)
    }

    /// Total memory of the system.
    pub fn total_memory(&self) -> f64 {
        self.processes * self.mem_per_process
    }
}

/// A relative system upgrade: multiplies the process count and the memory
/// per process (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Upgrade {
    /// Short name (Table III letter).
    pub name: &'static str,
    /// Description as in Table III.
    pub description: &'static str,
    /// Factor on the process count.
    pub p_factor: f64,
    /// Factor on the memory per process.
    pub m_factor: f64,
}

impl Upgrade {
    /// Upgrade A: double the racks — twice the processes, same memory per
    /// process.
    pub const DOUBLE_RACKS: Upgrade = Upgrade {
        name: "A",
        description: "Double the racks",
        p_factor: 2.0,
        m_factor: 1.0,
    };

    /// Upgrade B: double the sockets per node — twice the processes, half
    /// the memory per process.
    pub const DOUBLE_SOCKETS: Upgrade = Upgrade {
        name: "B",
        description: "Double the sockets",
        p_factor: 2.0,
        m_factor: 0.5,
    };

    /// Upgrade C: double the memory — same processes, twice the memory per
    /// process.
    pub const DOUBLE_MEMORY: Upgrade = Upgrade {
        name: "C",
        description: "Double the memory",
        p_factor: 1.0,
        m_factor: 2.0,
    };

    /// The three upgrades of Table III, in order.
    pub const ALL: [Upgrade; 3] = [
        Upgrade::DOUBLE_RACKS,
        Upgrade::DOUBLE_SOCKETS,
        Upgrade::DOUBLE_MEMORY,
    ];

    /// Applies the upgrade to a skeleton.
    pub fn apply(&self, s: &SystemSkeleton) -> SystemSkeleton {
        SystemSkeleton {
            processes: s.processes * self.p_factor,
            mem_per_process: s.mem_per_process * self.m_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_three_factors() {
        let base = SystemSkeleton::new(100.0, 10.0);
        let a = Upgrade::DOUBLE_RACKS.apply(&base);
        assert_eq!((a.processes, a.mem_per_process), (200.0, 10.0));
        let b = Upgrade::DOUBLE_SOCKETS.apply(&base);
        assert_eq!((b.processes, b.mem_per_process), (200.0, 5.0));
        let c = Upgrade::DOUBLE_MEMORY.apply(&base);
        assert_eq!((c.processes, c.mem_per_process), (100.0, 20.0));
    }

    #[test]
    fn doubling_racks_doubles_total_memory() {
        let base = SystemSkeleton::reference_large();
        assert_eq!(
            Upgrade::DOUBLE_RACKS.apply(&base).total_memory(),
            2.0 * base.total_memory()
        );
        // Doubling sockets keeps total memory constant.
        assert_eq!(
            Upgrade::DOUBLE_SOCKETS.apply(&base).total_memory(),
            base.total_memory()
        );
    }

    #[test]
    fn all_upgrades_ordered() {
        let names: Vec<&str> = Upgrade::ALL.iter().map(|u| u.name).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }
}
