//! The Section II-D walk-through: how locality modeling distinguishes a
//! locality-preserving implementation (blocked matrix multiply) from a
//! locality-degrading one (naïve matrix multiply).
//!
//! Run with `cargo run --release --example locality_mmm`.

use exareq::apps::mmm::{blocked_mmm, naive_mmm};
use exareq::core::fit::{fit_single, FitConfig};
use exareq::core::measurement::Experiment;
use exareq::locality::{miss_ratio_curve, BurstSampler, BurstSchedule};

fn main() {
    println!("=== Naive MMM (Listing 1): locality degrades with matrix size ===");
    let mut exp_a = Experiment::new(vec!["n"]);
    let mut exp_b = Experiment::new(vec!["n"]);
    for n in [8usize, 16, 24, 32, 40, 48] {
        let mut sampler = BurstSampler::new(BurstSchedule::always());
        let (groups, _) = naive_mmm(n, &mut sampler);
        let sd_a = sampler.groups()[groups.a].median_stack().unwrap();
        let sd_b = sampler.groups()[groups.b].median_stack().unwrap();
        let rd_b = sampler.groups()[groups.b].median_reuse().unwrap();
        println!("  n = {n:>3}: SD(A) = {sd_a:>5}  SD(B) = {sd_b:>6}  RD(B) = {rd_b:>6}");
        exp_a.push(&[n as f64], sd_a);
        exp_b.push(&[n as f64], sd_b);
    }
    let cfg = FitConfig::default();
    let model_a = fit_single(&exp_a, &cfg).expect("fit A");
    let model_b = fit_single(&exp_b, &cfg).expect("fit B");
    println!("  model SD(A) = {}   (paper: ≈ 2n)", model_a.model);
    println!("  model SD(B) = {}   (paper: n² + 2n − 1)", model_b.model);

    println!("\n=== Blocked MMM (Listing 2): locality depends only on the block ===");
    for b in [2usize, 4, 8] {
        let n = 32;
        let mut sampler = BurstSampler::new(BurstSchedule::always());
        let (groups, _) = blocked_mmm(n, b, &mut sampler);
        let sd_a = sampler.groups()[groups.a].median_stack().unwrap();
        let sd_b = sampler.groups()[groups.b].median_stack().unwrap();
        let sd_c = sampler.groups()[groups.c].median_stack().unwrap();
        println!(
            "  n = {n}, b = {b}: SD(A) = {sd_a:>4}  SD(B) = {sd_b:>5}  SD(C) = {sd_c}   \
             (paper: 2b+1 = {}, ~2b²+b = {}, 2)",
            2 * b + 1,
            2 * b * b + b
        );
    }
    // Same block, growing matrix: distances must not move.
    let b = 4;
    print!("  b = {b} fixed, n sweep:");
    for n in [16usize, 32, 64] {
        let mut sampler = BurstSampler::new(BurstSchedule::always());
        let (groups, _) = blocked_mmm(n, b, &mut sampler);
        print!(
            "  n={n} → SD(B)={}",
            sampler.groups()[groups.b].median_stack().unwrap()
        );
    }
    println!();
    // The cache consequence (Section II-D's narrative, quantified): miss
    // ratios of group B against cache capacity, naive vs blocked.
    println!("\n=== Miss-ratio curves for B (n = 32): what a cache would see ===");
    let caps: Vec<u64> = vec![8, 32, 128, 512, 2048, 8192];
    let mut s_naive = BurstSampler::new(BurstSchedule::always());
    let (gn, _) = naive_mmm(32, &mut s_naive);
    let naive_curve = miss_ratio_curve(&s_naive.groups()[gn.b], &caps, false);
    let mut s_blocked = BurstSampler::new(BurstSchedule::always());
    let (gb, _) = blocked_mmm(32, 4, &mut s_blocked);
    let blocked_curve = miss_ratio_curve(&s_blocked.groups()[gb.b], &caps, false);
    println!("  capacity   naive miss%   blocked miss%");
    for &c in &caps {
        println!(
            "  {c:>8}   {:>10.1}%   {:>12.1}%",
            naive_curve.at(c) * 100.0,
            blocked_curve.at(c) * 100.0
        );
    }

    println!(
        "\nConclusion (paper): both variants execute the same FLOPs, but only the\n\
         blocked variant keeps stack distances independent of the matrix size —\n\
         larger problems will not raise its pressure on the memory subsystem."
    );
}
