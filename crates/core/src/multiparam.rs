//! Multi-parameter model generation (the CLUSTER'16 "fast multi-parameter
//! modeling" algorithm, Eq. 2 of the paper).
//!
//! The algorithm first models each parameter in isolation on axis-aligned
//! slices of the measurement grid (other parameters held at their smallest
//! value), keeps the best `k` single-parameter hypotheses per parameter, and
//! then searches over *compound* hypotheses that combine the per-parameter
//! candidate factors additively and multiplicatively, e.g. for `f(p, n)`:
//!
//! ```text
//! c₀ + c₁·g(n)·h(p)              (multiplicative)
//! c₀ + c₁·g(n) + c₂·h(p)        (additive)
//! c₀ + c₁·g(n)·h(p) + c₂·g(n)  (mixed)
//! ```
//!
//! Coefficients are refitted on the full grid and the winner is selected by
//! leave-one-out cross-validation, exactly as in the single-parameter case.

use crate::cancel::CancelToken;
use crate::fit::{rank_single_cancellable, FitConfig, FitError, FittedModel};
use crate::linalg::{lstsq, Matrix};
use crate::measurement::{Aggregation, Experiment};
use crate::pmnf::{Exponents, Model, Term};
use crate::quality::{adjusted_r_squared, r_squared, smape};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration for multi-parameter model generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiParamConfig {
    /// Single-parameter fitting configuration used on the axis slices.
    pub single: FitConfig,
    /// How many single-parameter hypotheses to keep per parameter.
    pub k_candidates: usize,
    /// Maximum number of compound terms in the final model.
    pub max_compound_terms: usize,
}

impl Default for MultiParamConfig {
    fn default() -> Self {
        MultiParamConfig {
            single: FitConfig::default(),
            k_candidates: 3,
            max_compound_terms: 3,
        }
    }
}

impl MultiParamConfig {
    /// Coarse variant for fast tests.
    pub fn coarse() -> Self {
        MultiParamConfig {
            single: FitConfig::coarse(),
            k_candidates: 2,
            max_compound_terms: 3,
        }
    }
}

/// A compound candidate term: one optional factor per parameter.
#[derive(Debug, Clone, PartialEq)]
struct CompoundTerm {
    /// One factor per parameter (constant factor = parameter absent).
    factors: Vec<Exponents>,
    /// Candidate rank: 0 if every factor came from the best single-parameter
    /// model of its axis, otherwise the worst (largest) factor rank used.
    rank: usize,
}

impl CompoundTerm {
    fn basis(&self, coords: &[f64]) -> f64 {
        self.factors
            .iter()
            .zip(coords)
            .map(|(f, &x)| f.eval(x))
            .product()
    }
}

/// Builds the candidate compound-term pool from per-parameter factor lists.
///
/// For every non-empty subset `S` of parameters and every choice of one
/// candidate factor per parameter in `S`, the pool contains the product term
/// `Π_{l∈S} f_l(x_l)`.
fn build_term_pool(per_param: &[Vec<(Exponents, usize)>]) -> Vec<CompoundTerm> {
    let m = per_param.len();
    let mut pool: Vec<CompoundTerm> = Vec::new();
    // Iterate over subsets via bitmask (m is small: 2 or 3 in practice).
    for mask in 1u32..(1 << m) {
        // Cartesian product over chosen parameters.
        let chosen: Vec<usize> = (0..m).filter(|&l| mask & (1 << l) != 0).collect();
        let mut idx = vec![0usize; chosen.len()];
        loop {
            let mut factors = vec![Exponents::constant(); m];
            let mut rank = 0usize;
            for (pos, &l) in chosen.iter().enumerate() {
                let (f, r) = per_param[l][idx[pos]];
                factors[l] = f;
                rank = rank.max(r);
            }
            let t = CompoundTerm { factors, rank };
            if !pool.iter().any(|x| x.factors == t.factors) {
                pool.push(t);
            }
            // Odometer.
            let mut done = true;
            for pos in (0..chosen.len()).rev() {
                idx[pos] += 1;
                if idx[pos] < per_param[chosen[pos]].len() {
                    done = false;
                    break;
                }
                idx[pos] = 0;
            }
            if done {
                break;
            }
        }
    }
    pool
}

/// Enumerates subsets of `pool` indices of size 1..=max_size.
fn enumerate_subsets(pool_len: usize, max_size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    fn rec(
        start: usize,
        pool_len: usize,
        max: usize,
        stack: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if !stack.is_empty() {
            out.push(stack.clone());
        }
        if stack.len() == max {
            return;
        }
        for i in start..pool_len {
            stack.push(i);
            rec(i + 1, pool_len, max, stack, out);
            stack.pop();
        }
    }
    rec(0, pool_len, max_size, &mut stack, &mut out);
    out
}

#[derive(Clone)]
struct ScoredMulti {
    terms: Vec<CompoundTerm>,
    coeffs: Vec<f64>,
    cv_smape: f64,
    in_smape: f64,
}

fn growth_key_multi(terms: &[CompoundTerm]) -> f64 {
    terms
        .iter()
        .flat_map(|t| t.factors.iter())
        .map(|f| f.poly + 0.01 * f.log)
        .sum::<f64>()
        + terms.len() as f64 * 1e-3
}

/// Total order mirroring `fit::cmp_scored`: raw CV SMAPE, then fewer
/// terms, then slower growth.
fn better_multi(a: &ScoredMulti, b: &ScoredMulti) -> bool {
    a.cv_smape
        .partial_cmp(&b.cv_smape)
        .expect("scores are finite")
        .then_with(|| a.terms.len().cmp(&b.terms.len()))
        .then_with(|| {
            growth_key_multi(&a.terms)
                .partial_cmp(&growth_key_multi(&b.terms))
                .expect("growth keys are finite")
        })
        == std::cmp::Ordering::Less
}

fn score_multi(
    coords: &[Vec<f64>],
    ys: &[f64],
    terms: &[CompoundTerm],
    nonneg: bool,
) -> Option<ScoredMulti> {
    let n = ys.len();
    let k = terms.len() + 1;
    if n < k + 1 {
        return None;
    }
    let mut a = Matrix::zeros(n, k);
    for r in 0..n {
        a[(r, 0)] = 1.0;
        for (c, t) in terms.iter().enumerate() {
            a[(r, c + 1)] = t.basis(&coords[r]);
        }
    }
    let coeffs = lstsq(&a, ys).ok()?;
    if nonneg && coeffs[1..].iter().any(|&c| c < 0.0) {
        return None;
    }
    let pred = a.mul_vec(&coeffs);
    let in_smape = smape(&pred, ys);

    let mut cv_pred = vec![0.0; n];
    for i in 0..n {
        let mut sa = Matrix::zeros(n - 1, k);
        let mut sy = Vec::with_capacity(n - 1);
        let mut rr = 0;
        for j in 0..n {
            if j == i {
                continue;
            }
            for c in 0..k {
                sa[(rr, c)] = a[(j, c)];
            }
            sy.push(ys[j]);
            rr += 1;
        }
        let c = lstsq(&sa, &sy).ok()?;
        cv_pred[i] = (0..k).map(|col| a[(i, col)] * c[col]).sum();
    }
    let cv_smape = smape(&cv_pred, ys);
    if !cv_smape.is_finite() || !in_smape.is_finite() {
        return None;
    }
    Some(ScoredMulti {
        terms: terms.to_vec(),
        coeffs,
        cv_smape,
        in_smape,
    })
}

/// Fits a multi-parameter PMNF model to an experiment over ≥2 parameters.
///
/// Falls back to [`rank_single`]-based fitting for one-parameter
/// experiments, so callers can use it uniformly.
///
/// # Errors
/// Returns [`FitError`] if any axis slice has too few points or no compound
/// hypothesis fits.
pub fn fit_multi(exp: &Experiment, cfg: &MultiParamConfig) -> Result<FittedModel, FitError> {
    fit_multi_cancellable(exp, cfg, &CancelToken::new())
}

/// [`fit_multi`] with a cooperative cancellation token.
///
/// The token is probed between the per-axis single-parameter searches
/// (which also probe it between their own hypothesis waves) and once more
/// before the compound-hypothesis scoring pass, so a long multi-parameter
/// search stops within one wave of a preemption request.
///
/// # Errors
/// Everything [`fit_multi`] returns, plus [`FitError::Cancelled`] when the
/// token fires mid-search.
pub fn fit_multi_cancellable(
    exp: &Experiment,
    cfg: &MultiParamConfig,
    cancel: &CancelToken,
) -> Result<FittedModel, FitError> {
    let m = exp.arity();
    if m == 1 {
        return crate::fit::fit_single_cancellable(exp, &cfg.single, cancel);
    }
    // Degraded measurements never feed the fit; the point-count guards
    // below apply to what survives.
    let (clean, _dropped) = exp.split_clean();
    let agg = clean.aggregated(Aggregation::Mean);

    // Step 1: per-parameter candidate factors from axis slices, tagged
    // with the rank of the slice model they came from — factors of the
    // best model are rank 0, the runner-up's rank 1, and so on.
    let mut per_param: Vec<Vec<(Exponents, usize)>> = Vec::with_capacity(m);
    for l in 0..m {
        let slice = agg.slice_for_param(l);
        let ranked = rank_single_cancellable(&slice, &cfg.single, cfg.k_candidates, cancel)?;
        let mut factors: Vec<(Exponents, usize)> = Vec::new();
        for (rank, fm) in ranked.iter().enumerate() {
            for t in &fm.model.terms {
                let f = t.factors[0];
                if !f.is_constant() && !factors.iter().any(|(x, _)| *x == f) {
                    factors.push((f, rank));
                }
            }
        }
        if factors.is_empty() {
            // Parameter looks constant on its slice; still offer the mildest
            // growth candidates so interactions can be discovered, plus keep
            // "absent" as the default (subset enumeration handles absence).
            factors.push((Exponents::new(1.0, 0.0), 1));
            factors.push((Exponents::new(0.0, 1.0), 1));
        }
        factors.truncate((cfg.k_candidates + 1).max(1));
        per_param.push(factors);
    }

    // Step 2: compound-term pool and hypothesis enumeration.
    let pool = build_term_pool(&per_param);
    let subsets = enumerate_subsets(pool.len(), cfg.max_compound_terms);

    let coords: Vec<Vec<f64>> = agg.points.iter().map(|p| p.coords.clone()).collect();
    let ys: Vec<f64> = agg.points.iter().map(|p| p.value).collect();
    if ys.len() < 4 {
        return Err(FitError::NotEnoughPoints {
            needed: 4,
            got: ys.len(),
        });
    }

    // Last probe before the heavy compound-scoring pass (which then runs
    // to completion — the parallel scan is the preemption unit).
    cancel.checkpoint()?;

    // Constant hypothesis as baseline.
    let floor = cfg.single.noise_floor_smape;
    let constant = score_multi(&coords, &ys, &[], cfg.single.nonneg_coeffs);

    let scored: Vec<ScoredMulti> = subsets
        .par_iter()
        .filter_map(|idxs| {
            let terms: Vec<CompoundTerm> = idxs.iter().map(|&i| pool[i].clone()).collect();
            score_multi(&coords, &ys, &terms, cfg.single.nonneg_coeffs)
        })
        .collect();

    // Hierarchical selection: hypotheses built purely from each axis's best
    // slice model (rank 0) form the incumbent; hypotheses that reach for
    // runner-up candidates may only displace it when they improve the
    // cross-validated error *significantly* (the paper's "no significant
    // improvement" rule). This prevents near-collinear impostor exponents
    // from winning on sub-resolution residue.
    let hyp_rank = |s: &ScoredMulti| s.terms.iter().map(|t| t.rank).max().unwrap_or(0);
    let max_rank = scored.iter().map(&hyp_rank).max().unwrap_or(0);
    let mut best: Option<ScoredMulti> = constant;
    for wave in 0..=max_rank {
        let wave_best =
            scored
                .iter()
                .filter(|s| hyp_rank(s) == wave)
                .fold(None::<&ScoredMulti>, |acc, s| match acc {
                    Some(b) if !better_multi(s, b) => Some(b),
                    _ => Some(s),
                });
        let Some(wb) = wave_best else { continue };
        let replace = match &best {
            None => true,
            Some(inc) => {
                if wave == 0 || hyp_rank(inc) == wave {
                    better_multi(wb, inc)
                } else {
                    inc.cv_smape > floor
                        && wb.cv_smape < inc.cv_smape * (1.0 - cfg.single.improvement_threshold)
                }
            }
        };
        if replace {
            best = Some(wb.clone());
        }
    }
    let best = best.ok_or(FitError::NoViableHypothesis)?;

    // Drop terms whose largest contribution over the measured points is
    // below the numerical round-off floor (degenerate coefficients like
    // 1e-16 that least squares leaves on redundant basis columns).
    let y_scale = ys.iter().fold(0.0f64, |a, v| a.max(v.abs()));
    let terms: Vec<Term> = best
        .terms
        .iter()
        .zip(&best.coeffs[1..])
        .filter(|(t, &c)| {
            let max_basis = coords.iter().map(|cd| t.basis(cd)).fold(0.0f64, f64::max);
            c.abs() * max_basis >= 1e-8 * y_scale
        })
        .map(|(t, &c)| Term::new(c, t.factors.clone()))
        .collect();
    let constant = crate::fit::prune_tiny_constant(best.coeffs[0], &ys);
    let model = Model::new(constant, terms, exp.params.clone());
    let pred: Vec<f64> = coords.iter().map(|c| model.eval(c)).collect();
    Ok(FittedModel {
        r2: r_squared(&pred, &ys),
        adj_r2: adjusted_r_squared(&pred, &ys, best.coeffs.len()),
        smape: best.in_smape,
        cv_smape: best.cv_smape,
        model,
    })
}

/// Fits a multi-parameter model on the clean subset of a sweep that may
/// contain flagged (degraded-run) measurements, reporting which points
/// were dropped. The multi-parameter twin of
/// [`crate::fit::fit_single_robust`].
///
/// # Errors
/// Returns [`FitError::NotEnoughPoints`] when too few clean points
/// survive for the fit (the minimum-points guard).
pub fn fit_multi_robust(
    exp: &Experiment,
    cfg: &MultiParamConfig,
) -> Result<crate::fit::RobustFit, FitError> {
    let (clean, dropped) = exp.split_clean();
    let fitted = fit_multi(&clean, cfg)?;
    Ok(crate::fit::RobustFit { fitted, dropped })
}

#[cfg(test)]
mod tests {
    use super::*;

    const P_AXIS: &[f64] = &[2.0, 4.0, 8.0, 16.0, 32.0];
    const N_AXIS: &[f64] = &[64.0, 128.0, 256.0, 512.0, 1024.0];

    fn grid(f: impl FnMut(&[f64]) -> f64) -> Experiment {
        Experiment::from_fn(vec!["p", "n"], &[P_AXIS, N_AXIS], f)
    }

    fn lead_exponents(m: &Model) -> (Exponents, Exponents) {
        (m.dominant_exponents(0), m.dominant_exponents(1))
    }

    #[test]
    fn term_pool_for_two_params() {
        let per = vec![
            vec![(Exponents::new(1.0, 0.0), 0), (Exponents::new(0.0, 1.0), 1)],
            vec![(Exponents::new(1.0, 1.0), 0)],
        ];
        let pool = build_term_pool(&per);
        // {p}, {log p}, {n log n}, {p·n log n}, {log p·n log n} = 5
        assert_eq!(pool.len(), 5);
        // Ranks: terms touching the runner-up p-candidate are rank 1.
        let rank_of = |poly: f64, log: f64| {
            pool.iter()
                .find(|t| t.factors[0] == Exponents::new(poly, log))
                .map(|t| t.rank)
        };
        assert_eq!(rank_of(1.0, 0.0), Some(0));
        assert_eq!(rank_of(0.0, 1.0), Some(1));
    }

    #[test]
    fn subset_enumeration_counts() {
        let subs = enumerate_subsets(4, 2);
        // C(4,1) + C(4,2) = 4 + 6
        assert_eq!(subs.len(), 10);
        assert!(subs.iter().all(|s| !s.is_empty() && s.len() <= 2));
    }

    #[test]
    fn recovers_multiplicative_model() {
        // LULESH-like: f = 7·n·log2(n)·log2(p)
        let e = grid(|c| 7.0 * c[1] * c[1].log2() * c[0].log2());
        let m = fit_multi(&e, &MultiParamConfig::coarse()).unwrap();
        let (fp, fn_) = lead_exponents(&m.model);
        assert_eq!(fp, Exponents::new(0.0, 1.0), "{}", m.model);
        assert_eq!(fn_, Exponents::new(1.0, 1.0), "{}", m.model);
        assert!(m.model.has_multiplicative_interaction());
        assert!(m.cv_smape < 0.5, "cv {}", m.cv_smape);
    }

    #[test]
    fn cancelled_token_aborts_the_search() {
        use crate::cancel::{CancelReason, CancelToken};
        let e = grid(|c| 7.0 * c[1] * c[1].log2() * c[0].log2());
        let cfg = MultiParamConfig::coarse();
        let cancelled = CancelToken::new();
        cancelled.cancel(CancelReason::Interrupt);
        match fit_multi_cancellable(&e, &cfg, &cancelled) {
            Err(FitError::Cancelled { reason }) => assert_eq!(reason, CancelReason::Interrupt),
            other => panic!("expected cancellation, got {other:?}"),
        }
        // A live token does not perturb the result.
        let live = fit_multi_cancellable(&e, &cfg, &CancelToken::new()).unwrap();
        let plain = fit_multi(&e, &cfg).unwrap();
        assert_eq!(format!("{}", live.model), format!("{}", plain.model));
    }

    #[test]
    fn recovers_additive_model() {
        // Relearn loads/stores-like: 1e6·n·log n + 1e5·p·log p
        let e = grid(|c| 1e6 * c[1] * c[1].log2() + 1e5 * c[0] * c[0].log2());
        let m = fit_multi(&e, &MultiParamConfig::coarse()).unwrap();
        assert!(!m.model.has_multiplicative_interaction(), "{}", m.model);
        let (fp, fn_) = lead_exponents(&m.model);
        assert_eq!(fp, Exponents::new(1.0, 1.0), "{}", m.model);
        assert_eq!(fn_, Exponents::new(1.0, 1.0), "{}", m.model);
    }

    #[test]
    fn recovers_mixed_model() {
        // MILC-FLOP-like: 1e4·n + 1e2·n·log2(p)
        let e = grid(|c| 1e4 * c[1] + 1e2 * c[1] * c[0].log2());
        let m = fit_multi(&e, &MultiParamConfig::coarse()).unwrap();
        assert!(m.model.has_multiplicative_interaction(), "{}", m.model);
        // n appears linearly in every term.
        assert_eq!(m.model.dominant_exponents(1), Exponents::new(1.0, 0.0));
        assert!(m.cv_smape < 0.5);
    }

    #[test]
    fn recovers_single_parameter_dependence() {
        // Only n matters.
        let e = grid(|c| 3.0 * c[1].powf(2.0));
        let m = fit_multi(&e, &MultiParamConfig::coarse()).unwrap();
        assert!(!m.model.depends_on(0), "{}", m.model);
        assert_eq!(m.model.dominant_exponents(1), Exponents::new(2.0, 0.0));
    }

    #[test]
    fn recovers_constant_surface() {
        let e = grid(|_| 123.0);
        let m = fit_multi(&e, &MultiParamConfig::coarse()).unwrap();
        assert!(m.model.terms.is_empty(), "{}", m.model);
        assert!((m.model.constant - 123.0).abs() < 1e-6);
    }

    #[test]
    fn one_param_falls_back_to_single() {
        let e = Experiment::from_fn(vec!["p"], &[P_AXIS], |c| 5.0 * c[0]);
        let m = fit_multi(&e, &MultiParamConfig::coarse()).unwrap();
        assert_eq!(m.model.dominant_exponents(0), Exponents::new(1.0, 0.0));
    }

    #[test]
    fn fractional_interaction_on_paper_space() {
        // icoFoam-FLOP-like: n^1.5 · p^0.5 (coefficients scaled down to keep
        // the test cheap on the full paper space).
        let cfg = MultiParamConfig {
            single: FitConfig::default(),
            k_candidates: 2,
            max_compound_terms: 2,
        };
        let e = grid(|c| 10.0 * c[1].powf(1.5) * c[0].powf(0.5));
        let m = fit_multi(&e, &cfg).unwrap();
        let (fp, fn_) = lead_exponents(&m.model);
        assert_eq!(fp, Exponents::new(0.5, 0.0), "{}", m.model);
        assert_eq!(fn_, Exponents::new(1.5, 0.0), "{}", m.model);
    }

    #[test]
    fn degraded_grid_points_are_dropped_not_fitted() {
        // A 5×5 grid where two runs crashed and reported garbage values;
        // the robust fit must recover the true shape and name the drops.
        let mut e = grid(|c| 3.0 * c[0] * c[1]);
        e.push_flagged(&[8.0, 256.0], 1.0);
        e.push_flagged(&[32.0, 1024.0], 2.0);
        let r = fit_multi_robust(&e, &MultiParamConfig::coarse()).unwrap();
        let (fp, fn_) = lead_exponents(&r.fitted.model);
        assert_eq!(fp, Exponents::new(1.0, 0.0), "{}", r.fitted.model);
        assert_eq!(fn_, Exponents::new(1.0, 0.0), "{}", r.fitted.model);
        assert_eq!(r.dropped.len(), 2);
        assert!(r.dropped.iter().all(|m| m.flagged));
    }

    #[test]
    fn predicts_beyond_measured_range() {
        // The whole point: extrapolation to exascale-like coordinates.
        let e = grid(|c| 2.0 * c[1] * c[0].log2());
        let m = fit_multi(&e, &MultiParamConfig::coarse()).unwrap();
        let p: f64 = 1e8;
        let n = 1e6;
        let truth = 2.0 * n * p.log2();
        let pred = m.model.eval(&[p, n]);
        assert!(
            (pred - truth).abs() / truth < 0.01,
            "pred {pred} vs {truth} ({})",
            m.model
        );
    }
}
