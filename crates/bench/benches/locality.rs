//! Performance of the locality engine (P1): exact distance computation
//! throughput at various working-set sizes, the naive oracle for reference,
//! and the burst sampler's overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use exareq_locality::{BurstSampler, BurstSchedule, DistanceAnalyzer, NaiveAnalyzer};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::hint::black_box;

fn trace(len: usize, working_set: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..len).map(|_| rng.random_range(0..working_set)).collect()
}

fn bench_distance(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_distance");
    for ws in [256u64, 4096, 65536] {
        let t = trace(100_000, ws);
        g.throughput(Throughput::Elements(t.len() as u64));
        g.bench_with_input(BenchmarkId::new("fenwick", ws), &t, |b, t| {
            b.iter(|| {
                let mut a = DistanceAnalyzer::new();
                let mut acc = 0u64;
                for &x in t {
                    if let Some(s) = a.access(x).stack {
                        acc = acc.wrapping_add(s);
                    }
                }
                black_box(acc)
            });
        });
    }
    // The naive oracle only at a small size (it is quadratic).
    let t = trace(2_000, 256);
    g.throughput(Throughput::Elements(t.len() as u64));
    g.bench_with_input(BenchmarkId::new("naive_oracle", 256u64), &t, |b, t| {
        b.iter(|| {
            let mut a = NaiveAnalyzer::new();
            let mut acc = 0u64;
            for &x in t {
                if let Some(s) = a.access(x).stack {
                    acc = acc.wrapping_add(s);
                }
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_sampler(c: &mut Criterion) {
    let mut g = c.benchmark_group("burst_sampler");
    let t = trace(100_000, 4096);
    g.throughput(Throughput::Elements(t.len() as u64));
    for (label, schedule) in [
        ("always", BurstSchedule::always()),
        ("default_duty_cycle", BurstSchedule::default()),
    ] {
        g.bench_with_input(BenchmarkId::new(label, t.len()), &t, |b, t| {
            b.iter(|| {
                let mut s = BurstSampler::new(schedule);
                let grp = s.register_group("bench");
                for &x in t {
                    s.access(grp, x);
                }
                black_box(s.groups()[grp].stack.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_distance, bench_sampler);
criterion_main!(benches);
