//! Hardware-independent requirement counters (the PAPI substitute).
//!
//! Each simulated process owns one [`Counters`] block; the behavioural-twin
//! kernels increment it from inside their compute loops, so the totals
//! reflect the work actually executed — not closed-form assumptions.

use serde::{Deserialize, Serialize};

/// Per-process requirement counters matching Table I of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Floating-point operations executed (#FLOP).
    pub flops: u64,
    /// Load instructions retired.
    pub loads: u64,
    /// Store instructions retired.
    pub stores: u64,
}

impl Counters {
    /// Records `k` floating-point operations.
    #[inline]
    pub fn add_flops(&mut self, k: u64) {
        self.flops += k;
    }

    /// Records `k` load instructions.
    #[inline]
    pub fn add_loads(&mut self, k: u64) {
        self.loads += k;
    }

    /// Records `k` store instructions.
    #[inline]
    pub fn add_stores(&mut self, k: u64) {
        self.stores += k;
    }

    /// Combined loads + stores — the paper's "#Loads & stores" metric,
    /// measured whole-program to sidestep per-function counter
    /// non-determinism (Section II-B).
    pub fn loads_stores(&self) -> u64 {
        self.loads + self.stores
    }

    /// Element-wise sum (aggregation across processes).
    pub fn merged(&self, other: &Counters) -> Counters {
        Counters {
            flops: self.flops + other.flops,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
        }
    }
}

/// Instrumented floating-point helpers: perform the arithmetic *and* count
/// it, so a kernel cannot claim work it did not do.
///
/// ```
/// use exareq_profile::counters::{Counters, Fpu};
/// let mut c = Counters::default();
/// let mut fpu = Fpu::new(&mut c);
/// let y = fpu.mul_add(2.0, 3.0, 1.0); // 2·3 + 1
/// assert_eq!(y, 7.0);
/// drop(fpu);
/// assert_eq!(c.flops, 2);
/// ```
pub struct Fpu<'a> {
    counters: &'a mut Counters,
}

impl<'a> Fpu<'a> {
    /// Wraps a counter block.
    pub fn new(counters: &'a mut Counters) -> Self {
        Fpu { counters }
    }

    /// `a + b`, counted as one FLOP.
    #[inline]
    pub fn add(&mut self, a: f64, b: f64) -> f64 {
        self.counters.flops += 1;
        a + b
    }

    /// `a − b`, counted as one FLOP.
    #[inline]
    pub fn sub(&mut self, a: f64, b: f64) -> f64 {
        self.counters.flops += 1;
        a - b
    }

    /// `a · b`, counted as one FLOP.
    #[inline]
    pub fn mul(&mut self, a: f64, b: f64) -> f64 {
        self.counters.flops += 1;
        a * b
    }

    /// `a / b`, counted as one FLOP.
    #[inline]
    pub fn div(&mut self, a: f64, b: f64) -> f64 {
        self.counters.flops += 1;
        a / b
    }

    /// `a·b + c`, counted as two FLOPs (multiply + add).
    #[inline]
    pub fn mul_add(&mut self, a: f64, b: f64, c: f64) -> f64 {
        self.counters.flops += 2;
        a.mul_add(b, c)
    }

    /// `√a`, counted as one FLOP.
    #[inline]
    pub fn sqrt(&mut self, a: f64) -> f64 {
        self.counters.flops += 1;
        a.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::default();
        c.add_flops(10);
        c.add_loads(3);
        c.add_stores(4);
        c.add_flops(5);
        assert_eq!(c.flops, 15);
        assert_eq!(c.loads_stores(), 7);
    }

    #[test]
    fn merge_sums() {
        let a = Counters {
            flops: 1,
            loads: 2,
            stores: 3,
        };
        let b = Counters {
            flops: 10,
            loads: 20,
            stores: 30,
        };
        assert_eq!(
            a.merged(&b),
            Counters {
                flops: 11,
                loads: 22,
                stores: 33
            }
        );
    }

    #[test]
    fn fpu_counts_and_computes() {
        let mut c = Counters::default();
        {
            let mut f = Fpu::new(&mut c);
            assert_eq!(f.add(1.0, 2.0), 3.0);
            assert_eq!(f.sub(5.0, 2.0), 3.0);
            assert_eq!(f.mul(3.0, 4.0), 12.0);
            assert_eq!(f.div(8.0, 2.0), 4.0);
            assert_eq!(f.sqrt(9.0), 3.0);
            assert_eq!(f.mul_add(2.0, 3.0, 4.0), 10.0);
        }
        // 1+1+1+1+1+2 = 7
        assert_eq!(c.flops, 7);
    }
}
