//! Supervised rank-parallel execution of simulated MPI programs.
//!
//! The runner spawns one OS thread per rank, wraps every rank body in
//! `catch_unwind`, and supervises the run from the spawning thread:
//!
//! - a panicking rank becomes a per-rank failure report instead of
//!   hanging the join loop (the seed runner joined in rank order and
//!   blocked forever on rank 0 while rank 3 lay dead);
//! - peer failures cascade as control messages, so ranks blocked on a
//!   dead peer abort with a diagnosable [`CommError`] naming rank, peer,
//!   and tag;
//! - an optional wall-clock watchdog detects genuine deadlocks (all live
//!   ranks blocked in `recv` with no progress) and reports a structured
//!   [`SimError::Deadlock`] listing each blocked rank, the src/tag it
//!   waits on, and its parked-message queue;
//! - fault plans ([`crate::fault::FaultPlan`]) inject crashes and message
//!   faults deterministically, and degraded runs come back as a
//!   [`SimOutcome`] with per-rank completion status.
//!
//! [`run_ranks`] keeps the seed crate's infallible signature for clean
//! programs; [`run_ranks_with_faults`] / [`run_ranks_supervised`] expose
//! the full fault-aware interface.

use crate::fault::{FaultPlan, FaultStats};
use crate::rank::{CommError, Ctl, Rank, RankAbort};
use crate::stats::CommStats;
use exareq_core::cancel::{CancelReason, CancelToken};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

/// Result of one rank's execution: its return value and its communication
/// statistics.
#[derive(Debug, Clone)]
pub struct RankResult<T> {
    /// Value returned by the rank body.
    pub value: T,
    /// Communication statistics accumulated by the rank.
    pub stats: CommStats,
}

/// Default wall-clock watchdog for supervised runs. Generous relative to
/// any in-tree kernel (they finish in milliseconds) so it cannot fire on
/// a slow-but-progressing run — and by construction it only ever fires
/// when every live rank is blocked *and* the progress counter has been
/// frozen for the whole window.
pub const DEFAULT_WATCHDOG: Duration = Duration::from_secs(2);

/// Configuration of a supervised run.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    /// Faults to inject (default: none).
    pub faults: FaultPlan,
    /// Wall-clock hang detector; `None` disables it (a genuine deadlock
    /// then blocks forever, like the seed runner).
    pub watchdog: Option<Duration>,
    /// Cooperative cancellation token. When set, every rank probes it at
    /// its communication chokepoints and the supervisor polls it between
    /// completions, waking blocked ranks with a cancel notice — the run
    /// winds down with structured [`RankStatus::Cancelled`] reports and a
    /// [`SimError::Cancelled`] instead of being abandoned mid-flight.
    pub cancel: Option<CancelToken>,
}

impl SimConfig {
    /// A config with the given fault plan and the default watchdog.
    pub fn with_faults(faults: FaultPlan) -> Self {
        SimConfig {
            faults,
            watchdog: Some(DEFAULT_WATCHDOG),
            cancel: None,
        }
    }

    /// Returns this config with the given cancellation token armed.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

/// Summary of one message parked in a rank's out-of-order queue, reported
/// when diagnosing a deadlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingMsg {
    /// Sender of the parked message.
    pub src: usize,
    /// Its tag.
    pub tag: u64,
    /// Its payload size in bytes.
    pub bytes: usize,
}

/// One rank caught blocked in a selective receive at deadlock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedRank {
    /// The blocked rank.
    pub rank: usize,
    /// The source it is waiting on.
    pub src: usize,
    /// The tag it is waiting for.
    pub tag: u64,
    /// Messages it has parked (received but not matching the posted recv).
    pub pending: Vec<PendingMsg>,
}

impl std::fmt::Display for BlockedRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} blocked in recv(src={}, tag={})",
            self.rank, self.src, self.tag
        )?;
        if self.pending.is_empty() {
            write!(f, ", no parked messages")
        } else {
            write!(f, ", parked: [")?;
            for (i, m) in self.pending.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "src={} tag={} ({} B)", m.src, m.tag, m.bytes)?;
            }
            write!(f, "]")
        }
    }
}

/// Watchdog evidence attached to a degraded outcome: the run stalled
/// (every live rank blocked, zero progress for the timeout) and was
/// aborted by the supervisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallInfo {
    /// The watchdog window that elapsed without progress.
    pub timeout: Duration,
    /// The ranks that were blocked, and on what.
    pub blocked: Vec<BlockedRank>,
}

/// Structured failure of a whole simulated run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The watchdog caught a genuine deadlock in a fault-free program:
    /// every live rank blocked in `recv`, no progress for `timeout`.
    Deadlock {
        /// The watchdog window that elapsed without progress.
        timeout: Duration,
        /// Each blocked rank with the src/tag it waits on and its parked
        /// queue.
        blocked: Vec<BlockedRank>,
    },
    /// Every rank failed; there is no surviving measurement to report.
    AllRanksFailed {
        /// World size of the failed run.
        ranks: usize,
    },
    /// The run's cancellation token fired (interrupt, deadline, or budget):
    /// the run was wound down cooperatively and its partial measurement is
    /// discarded so a resumed sweep re-measures it identically.
    Cancelled {
        /// Why the run was cancelled.
        reason: CancelReason,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { timeout, blocked } => {
                write!(
                    f,
                    "deadlock: no progress for {timeout:?} with all live ranks blocked in recv"
                )?;
                for b in blocked {
                    write!(f, "; {b}")?;
                }
                Ok(())
            }
            SimError::AllRanksFailed { ranks } => {
                write!(f, "all {ranks} ranks failed; no surviving results")
            }
            SimError::Cancelled { reason } => {
                write!(f, "run cancelled: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Completion status of one rank in a supervised run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankStatus {
    /// The rank body returned normally.
    Completed,
    /// An injected [`crate::fault::FaultPlan`] crash point fired at the
    /// given communication op.
    Crashed {
        /// 1-based communication-op index at which the crash fired.
        op: u64,
    },
    /// The rank body panicked on its own (an application bug, not an
    /// injected fault).
    Panicked {
        /// The panic message.
        message: String,
    },
    /// The rank aborted because communication became impossible (peer
    /// death cascade or supervisor watchdog).
    Aborted {
        /// Formatted [`CommError`] description.
        why: String,
    },
    /// The rank observed the run's cancellation token and wound down
    /// cooperatively at a communication chokepoint.
    Cancelled {
        /// Why the run was cancelled.
        reason: CancelReason,
    },
}

impl RankStatus {
    /// Whether the rank finished its body normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, RankStatus::Completed)
    }
}

/// Per-rank report from a supervised run.
#[derive(Debug, Clone)]
pub struct RankReport<T> {
    /// The rank id.
    pub rank: usize,
    /// How the rank ended.
    pub status: RankStatus,
    /// The body's return value, if it completed.
    pub value: Option<T>,
    /// Communication statistics up to completion or failure.
    pub stats: CommStats,
    /// Injected-fault statistics for this rank.
    pub faults: FaultStats,
}

/// Outcome of a supervised run: per-rank reports plus (optionally) the
/// watchdog evidence if the run stalled and was aborted.
#[derive(Debug, Clone)]
pub struct SimOutcome<T> {
    /// One report per rank, in rank order.
    pub ranks: Vec<RankReport<T>>,
    /// Present when the watchdog aborted a stalled run that injected
    /// faults can explain (fault-free stalls surface as
    /// [`SimError::Deadlock`] instead).
    pub stall: Option<StallInfo>,
}

impl<T> SimOutcome<T> {
    /// Number of ranks that completed normally.
    pub fn completed(&self) -> usize {
        self.ranks
            .iter()
            .filter(|r| r.status.is_completed())
            .count()
    }

    /// Whether anything at all went wrong: a rank failure, a stall, or
    /// any injected fault event (which perturbs traffic even when all
    /// ranks survive).
    pub fn is_degraded(&self) -> bool {
        self.stall.is_some()
            || self.ranks.iter().any(|r| !r.status.is_completed())
            || self.total_faults().total_events() > 0
    }

    /// Aggregated communication statistics over all ranks (including
    /// partial stats from failed ranks).
    pub fn total_stats(&self) -> CommStats {
        self.ranks
            .iter()
            .fold(CommStats::default(), |acc, r| acc.merged(&r.stats))
    }

    /// Aggregated injected-fault statistics over all ranks.
    pub fn total_faults(&self) -> FaultStats {
        self.ranks
            .iter()
            .fold(FaultStats::default(), |acc, r| acc.merged(&r.faults))
    }

    /// Converts a fully clean outcome into the classic result vector;
    /// `None` if any rank failed.
    pub fn into_results(self) -> Option<Vec<RankResult<T>>> {
        self.ranks
            .into_iter()
            .map(|r| {
                r.value.map(|value| RankResult {
                    value,
                    stats: r.stats,
                })
            })
            .collect()
    }
}

/// Per-rank execution state shared with the supervisor for watchdog and
/// deadlock diagnosis.
#[derive(Debug, Clone)]
pub(crate) enum RankState {
    /// Executing the body (or between communication calls).
    Running,
    /// Parked inside a selective receive.
    Blocked {
        src: usize,
        tag: u64,
        pending: Vec<PendingMsg>,
    },
    /// Body returned normally.
    Done,
    /// Body panicked, crashed, or aborted.
    Failed,
}

/// State shared between all rank threads and the supervisor.
#[derive(Debug)]
pub(crate) struct Supervision {
    /// Bumped on every envelope sent and every envelope processed; the
    /// watchdog only fires after this has been frozen for a full window.
    pub(crate) progress: AtomicU64,
    /// Last published state of each rank.
    pub(crate) states: Vec<Mutex<RankState>>,
    /// The run's cancellation token, probed by ranks at their
    /// communication chokepoints (`None` when cancellation is not armed:
    /// the probe then costs a single branch).
    pub(crate) cancel: Option<CancelToken>,
}

/// How a rank thread actually ended, before public classification.
enum RawStatus<T> {
    Completed(T),
    Crashed { op: u64 },
    Aborted(CommError),
    Cancelled(CancelReason),
    Panicked(Box<dyn Any + Send>),
}

struct RawReport<T> {
    status: RawStatus<T>,
    stats: CommStats,
    faults: FaultStats,
}

/// A finished rank: its report plus the `Rank` handle itself, which the
/// supervisor keeps alive so late senders never hit a dead receiver
/// (keeping "send to a completed peer" deterministic and non-fatal).
struct Finished<T> {
    rank: usize,
    report: RawReport<T>,
    keep: Rank,
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Silences the default panic-hook banner for our typed [`RankAbort`]
/// unwinds (injected crashes, comm aborts) while leaving genuine panics
/// as loud as ever.
fn install_quiet_abort_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<RankAbort>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Core supervised execution: spawns rank threads, collects completions,
/// and runs the optional watchdog. Returns per-rank raw reports in rank
/// order plus stall evidence if the watchdog fired.
fn run_raw<T, F>(p: usize, cfg: &SimConfig, body: F) -> (Vec<RawReport<T>>, Option<StallInfo>)
where
    T: Send,
    F: Fn(&mut Rank) -> T + Sync,
{
    assert!(p > 0, "need at least one rank");
    install_quiet_abort_hook();

    let sup = Arc::new(Supervision {
        progress: AtomicU64::new(0),
        states: (0..p).map(|_| Mutex::new(RankState::Running)).collect(),
        cancel: cfg.cancel.clone(),
    });

    // Full mesh: one unbounded channel per rank, everyone holds senders.
    let mut txs = Vec::with_capacity(p);
    let mut rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    let (done_tx, done_rx) = channel::<Finished<T>>();

    let body = &body;
    let mut slots: Vec<Option<RawReport<T>>> = (0..p).map(|_| None).collect();
    let mut stall = None;

    std::thread::scope(|scope| {
        for (rank_id, rx) in rxs.into_iter().enumerate() {
            let txs = txs.clone();
            let sup = Arc::clone(&sup);
            let done_tx = done_tx.clone();
            let faults = cfg.faults.state_for(rank_id, p);
            scope.spawn(move || {
                let mut rank = Rank::new(rank_id, p, txs, rx, faults, sup);
                let result = catch_unwind(AssertUnwindSafe(|| body(&mut rank)));
                let status = match result {
                    Ok(value) => {
                        // Delayed messages from a *surviving* rank still
                        // arrive; FIFO puts them before the Done notice.
                        rank.flush_delayed();
                        rank.publish_state(RankState::Done);
                        rank.broadcast_ctl(Ctl::PeerDone { rank: rank_id });
                        RawStatus::Completed(value)
                    }
                    Err(payload) => match payload.downcast::<RankAbort>() {
                        Ok(abort) => match *abort {
                            RankAbort::InjectedCrash { op } => {
                                rank.publish_state(RankState::Failed);
                                rank.broadcast_ctl(Ctl::PeerFailed {
                                    rank: rank_id,
                                    why: format!(
                                        "rank {rank_id} crashed (injected fault at op {op})"
                                    ),
                                });
                                RawStatus::Crashed { op }
                            }
                            RankAbort::Comm(err) => {
                                rank.publish_state(RankState::Failed);
                                rank.broadcast_ctl(Ctl::PeerFailed {
                                    rank: rank_id,
                                    why: err.to_string(),
                                });
                                RawStatus::Aborted(err)
                            }
                            // A cancelled rank tells its peers to cancel
                            // too (not that it "failed"), so every rank
                            // winds down with the same structured status.
                            RankAbort::Cancelled(reason) => {
                                rank.publish_state(RankState::Failed);
                                rank.broadcast_ctl(Ctl::Cancel { reason });
                                RawStatus::Cancelled(reason)
                            }
                        },
                        Err(payload) => {
                            let why =
                                format!("rank {rank_id} panicked: {}", panic_message(&*payload));
                            rank.publish_state(RankState::Failed);
                            rank.broadcast_ctl(Ctl::PeerFailed { rank: rank_id, why });
                            RawStatus::Panicked(payload)
                        }
                    },
                };
                let report = RawReport {
                    status,
                    stats: rank.stats().clone(),
                    faults: *rank.fault_stats(),
                };
                let _ = done_tx.send(Finished {
                    rank: rank_id,
                    report,
                    keep: rank,
                });
            });
        }
        drop(done_tx); // supervisor keeps only the rank threads' clones

        // Receivers of finished ranks are parked here so that sends to a
        // completed peer keep succeeding until every thread has exited.
        let mut keepalive: Vec<Rank> = Vec::with_capacity(p);
        let mut finished = 0usize;
        let poll = cfg
            .watchdog
            .map(|t| (t / 10).max(Duration::from_millis(5)))
            .unwrap_or(Duration::from_millis(50));
        let mut last_progress = sup.progress.load(Ordering::Relaxed);
        let mut frozen_since = Instant::now();
        let mut fired = false;
        let mut cancel_notified = false;
        // Cancellation needs the supervisor awake even without a watchdog,
        // so any armed token forces the polling receive path.
        let polling = cfg.watchdog.is_some() || cfg.cancel.is_some();

        while finished < p {
            if !polling {
                let f = done_rx.recv().expect("rank threads outlive the run");
                slots[f.rank] = Some(f.report);
                keepalive.push(f.keep);
                finished += 1;
                continue;
            }
            match done_rx.recv_timeout(poll) {
                Ok(f) => {
                    slots[f.rank] = Some(f.report);
                    keepalive.push(f.keep);
                    finished += 1;
                    frozen_since = Instant::now();
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Cancellation probe: evaluates the deadline (if any)
                    // and wakes every blocked rank with a cancel notice so
                    // the run winds down instead of waiting on dead peers.
                    if let Some(token) = &cfg.cancel {
                        if !cancel_notified {
                            if let Err(c) = token.checkpoint() {
                                cancel_notified = true;
                                for tx in &txs {
                                    let _ = tx.send(crate::rank::Envelope::Ctl(Ctl::Cancel {
                                        reason: c.reason,
                                    }));
                                }
                            }
                        }
                    }
                    let Some(timeout) = cfg.watchdog else {
                        continue;
                    };
                    {
                        let progress = sup.progress.load(Ordering::Relaxed);
                        if progress != last_progress {
                            last_progress = progress;
                            frozen_since = Instant::now();
                            continue;
                        }
                        if fired || frozen_since.elapsed() < timeout {
                            continue;
                        }
                        // Zero progress for a full window: diagnose. Fire
                        // only if every unfinished rank is parked in recv
                        // (a Running rank may be legitimately computing).
                        let mut blocked = Vec::new();
                        let mut all_blocked = true;
                        for (i, slot) in sup.states.iter().enumerate() {
                            match &*slot.lock().expect("state lock") {
                                RankState::Blocked { src, tag, pending } => {
                                    blocked.push(BlockedRank {
                                        rank: i,
                                        src: *src,
                                        tag: *tag,
                                        pending: pending.clone(),
                                    });
                                }
                                RankState::Done | RankState::Failed => {}
                                RankState::Running => {
                                    all_blocked = false;
                                    break;
                                }
                            }
                        }
                        // Re-check progress after the scan: a rank may have
                        // moved between the counter read and the state read.
                        if all_blocked
                            && !blocked.is_empty()
                            && sup.progress.load(Ordering::Relaxed) == last_progress
                        {
                            fired = true;
                            stall = Some(StallInfo {
                                timeout,
                                blocked: blocked.clone(),
                            });
                            let why = SimError::Deadlock { timeout, blocked }.to_string();
                            for tx in &txs {
                                let _ = tx.send(crate::rank::Envelope::Ctl(Ctl::Abort {
                                    why: why.clone(),
                                }));
                            }
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("rank threads hold done_tx until they report")
                }
            }
        }
        drop(keepalive);
    });

    let reports = slots
        .into_iter()
        .map(|s| s.expect("every rank reported"))
        .collect();
    (reports, stall)
}

/// Runs `body` on `p` simulated ranks, each on its own OS thread, and
/// returns the per-rank results in rank order.
///
/// Channels are unbounded, so the usual MPI deadlock patterns (everyone
/// sends before receiving) complete fine. Unlike the seed runner, a rank
/// that panics no longer hangs the join loop: the panic propagates to the
/// caller even when other ranks are still blocked in `recv`, and a rank
/// blocked on a peer that finished without sending panics with a
/// [`CommError`] description naming rank, peer, and tag. A genuine
/// deadlock still blocks forever under this entry point — use
/// [`run_ranks_supervised`] with a watchdog for detection.
///
/// # Panics
/// Panics if `p == 0` or if any rank body panics (the first panicking
/// rank's payload is re-raised).
pub fn run_ranks<T, F>(p: usize, body: F) -> Vec<RankResult<T>>
where
    T: Send,
    F: Fn(&mut Rank) -> T + Sync,
{
    let cfg = SimConfig {
        faults: FaultPlan::default(),
        watchdog: None,
        cancel: None,
    };
    let (reports, _stall) = run_raw(p, &cfg, body);

    // A genuine application panic wins over secondary comm aborts and is
    // re-raised with its original payload.
    let mut reports: Vec<Option<RawReport<T>>> = reports.into_iter().map(Some).collect();
    if let Some(slot) = reports
        .iter_mut()
        .find(|r| matches!(r.as_ref().map(|r| &r.status), Some(RawStatus::Panicked(_))))
    {
        if let Some(RawReport {
            status: RawStatus::Panicked(payload),
            ..
        }) = slot.take()
        {
            resume_unwind(payload);
        }
    }
    reports
        .into_iter()
        .map(|r| {
            let r = r.expect("unconsumed report");
            match r.status {
                RawStatus::Completed(value) => RankResult {
                    value,
                    stats: r.stats,
                },
                RawStatus::Aborted(err) => panic!("{err}"),
                RawStatus::Crashed { .. } => {
                    unreachable!("no faults are injected under run_ranks")
                }
                RawStatus::Cancelled(_) => {
                    unreachable!("no cancel token is armed under run_ranks")
                }
                RawStatus::Panicked(_) => unreachable!("propagated above"),
            }
        })
        .collect()
}

/// Runs `body` under full supervision: fault injection per `cfg.faults`
/// and (if configured) the deadlock watchdog.
///
/// Returns `Ok` with a [`SimOutcome`] carrying per-rank completion
/// status — degraded runs (crashes, aborts, fault events) are still `Ok`
/// so partial measurements stay usable. Returns
/// [`Err(SimError::Deadlock)`](SimError::Deadlock) only when the watchdog
/// fires on a run with **no** failures and **no** injected fault events —
/// i.e. the application itself deadlocked. If `cfg.cancel` is armed and
/// fires, the run winds down cooperatively and returns
/// [`Err(SimError::Cancelled)`](SimError::Cancelled): partial measurements
/// of a preempted run are discarded, never recorded.
///
/// # Panics
/// Panics if `p == 0`.
pub fn run_ranks_supervised<T, F>(
    p: usize,
    cfg: &SimConfig,
    body: F,
) -> Result<SimOutcome<T>, SimError>
where
    T: Send,
    F: Fn(&mut Rank) -> T + Sync,
{
    let (reports, stall) = run_raw(p, cfg, body);
    let ranks: Vec<RankReport<T>> = reports
        .into_iter()
        .enumerate()
        .map(|(rank, r)| {
            let (status, value) = match r.status {
                RawStatus::Completed(v) => (RankStatus::Completed, Some(v)),
                RawStatus::Crashed { op } => (RankStatus::Crashed { op }, None),
                RawStatus::Aborted(err) => (
                    RankStatus::Aborted {
                        why: err.to_string(),
                    },
                    None,
                ),
                RawStatus::Cancelled(reason) => (RankStatus::Cancelled { reason }, None),
                RawStatus::Panicked(payload) => (
                    RankStatus::Panicked {
                        message: panic_message(&*payload),
                    },
                    None,
                ),
            };
            RankReport {
                rank,
                status,
                value,
                stats: r.stats,
                faults: r.faults,
            }
        })
        .collect();

    let outcome = SimOutcome { ranks, stall };
    // A cancelled token invalidates the whole run: the partial measurement
    // is discarded (never recorded as degraded data) so a resumed sweep
    // re-measures this configuration from scratch, byte-identically.
    if let Some(reason) = cfg.cancel.as_ref().and_then(|t| t.reason()) {
        return Err(SimError::Cancelled { reason });
    }
    if let Some(info) = &outcome.stall {
        let any_failure = outcome.ranks.iter().any(|r| {
            matches!(
                r.status,
                RankStatus::Crashed { .. } | RankStatus::Panicked { .. }
            )
        });
        if !any_failure && outcome.total_faults().total_events() == 0 {
            return Err(SimError::Deadlock {
                timeout: info.timeout,
                blocked: info.blocked.clone(),
            });
        }
    }
    Ok(outcome)
}

/// Runs `body` on `p` ranks with the given fault plan and the default
/// watchdog. See [`run_ranks_supervised`].
pub fn run_ranks_with_faults<T, F>(
    p: usize,
    faults: &FaultPlan,
    body: F,
) -> Result<SimOutcome<T>, SimError>
where
    T: Send,
    F: Fn(&mut Rank) -> T + Sync,
{
    run_ranks_supervised(p, &SimConfig::with_faults(faults.clone()), body)
}

/// Aggregated statistics over all ranks of a run.
pub fn total_stats<T>(results: &[RankResult<T>]) -> CommStats {
    results
        .iter()
        .fold(CommStats::default(), |acc, r| acc.merged(&r.stats))
}

/// Maximum per-rank value of a projection over the results — used e.g. for
/// "bytes on the busiest rank".
pub fn max_over_ranks<T>(results: &[RankResult<T>], f: impl Fn(&RankResult<T>) -> u64) -> u64 {
    results.iter().map(f).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_rank_order() {
        let results = run_ranks(8, |r| r.rank() * 10);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.value, i * 10);
        }
    }

    #[test]
    fn single_rank_runs() {
        let results = run_ranks(1, |r| {
            assert_eq!(r.size(), 1);
            "done"
        });
        assert_eq!(results[0].value, "done");
        assert_eq!(results[0].stats.total(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = run_ranks(0, |_| ());
    }

    #[test]
    fn deterministic_stats_across_runs() {
        let run = || {
            let results = run_ranks(6, |r| {
                // Everyone sends its rank to everyone else.
                for dst in 0..r.size() {
                    if dst != r.rank() {
                        r.send(dst, 0, &[r.rank() as u8; 16]);
                    }
                }
                let mut sum = 0usize;
                for src in 0..r.size() {
                    if src != r.rank() {
                        sum += r.recv(src, 0)[0] as usize;
                    }
                }
                sum
            });
            (
                results.iter().map(|r| r.value).collect::<Vec<_>>(),
                total_stats(&results),
            )
        };
        let (v1, s1) = run();
        let (v2, s2) = run();
        assert_eq!(v1, v2);
        assert_eq!(s1, s2);
        // 6 ranks × 5 peers × 16 bytes, sent and received.
        assert_eq!(s1.total_sent(), 6 * 5 * 16);
        assert_eq!(s1.total_recv(), 6 * 5 * 16);
    }

    #[test]
    fn max_over_ranks_projection() {
        let results = run_ranks(4, |r| {
            if r.rank() == 2 {
                r.send(0, 0, &[0u8; 999]);
            }
            if r.rank() == 0 {
                let _ = r.recv(2, 0);
            }
        });
        assert_eq!(max_over_ranks(&results, |r| r.stats.total_sent()), 999);
    }

    #[test]
    fn panic_on_nonzero_rank_propagates_instead_of_hanging() {
        // The seed runner joined in rank order: rank 0 blocked in recv
        // while rank 3 died, so the join on rank 0 hung forever. The
        // supervised runner must propagate the panic.
        let err = std::panic::catch_unwind(|| {
            run_ranks(4, |r| {
                if r.rank() == 3 {
                    panic!("rank 3 exploded");
                }
                if r.rank() == 0 {
                    let _ = r.recv(3, 1); // blocked on the dead rank
                }
            })
        })
        .unwrap_err();
        let msg = panic_message(&*err);
        assert!(msg.contains("rank 3 exploded"), "got: {msg}");
    }

    #[test]
    fn injected_crash_yields_degraded_outcome() {
        let plan = FaultPlan::default().crash(1, 1);
        let outcome = run_ranks_with_faults(4, &plan, |r| {
            // Ring: everyone sends, then receives.
            let next = (r.rank() + 1) % r.size();
            let prev = (r.rank() + r.size() - 1) % r.size();
            r.send(next, 0, &[1u8; 8]);
            let _ = r.recv(prev, 0);
            r.rank()
        })
        .expect("crash is degraded, not a deadlock");
        assert!(outcome.is_degraded());
        assert!(matches!(
            outcome.ranks[1].status,
            RankStatus::Crashed { op: 1 }
        ));
        assert_eq!(outcome.total_faults().injected_crashes, 1);
        // Rank 2 waits on rank 1, which died before sending: it aborts
        // with a message naming the dead peer.
        match &outcome.ranks[2].status {
            RankStatus::Aborted { why } => {
                assert!(why.contains("peer 1"), "got: {why}");
            }
            other => panic!("rank 2 should abort on the dead peer, got {other:?}"),
        }
    }

    #[test]
    fn live_token_does_not_perturb_a_clean_run() {
        let token = CancelToken::new();
        let cfg = SimConfig::with_faults(FaultPlan::none()).with_cancel(token.clone());
        let outcome = run_ranks_supervised(4, &cfg, |r| {
            let mut v = vec![r.rank() as f64];
            r.allreduce_sum(&mut v);
            v[0]
        })
        .expect("live token must not cancel anything");
        assert!(!outcome.is_degraded());
        assert_eq!(outcome.completed(), 4);
        assert!(!token.is_cancelled());
    }

    #[test]
    fn pre_cancelled_token_stops_ranks_at_the_first_chokepoint() {
        let token = CancelToken::new();
        token.cancel(CancelReason::Interrupt);
        let cfg = SimConfig::with_faults(FaultPlan::none()).with_cancel(token);
        let err = run_ranks_supervised(4, &cfg, |r| {
            let next = (r.rank() + 1) % r.size();
            let prev = (r.rank() + r.size() - 1) % r.size();
            r.send(next, 0, &[0u8; 8]);
            let _ = r.recv(prev, 0);
        })
        .unwrap_err();
        assert_eq!(
            err,
            SimError::Cancelled {
                reason: CancelReason::Interrupt
            }
        );
    }

    #[test]
    fn cancellation_wakes_ranks_blocked_in_recv() {
        // Both ranks post a receive no one will ever satisfy: without
        // cancellation this blocks forever (watchdog disabled). The token
        // fires from outside and the supervisor must wake both ranks.
        let token = CancelToken::new();
        let external = token.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            external.cancel(CancelReason::Interrupt);
        });
        let cfg = SimConfig {
            faults: FaultPlan::none(),
            watchdog: None,
            cancel: Some(token),
        };
        let err = run_ranks_supervised(2, &cfg, |r| {
            let peer = 1 - r.rank();
            let _ = r.recv(peer, 42); // neither side ever sends
        })
        .unwrap_err();
        canceller.join().unwrap();
        assert_eq!(
            err,
            SimError::Cancelled {
                reason: CancelReason::Interrupt
            }
        );
    }

    #[test]
    fn deadline_on_the_token_cancels_a_stuck_run() {
        use exareq_core::cancel::Deadline;
        let token = CancelToken::new().with_deadline(Deadline::after(Duration::from_millis(50)));
        let cfg = SimConfig {
            faults: FaultPlan::none(),
            watchdog: None,
            cancel: Some(token),
        };
        let err = run_ranks_supervised(2, &cfg, |r| {
            let peer = 1 - r.rank();
            let _ = r.recv(peer, 7);
        })
        .unwrap_err();
        assert_eq!(
            err,
            SimError::Cancelled {
                reason: CancelReason::Deadline
            }
        );
    }

    #[test]
    fn clean_supervised_run_matches_run_ranks() {
        let body = |r: &mut Rank| {
            let data = vec![7u8; 64];
            let got = r.bcast(0, &data);
            got.len()
        };
        let classic = run_ranks(5, body);
        let supervised = run_ranks_with_faults(5, &FaultPlan::none(), body)
            .expect("clean run")
            .into_results()
            .expect("all ranks completed");
        assert_eq!(classic.len(), supervised.len());
        for (a, b) in classic.iter().zip(&supervised) {
            assert_eq!(a.value, b.value);
            assert_eq!(a.stats, b.stats);
        }
    }
}
