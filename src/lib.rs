//! # exareq — lightweight requirements engineering for exascale co-design
//!
//! A full reproduction of *Calotoiu et al., "Lightweight Requirements
//! Engineering for Exascale Co-design" (IEEE CLUSTER 2018)* as a Rust
//! workspace:
//!
//! - [`core`] — the Extra-P-style empirical model generator
//!   (PMNF hypothesis search, cross-validated selection, multi-parameter
//!   models);
//! - [`sim`] — a deterministic message-passing simulator with
//!   real collective algorithms (the cluster substitute);
//! - [`profile`] — requirement counters, call-path
//!   profiles, footprint tracking (the Score-P/PAPI substitute);
//! - [`locality`] — reuse/stack distance, burst sampling,
//!   instruction groups (the Threadspotter substitute);
//! - [`apps`] — behavioural twins of the five study
//!   applications plus the Section II-D matrix-multiply kernels;
//! - [`codesign`] — skeletons, upgrades, straw men, and
//!   the published Table II catalog.
//!
//! Four more crates serve the learned models instead of learning them:
//! [`serve`] is the co-design query daemon behind `exareq serve`;
//! [`fleet`] is the fault-tolerant sharded survey coordinator behind
//! `exareq fleet`, which spreads a measurement grid across serve workers
//! while keeping journal and artifact bytes identical to a sequential run;
//! [`router`] is the replica-aware query front-end behind `exareq router`,
//! consistent-hashing model keys across serve replicas with health-gated
//! failover, hedged retries, and a degraded-mode local fallback; and
//! [`net`] holds the std-only HTTP client and liveness table the fleet
//! and the router share. Alongside them, [`chaos`] is the deterministic
//! fault-injecting TCP proxy behind `exareq chaos`, used to soak the whole
//! serving tier against seeded network faults (partitions, resets,
//! truncation, slow-loris, corruption) replayable from `--chaos-seed`.
//!
//! The [`pipeline`] module wires measurement to modeling: it runs an
//! application survey through the model generator and assembles a complete
//! [`exareq_codesign::AppRequirements`] bundle, exactly as the paper's tool
//! chain does. The [`signal`] module binds `sigaction(2)` in-tree so the
//! CLI can turn `SIGINT`/`SIGTERM` into cooperative cancellation.

#![warn(missing_docs)]

pub mod signal;

pub use exareq_apps as apps;
pub use exareq_chaos as chaos;
pub use exareq_codesign as codesign;
pub use exareq_core as core;
pub use exareq_fleet as fleet;
pub use exareq_locality as locality;
pub use exareq_net as net;
pub use exareq_profile as profile;
pub use exareq_router as router;
pub use exareq_serve as serve;
pub use exareq_sim as sim;

pub mod pipeline {
    //! Measurement → model pipeline (the paper's Figure 2, right side).

    use exareq_codesign::AppRequirements;
    use exareq_core::collective::{symbolize, CollectiveKind, SymbolicCommModel};
    use exareq_core::fit::{FitError, FittedModel};
    use exareq_core::measurement::{Experiment, Measurement};
    use exareq_core::multiparam::{fit_multi, fit_multi_robust, MultiParamConfig};
    use exareq_core::pmnf::Model;
    use exareq_core::quality::{model_relative_errors, ErrorHistogram};
    use exareq_profile::{MetricKind, Survey};

    /// Builds a two-parameter `(p, n)` experiment from survey triples.
    pub fn experiment_from_triples(triples: &[(u64, u64, f64)]) -> Experiment {
        let mut exp = Experiment::new(vec!["p", "n"]);
        for &(p, n, v) in triples {
            exp.push(&[p as f64, n as f64], v);
        }
        exp
    }

    /// Builds a `(p, n)` experiment for one survey metric (optionally
    /// restricted to a channel), carrying each observation's `degraded`
    /// flag into the measurement's `flagged` bit so the fitting layer can
    /// drop and report points from faulty runs. Only each configuration's
    /// *final* attempt contributes: a config that was retried and came
    /// back clean must not also feed its superseded degraded values into
    /// the fit.
    pub fn experiment_from_survey(
        survey: &Survey,
        metric: MetricKind,
        channel: Option<&str>,
    ) -> Experiment {
        let mut exp = Experiment::new(vec!["p", "n"]);
        for o in survey.final_observations() {
            if o.metric != metric || o.channel.as_deref() != channel {
                continue;
            }
            if o.degraded {
                exp.push_flagged(&[o.p as f64, o.n as f64], o.value);
            } else {
                exp.push(&[o.p as f64, o.n as f64], o.value);
            }
        }
        exp
    }

    fn describe_dropped(label: &str, dropped: &[Measurement]) -> Vec<String> {
        dropped
            .iter()
            .map(|m| {
                format!(
                    "{label} at p={} n={}: measured in a degraded run, excluded from fit",
                    m.coords[0], m.coords[1]
                )
            })
            .collect()
    }

    /// Result of modeling one application survey.
    #[derive(Debug, Clone)]
    pub struct ModeledApp {
        /// The assembled requirements bundle (for co-design analyses).
        pub requirements: AppRequirements,
        /// Every fitted model with its quality statistics, labeled.
        pub fitted: Vec<(String, FittedModel)>,
        /// Symbolic per-collective communication models (Table II comm rows).
        pub comm_symbolic: Vec<SymbolicCommModel>,
        /// Human-readable report of everything that did *not* contribute to
        /// the models: measurements from degraded runs excluded by the
        /// robust fits, and `(p, n)` configurations the survey skipped
        /// outright (all ranks dead, deadlock abort). Empty for clean
        /// surveys.
        pub dropped: Vec<String>,
    }

    fn collective_kind(label: &str) -> CollectiveKind {
        match label {
            "Bcast" => CollectiveKind::Bcast,
            "Allreduce" => CollectiveKind::Allreduce,
            "Allgather" => CollectiveKind::Allgather,
            "Alltoall" => CollectiveKind::Alltoall,
            _ => CollectiveKind::PointToPoint,
        }
    }

    /// Growth ordering on two-parameter models: compares the dominant `n`
    /// exponents, then the dominant `p` exponents.
    fn faster_growing(a: &Model, b: &Model) -> bool {
        let (an, bn) = (a.dominant_exponents(1), b.dominant_exponents(1));
        match an.growth_cmp(&bn) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => {
                a.dominant_exponents(0).growth_cmp(&b.dominant_exponents(0))
                    == std::cmp::Ordering::Greater
            }
        }
    }

    /// Fits all Table I requirement models from a survey, assembling the
    /// per-application bundle the co-design analyses consume.
    ///
    /// The stack-distance model is the fastest-growing model over all
    /// instruction groups (the paper "selected all models with the fastest
    /// growing requirements"). Communication is fitted both in total (the
    /// bundle's `comm_bytes`) and per collective class (symbolic rows).
    ///
    /// # Errors
    /// Propagates the first [`FitError`] encountered.
    pub fn model_requirements(
        survey: &Survey,
        cfg: &MultiParamConfig,
    ) -> Result<ModeledApp, FitError> {
        let mut fitted: Vec<(String, FittedModel)> = Vec::new();
        let mut dropped: Vec<String> = Vec::new();
        for s in &survey.skipped {
            dropped.push(format!(
                "configuration p={} n={}: no usable measurement ({})",
                s.p, s.n, s.reason
            ));
        }

        let fit_metric = |metric: MetricKind,
                          label: &str,
                          dropped: &mut Vec<String>|
         -> Result<FittedModel, FitError> {
            let exp = experiment_from_survey(survey, metric, None);
            let robust = fit_multi_robust(&exp, cfg)?;
            dropped.extend(describe_dropped(label, &robust.dropped));
            Ok(robust.fitted)
        };

        let bytes_used = fit_metric(MetricKind::BytesUsed, "#Bytes used", &mut dropped)?;
        let flops = fit_metric(MetricKind::Flops, "#FLOP", &mut dropped)?;
        let loads_stores = fit_metric(MetricKind::LoadsStores, "#Loads & stores", &mut dropped)?;
        fitted.push(("#Bytes used".into(), bytes_used.clone()));
        fitted.push(("#FLOP".into(), flops.clone()));
        fitted.push(("#Loads & stores".into(), loads_stores.clone()));

        // Stack distance: one model per instruction group; keep the fastest
        // growing as the app-level row.
        let mut stack_best: Option<FittedModel> = None;
        for group in survey.channels(MetricKind::StackDistance) {
            let exp = experiment_from_survey(survey, MetricKind::StackDistance, Some(&group));
            let robust = fit_multi_robust(&exp, cfg)?;
            dropped.extend(describe_dropped(
                &format!("Stack distance [{group}]"),
                &robust.dropped,
            ));
            let fm = robust.fitted;
            fitted.push((format!("Stack distance [{group}]"), fm.clone()));
            let take = match &stack_best {
                None => true,
                Some(best) => faster_growing(&fm.model, &best.model),
            };
            if take {
                stack_best = Some(fm);
            }
        }
        let stack_distance = stack_best.ok_or(FitError::NoViableHypothesis)?;

        // I/O (Section II-A: handled analogously to communication) — fitted
        // only when the application actually performs I/O; the five study
        // twins do not, matching the paper.
        let io_exp = experiment_from_survey(survey, MetricKind::IoBytes, None);
        if !io_exp.points.is_empty() {
            let robust = fit_multi_robust(&io_exp, cfg)?;
            dropped.extend(describe_dropped("#Bytes read & written", &robust.dropped));
            fitted.push(("#Bytes read & written".into(), robust.fitted));
        }

        // Per-collective symbolic communication models. The application's
        // total communication model is the *sum* of the per-class fits —
        // Table II likewise reports communication as stacked per-collective
        // rows rather than one fit of the mixed total (whose superimposed
        // structures, e.g. icoFoam's three terms, defeat a direct fit).
        let mut comm_symbolic = Vec::new();
        for class in survey.channels(MetricKind::CommBytes) {
            let exp = experiment_from_survey(survey, MetricKind::CommBytes, Some(&class));
            let (clean, class_dropped) = exp.split_clean();
            dropped.extend(describe_dropped(
                &format!("#Bytes sent & received [{class}]"),
                &class_dropped,
            ));
            let sym = symbolize(collective_kind(&class), &clean, cfg)?;
            comm_symbolic.push(sym);
        }
        let comm_total = {
            let class_models: Vec<&Model> = comm_symbolic.iter().map(|s| &s.raw.model).collect();
            let summed = if class_models.is_empty() {
                let robust = fit_multi_robust(
                    &experiment_from_survey(survey, MetricKind::CommBytes, None),
                    cfg,
                )?;
                dropped.extend(describe_dropped("#Bytes sent & received", &robust.dropped));
                robust.fitted.model
            } else {
                Model::sum(&class_models)
            };
            // Quality statistics of the summed model against the total
            // (clean points only — degraded totals would misstate quality).
            let (total_exp, _) =
                experiment_from_survey(survey, MetricKind::CommBytes, None).split_clean();
            let pred: Vec<f64> = total_exp
                .points
                .iter()
                .map(|m| summed.eval(&m.coords))
                .collect();
            let actual: Vec<f64> = total_exp.points.iter().map(|m| m.value).collect();
            FittedModel {
                smape: exareq_core::quality::smape(&pred, &actual),
                cv_smape: comm_symbolic
                    .iter()
                    .map(|s| s.raw.cv_smape)
                    .fold(0.0, f64::max),
                r2: exareq_core::quality::r_squared(&pred, &actual),
                adj_r2: exareq_core::quality::r_squared(&pred, &actual),
                model: summed,
            }
        };
        fitted.push(("#Bytes sent & received".into(), comm_total.clone()));

        Ok(ModeledApp {
            requirements: AppRequirements {
                name: survey.app.clone(),
                bytes_used: bytes_used.model,
                flops: flops.model,
                comm_bytes: comm_total.model,
                loads_stores: loads_stores.model,
                stack_distance: stack_distance.model,
            },
            fitted,
            comm_symbolic,
            dropped,
        })
    }

    /// A call path with its fitted computation model — the unit of the
    /// scalability-bug hunt.
    #[derive(Debug, Clone)]
    pub struct RegionModel {
        /// `/`-separated call path (e.g. `main/ks_congrad`).
        pub path: String,
        /// Fitted per-process FLOP model of the region.
        pub fitted: FittedModel,
    }

    /// The original Extra-P use case (SC13, cited as the method's origin in
    /// Section II-C): fit a model *per call path* and rank regions by how
    /// fast their computation grows with the process count — the fastest
    /// growers are the scalability bugs. Returns regions sorted worst
    /// first; regions whose models are constant in `p` come last.
    ///
    /// # Errors
    /// Propagates the first fitting error.
    pub fn find_scalability_bugs(
        survey: &Survey,
        cfg: &MultiParamConfig,
    ) -> Result<Vec<RegionModel>, FitError> {
        let mut out = Vec::new();
        for path in survey.channels(MetricKind::Flops) {
            // fit_multi drops flagged (degraded-run) points internally.
            let exp = experiment_from_survey(survey, MetricKind::Flops, Some(&path));
            let fitted = fit_multi(&exp, cfg)?;
            out.push(RegionModel { path, fitted });
        }
        let p_idx = 0; // experiments are over ("p", "n")
        out.sort_by(|a, b| {
            let ga = a.fitted.model.dominant_exponents(p_idx);
            let gb = b.fitted.model.dominant_exponents(p_idx);
            gb.growth_cmp(&ga)
        });
        Ok(out)
    }

    /// Classifies every measurement of a survey by the relative error of
    /// the model that explains it — the Figure 3 histogram.
    pub fn error_histogram(surveys_and_models: &[(&Survey, &ModeledApp)]) -> ErrorHistogram {
        let mut hist = ErrorHistogram::default();
        for (survey, modeled) in surveys_and_models {
            let pairs: [(MetricKind, &Model); 4] = [
                (MetricKind::BytesUsed, &modeled.requirements.bytes_used),
                (MetricKind::Flops, &modeled.requirements.flops),
                (MetricKind::CommBytes, &modeled.requirements.comm_bytes),
                (MetricKind::LoadsStores, &modeled.requirements.loads_stores),
            ];
            for (metric, model) in pairs {
                // Judge models on clean measurements only — degraded points
                // were never fitted and would misstate model quality.
                let (exp, _) = experiment_from_survey(survey, metric, None).split_clean();
                hist.extend(&model_relative_errors(model, &exp));
            }
            // Stack distance per group, against the fitted group models.
            for (label, fm) in &modeled.fitted {
                if let Some(group) = label
                    .strip_prefix("Stack distance [")
                    .and_then(|s| s.strip_suffix(']'))
                {
                    let (exp, _) =
                        experiment_from_survey(survey, MetricKind::StackDistance, Some(group))
                            .split_clean();
                    hist.extend(&model_relative_errors(&fm.model, &exp));
                }
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::pipeline::*;

    #[test]
    fn experiment_from_triples_builds_grid() {
        let exp = experiment_from_triples(&[(2, 10, 1.0), (4, 10, 2.0)]);
        assert_eq!(exp.params, vec!["p".to_string(), "n".to_string()]);
        assert_eq!(exp.points.len(), 2);
        assert_eq!(exp.points[1].coords, vec![4.0, 10.0]);
    }

    #[test]
    fn experiment_from_survey_carries_degraded_flags() {
        use exareq_profile::{MetricKind, Survey};
        let mut s = Survey::new("x");
        s.push(2, 10, MetricKind::Flops, 1.0);
        s.push_degraded(4, 10, MetricKind::Flops, 0.5);
        let exp = experiment_from_survey(&s, MetricKind::Flops, None);
        assert_eq!(exp.points.len(), 2);
        assert!(!exp.points[0].flagged);
        assert!(exp.points[1].flagged);
    }

    #[test]
    fn degraded_survey_still_models_and_reports_drops() {
        use exareq_core::multiparam::MultiParamConfig;
        use exareq_profile::{MetricKind, Survey};

        let mut s = Survey::new("synthetic");
        for &p in &[2u64, 4, 8, 16, 32] {
            for &n in &[64u64, 128, 256, 512, 1024] {
                let (pf, nf) = (p as f64, n as f64);
                s.push(p, n, MetricKind::BytesUsed, 8.0 * nf);
                s.push(p, n, MetricKind::Flops, 2.0 * pf * nf);
                s.push(p, n, MetricKind::LoadsStores, 4.0 * nf);
                s.push(p, n, MetricKind::CommBytes, 16.0 * nf);
                s.push_channel(p, n, MetricKind::StackDistance, "g0", nf);
            }
        }
        // Two garbage values from a degraded run plus one unusable config.
        s.push_degraded(4, 128, MetricKind::Flops, 1e12);
        s.push_degraded(4, 128, MetricKind::BytesUsed, 3.0);
        s.note_skipped(64, 1024, "all 64 ranks failed");

        let modeled = model_requirements(&s, &MultiParamConfig::coarse()).unwrap();
        assert_eq!(modeled.dropped.len(), 3);
        assert!(modeled
            .dropped
            .iter()
            .any(|d| d.contains("all 64 ranks failed")));
        assert!(modeled
            .dropped
            .iter()
            .any(|d| d.contains("#FLOP at p=4 n=128")));
        // The garbage points did not poison the fit: the FLOP model still
        // predicts ~2·p·n at an unmeasured scale.
        let v = modeled.requirements.flops.eval(&[64.0, 2048.0]);
        let expect = 2.0 * 64.0 * 2048.0;
        assert!(
            (v - expect).abs() / expect < 0.05,
            "flops model off: {v} vs {expect}"
        );
    }
}
