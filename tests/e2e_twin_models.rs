//! Experiment E1 end-to-end: survey each behavioural twin on the simulator
//! and verify that the model generator re-discovers its Table II
//! requirement signature — lead exponents in `n` and `p` — from raw
//! counters alone.

use exareq::apps::{survey_app, AppGrid, IcoFoam, Kripke, Lulesh, Milc, MiniApp, Relearn};
use exareq::core::multiparam::MultiParamConfig;
use exareq::core::pmnf::{Exponents, Model};
use exareq::pipeline::{error_histogram, model_requirements, ModeledApp};
use exareq::profile::Survey;

fn modeled(app: &dyn MiniApp) -> (Survey, ModeledApp) {
    let survey = survey_app(app, &AppGrid::default());
    let m = model_requirements(&survey, &MultiParamConfig::default())
        .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
    (survey, m)
}

fn lead(model: &Model) -> (Exponents, Exponents) {
    // (p-exponents, n-exponents)
    (model.dominant_exponents(0), model.dominant_exponents(1))
}

fn assert_lead(model: &Model, p: (f64, f64), n: (f64, f64), what: &str) {
    let (fp, fn_) = lead(model);
    assert_eq!((fp.poly, fp.log), p, "{what}: p-exponents of {model}");
    assert_eq!((fn_.poly, fn_.log), n, "{what}: n-exponents of {model}");
}

#[test]
fn kripke_signature_recovered() {
    let (_, m) = modeled(&Kripke);
    let r = &m.requirements;
    assert_lead(&r.bytes_used, (0.0, 0.0), (1.0, 0.0), "Kripke bytes");
    assert_lead(&r.flops, (0.0, 0.0), (1.0, 0.0), "Kripke flops");
    assert_lead(&r.comm_bytes, (0.0, 0.0), (1.0, 0.0), "Kripke comm");
    // Loads & stores: c1·n + c2·n·p — the ⚠ row.
    assert_lead(&r.loads_stores, (1.0, 0.0), (1.0, 0.0), "Kripke loads");
    assert!(r.loads_stores.has_multiplicative_interaction());
    // Stack distance constant.
    assert!(!r.stack_distance.depends_on(1), "{}", r.stack_distance);
}

#[test]
fn lulesh_signature_recovered() {
    let (_, m) = modeled(&Lulesh);
    let r = &m.requirements;
    assert_lead(&r.bytes_used, (0.0, 0.0), (1.0, 1.0), "LULESH bytes");
    assert_lead(&r.flops, (0.25, 1.0), (1.0, 1.0), "LULESH flops");
    assert_lead(&r.comm_bytes, (0.25, 1.0), (1.0, 0.0), "LULESH comm");
    assert_lead(&r.loads_stores, (0.0, 1.0), (1.0, 1.0), "LULESH loads");
    assert!(!r.stack_distance.depends_on(1));
    assert!(r.flops.has_multiplicative_interaction());
}

#[test]
fn milc_signature_recovered() {
    let (_, m) = modeled(&Milc);
    let r = &m.requirements;
    assert_lead(&r.bytes_used, (0.0, 0.0), (1.0, 0.0), "MILC bytes");
    // FLOP: c1·n + c2·n·log p — dominant n is linear; p side shows log p.
    let (fp, fn_) = lead(&r.flops);
    assert_eq!((fn_.poly, fn_.log), (1.0, 0.0), "MILC flops n: {}", r.flops);
    assert_eq!((fp.poly, fp.log), (0.0, 1.0), "MILC flops p: {}", r.flops);
    // Loads & stores: c0 + c1·n·log n + c2·p^1.5.
    let (fp, fn_) = lead(&r.loads_stores);
    assert_eq!(
        (fn_.poly, fn_.log),
        (1.0, 1.0),
        "MILC loads n: {}",
        r.loads_stores
    );
    assert_eq!(
        (fp.poly, fp.log),
        (1.5, 0.0),
        "MILC loads p: {}",
        r.loads_stores
    );
    assert!(r.loads_stores.constant > 0.0, "{}", r.loads_stores);
    // The MILC ⚠: stack distance grows linearly with n.
    assert_lead(
        &r.stack_distance,
        (0.0, 0.0),
        (1.0, 0.0),
        "MILC stack distance",
    );
}

#[test]
fn relearn_signature_recovered() {
    let (_, m) = modeled(&Relearn);
    let r = &m.requirements;
    assert_lead(&r.bytes_used, (0.0, 0.0), (0.5, 0.0), "Relearn bytes");
    // FLOP: c₁·n log n·log p + c₂·p — the dominant-p exponent comes from
    // the additive p term; the interaction term carries log p only.
    let flops = &r.flops;
    let has_interaction = flops.terms.iter().any(|t| {
        t.factors[1] == Exponents::new(1.0, 1.0) && t.factors[0] == Exponents::new(0.0, 1.0)
    });
    assert!(has_interaction, "Relearn flops: {flops}");
    let has_p_term = flops
        .terms
        .iter()
        .any(|t| t.factors[0] == Exponents::new(1.0, 0.0) && t.factors[1].is_constant());
    assert!(has_p_term, "Relearn flops: {flops}");
    // Loads & stores additive: n log n + p log p.
    let (fp, fn_) = lead(&r.loads_stores);
    assert_eq!(
        (fn_.poly, fn_.log),
        (1.0, 1.0),
        "Relearn loads n: {}",
        r.loads_stores
    );
    assert_eq!(fp.poly, 1.0, "Relearn loads p: {}", r.loads_stores);
    assert!(!r.stack_distance.depends_on(1));
}

#[test]
fn icofoam_signature_recovered() {
    let (_, m) = modeled(&IcoFoam);
    let r = &m.requirements;
    // Footprint: c1·n + c2·p·log p — the exclusion hazard.
    let (fp, fn_) = lead(&r.bytes_used);
    assert_eq!(
        (fn_.poly, fn_.log),
        (1.0, 0.0),
        "icoFoam bytes n: {}",
        r.bytes_used
    );
    assert_eq!(
        (fp.poly, fp.log),
        (1.0, 1.0),
        "icoFoam bytes p: {}",
        r.bytes_used
    );
    assert_lead(&r.flops, (0.5, 0.0), (1.5, 0.0), "icoFoam flops");
    assert_lead(&r.loads_stores, (0.5, 1.0), (1.0, 1.0), "icoFoam loads");
    // Comm (Table II: n^0.5·Allreduce(p) + p^0.5·log p + n·p^0.375): the
    // n-side is dominated by the n·p^0.375 faces; the fastest p-term is the
    // flagged p^0.5·log p.
    let comm = &r.comm_bytes;
    let (fp, fn_) = lead(comm);
    assert_eq!((fn_.poly, fn_.log), (1.0, 0.0), "icoFoam comm n: {comm}");
    assert_eq!((fp.poly, fp.log), (0.5, 1.0), "icoFoam comm p: {comm}");
    let has_np = comm.terms.iter().any(|t| {
        (t.factors[0].poly - 0.375).abs() < 1e-9 && t.factors[1] == Exponents::new(1.0, 0.0)
    });
    assert!(has_np, "icoFoam comm missing n·p^0.375: {comm}");
    // And the allreduce row carries the √n payload.
    let ar = m
        .comm_symbolic
        .iter()
        .find(|s| s.kind == exareq::core::collective::CollectiveKind::Allreduce)
        .expect("icoFoam has an allreduce row");
    assert_eq!(
        ar.scale.model.dominant_exponents(1),
        Exponents::new(0.5, 0.0),
        "icoFoam AR scale: {}",
        ar.scale.model
    );
}

#[test]
fn scalability_bug_hunt_pins_the_region() {
    // The SC13 use case on MILC: per-call-path models must expose
    // `overlap_recompute` (the hidden n·log p growth) as the fastest
    // grower in p, ahead of the p-constant compute regions.
    use exareq::pipeline::find_scalability_bugs;
    let survey = survey_app(&Milc, &AppGrid::default());
    let regions = find_scalability_bugs(&survey, &MultiParamConfig::default()).unwrap();
    assert!(regions.len() >= 3, "{}", regions.len());
    assert_eq!(regions[0].path, "main/overlap_recompute");
    assert_eq!(
        regions[0].fitted.model.dominant_exponents(0),
        Exponents::new(0.0, 1.0),
        "{}",
        regions[0].fitted.model
    );
    // The rest are p-constant.
    for r in &regions[1..] {
        assert!(
            !r.fitted.model.depends_on(0),
            "{}: {}",
            r.path,
            r.fitted.model
        );
    }
}

#[test]
fn warnings_match_table_two_pattern() {
    use exareq::codesign::{RateMetric, Warning};
    let (_, kripke) = modeled(&Kripke);
    assert_eq!(
        kripke.requirements.warnings(),
        vec![Warning::MultiplicativeInteraction(RateMetric::MemoryAccess)]
    );
    let (_, milc) = modeled(&Milc);
    assert!(milc
        .requirements
        .warnings()
        .contains(&Warning::LocalityDecaysWithN));
    let (_, ico) = modeled(&IcoFoam);
    assert!(ico
        .requirements
        .warnings()
        .contains(&Warning::FootprintGrowsWithP));
}

#[test]
fn figure3_error_quality_on_twins() {
    // Deterministic counters → the twin study should beat the paper's 88%
    // of measurements under 5% relative error by a wide margin.
    let apps: Vec<Box<dyn MiniApp>> = vec![Box::new(Kripke), Box::new(Relearn)];
    let cfg = MultiParamConfig::default();
    let pairs: Vec<(Survey, ModeledApp)> = apps
        .iter()
        .map(|a| {
            let s = survey_app(a.as_ref(), &AppGrid::small());
            let m = model_requirements(&s, &cfg).unwrap();
            (s, m)
        })
        .collect();
    let refs: Vec<(&Survey, &ModeledApp)> = pairs.iter().map(|(s, m)| (s, m)).collect();
    let hist = error_histogram(&refs);
    assert!(hist.total() > 100, "{}", hist.total());
    assert!(
        hist.frac_below_5pct() > 0.88,
        "only {:.1}% below 5%:\n{}",
        hist.frac_below_5pct() * 100.0,
        hist.render()
    );
}

#[test]
fn symbolic_comm_rows_are_clean_for_fixed_count_collectives() {
    // MILC's allreduce count is fixed → the symbolic row must factor out
    // the algorithmic p-dependence completely.
    let (_, m) = modeled(&Milc);
    let ar = m
        .comm_symbolic
        .iter()
        .find(|s| s.kind == exareq::core::collective::CollectiveKind::Allreduce)
        .expect("MILC has an allreduce row");
    assert!(ar.is_clean(), "scale model: {}", ar.scale.model);
    let bc = m
        .comm_symbolic
        .iter()
        .find(|s| s.kind == exareq::core::collective::CollectiveKind::Bcast)
        .expect("MILC has a bcast row");
    assert!(bc.is_clean(), "scale model: {}", bc.scale.model);
}
