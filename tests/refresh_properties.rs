//! Property-based verification of the refresh subsystem: the rank-1 QR
//! row update agrees with batch least squares, the incremental refitter
//! agrees with seeding from scratch, and the observation journal is
//! crash-exact at every possible truncation point.

use exareq::core::linalg::{lstsq, Matrix, QrFactor};
use exareq::core::pmnf::{Exponents, Model, Term};
use exareq::core::refresh::IncrementalFit;
use exareq::profile::obslog::{ObsEntry, ObsLine, ObsManifest, ObservationLog};
use proptest::prelude::*;

/// A two-parameter hypothesis `c₀ + c₁·p·log2(p) + c₂·n` to refit.
fn hypothesis() -> Model {
    Model::new(
        1.0,
        vec![
            Term::new(1.0, vec![Exponents::new(1.0, 1.0), Exponents::constant()]),
            Term::new(1.0, vec![Exponents::constant(), Exponents::new(1.0, 0.0)]),
        ],
        vec!["p".to_string(), "n".to_string()],
    )
}

/// The full `(p, n)` grid the strategies below sample from.
fn grid() -> Vec<Vec<f64>> {
    let mut coords = Vec::new();
    for &p in &[2.0, 4.0, 8.0, 16.0, 32.0] {
        for &n in &[64.0, 128.0, 256.0, 512.0] {
            coords.push(vec![p, n]);
        }
    }
    coords
}

/// Noisy observations over the whole grid: one multiplicative
/// perturbation per configuration, drawn by proptest.
fn observations() -> impl Strategy<Value = Vec<(Vec<f64>, f64)>> {
    proptest::collection::vec(-0.05f64..0.05, grid().len()).prop_map(|noise| {
        grid()
            .into_iter()
            .zip(noise)
            .map(|(c, eps)| {
                let truth = 100.0 + 3.0 * c[0] * c[0].log2() + 0.5 * c[1];
                (c, truth * (1.0 + eps))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Seeding a `QrFactor` with `m` rows and pushing the rest one at a
    /// time solves the same coefficients as batch least squares over all
    /// rows at once — the rank-1 update loses nothing.
    #[test]
    fn qr_push_row_agrees_with_batch_lstsq(
        xs in proptest::collection::vec(1.0f64..100.0, 6..16),
        ys in proptest::collection::vec(-50.0f64..50.0, 16),
        seed_rows in 3usize..5,
    ) {
        let rows = xs.len();
        prop_assume!(seed_rows < rows);
        let mut a = Matrix::zeros(rows, 3);
        let mut b = vec![0.0; rows];
        for r in 0..rows {
            // Distinct abscissae keep the Vandermonde-ish design
            // well-conditioned for both solvers.
            let x = xs[r] + 150.0 * r as f64;
            a[(r, 0)] = 1.0;
            a[(r, 1)] = x;
            a[(r, 2)] = x * x / 1000.0;
            b[r] = ys[r % ys.len()];
        }
        let batch = lstsq(&a, &b).unwrap();

        let mut seed_a = Matrix::zeros(seed_rows, 3);
        for r in 0..seed_rows {
            for c in 0..3 {
                seed_a[(r, c)] = a[(r, c)];
            }
        }
        let mut qr = QrFactor::new(&seed_a, &b[..seed_rows]).unwrap();
        for r in seed_rows..rows {
            qr.push_row(&[a[(r, 0)], a[(r, 1)], a[(r, 2)]], b[r]).unwrap();
        }
        let pushed = qr.solve().unwrap();
        for (i, (p, q)) in pushed.iter().zip(&batch).enumerate() {
            prop_assert!(
                (p - q).abs() <= 1e-6 * (1.0 + q.abs()),
                "coefficient {i}: pushed {p} vs batch {q}"
            );
        }
    }

    /// An [`IncrementalFit`] seeded small and grown by `push` is the same
    /// fit as one seeded from the full observation set: same coefficients,
    /// same predictions, same LOO summary.
    #[test]
    fn incremental_refit_agrees_with_from_scratch(
        pts in observations(),
        seed_count in 4usize..10,
    ) {
        let mut inc = IncrementalFit::new(&hypothesis(), &pts[..seed_count]).unwrap();
        for (coords, value) in &pts[seed_count..] {
            inc.push(coords, *value).unwrap();
        }
        let scratch = IncrementalFit::new(&hypothesis(), &pts).unwrap();

        prop_assert_eq!(inc.observations(), scratch.observations());
        let (a, b) = (inc.model(), scratch.model());
        prop_assert!(
            (a.constant - b.constant).abs() <= 1e-6 * (1.0 + b.constant.abs()),
            "constant {} vs {}", a.constant, b.constant
        );
        for (ta, tb) in a.terms.iter().zip(&b.terms) {
            prop_assert!(
                (ta.coeff - tb.coeff).abs() <= 1e-6 * (1.0 + tb.coeff.abs()),
                "coeff {} vs {}", ta.coeff, tb.coeff
            );
        }
        // The agreement is behavioural too: identical extrapolation.
        for probe in [[64.0, 8192.0], [128.0, 65536.0]] {
            let (pa, pb) = (a.eval(&probe), b.eval(&probe));
            prop_assert!((pa - pb).abs() <= 1e-6 * (1.0 + pb.abs()), "{pa} vs {pb}");
        }
        let (la, lb) = (inc.loo().unwrap(), scratch.loo().unwrap());
        prop_assert!((la.cv_smape - lb.cv_smape).abs() <= 1e-6 * (1.0 + lb.cv_smape));
        prop_assert!((la.ci95_rel - lb.ci95_rel).abs() <= 1e-6 * (1.0 + lb.ci95_rel));
    }

    /// On noise-free data the incremental refitter recovers the generating
    /// coefficients exactly, for any coefficients and any observation order.
    #[test]
    fn incremental_fit_recovers_exact_coefficients(
        c0 in 1.0f64..500.0,
        c1 in 0.1f64..50.0,
        c2 in 0.01f64..10.0,
        rotate in 0usize..20,
    ) {
        let mut pts: Vec<(Vec<f64>, f64)> = grid()
            .into_iter()
            .map(|c| {
                let v = c0 + c1 * c[0] * c[0].log2() + c2 * c[1];
                (c, v)
            })
            .collect();
        pts.rotate_left(rotate % pts.len());
        let fit = IncrementalFit::new(&hypothesis(), &pts).unwrap();
        let m = fit.model();
        prop_assert!((m.constant - c0).abs() <= 1e-6 * (1.0 + c0), "{}", m.constant);
        prop_assert!((m.terms[0].coeff - c1).abs() <= 1e-6 * (1.0 + c1));
        prop_assert!((m.terms[1].coeff - c2).abs() <= 1e-6 * (1.0 + c2));
    }

    /// Crash-exactness of the observation journal: truncate the file at
    /// *any* byte past the manifest (a torn final append) and resume —
    /// the surviving lines are exactly the longest whole-line prefix of
    /// what was appended, and the log accepts new appends from there.
    #[test]
    fn journal_resume_is_exact_at_every_truncation_point(
        values in proptest::collection::vec(0.5f64..1e9, 2..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = std::env::temp_dir().join("exareq_refresh_prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "torn_{}_{}.obs.jsonl",
            std::process::id(),
            values.len() as u64 ^ values[0].to_bits()
        ));
        let _ = std::fs::remove_file(&path);

        let manifest = ObsManifest::new("kripke", vec!["p".to_string(), "n".to_string()]);
        let lines: Vec<ObsLine> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| ObsLine::Observation(ObsEntry {
                coords: vec![2.0 * (i + 1) as f64, 64.0],
                metric: "flops".to_string(),
                value: v,
            }))
            .collect();
        let mut log = ObservationLog::create(&path, manifest.clone()).unwrap();
        for line in &lines {
            log.append(line).unwrap();
        }
        drop(log);

        // Cut anywhere in the appended region (the manifest survives).
        let total = std::fs::metadata(&path).unwrap().len();
        let appended: u64 = lines.iter().map(|l| l.to_line().len() as u64 + 1).sum();
        let header = total - appended;
        let cut = header + (cut_frac * appended as f64) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        // Expected survivors: every line wholly (newline included) below
        // the cut.
        let mut offset = header;
        let mut expect = 0usize;
        for line in &lines {
            offset += line.to_line().len() as u64 + 1;
            if offset <= cut {
                expect += 1;
            }
        }

        let mut log = ObservationLog::resume(&path, &manifest).unwrap();
        prop_assert_eq!(log.lines(), &lines[..expect]);
        prop_assert_eq!(log.dropped_tail(), offset_is_torn(&lines, header, cut));

        // The truncated log keeps its durability contract: a new append
        // lands cleanly after the surviving prefix.
        let extra = ObsLine::RefitMark {
            metric: "flops".to_string(),
            kind: "full".to_string(),
        };
        log.append(&extra).unwrap();
        drop(log);
        let log = ObservationLog::resume(&path, &manifest).unwrap();
        prop_assert_eq!(log.lines().len(), expect + 1);
        prop_assert_eq!(log.since_full_refit("flops"), 0);
        let _ = std::fs::remove_file(&path);
    }
}

/// Whether a cut at `cut` bytes leaves a partial (torn) line behind.
fn offset_is_torn(lines: &[ObsLine], header: u64, cut: u64) -> bool {
    let mut offset = header;
    for line in lines {
        let next = offset + line.to_line().len() as u64 + 1;
        if cut > offset && cut < next {
            return true;
        }
        offset = next;
    }
    false
}
