//! Extension experiment **E8**: space-sharing co-design (Section II-E).
//!
//! The paper notes its approach "can map more than one application on a
//! given system simultaneously … in space according to a certain ratio"
//! but leaves the study out of scope. This binary runs it: the trade-off
//! frontier between pairs of study applications sharing the reference
//! system, and a three-way split.
//!
//! Run with `cargo run --release -p exareq-bench --bin sharing`.

use exareq_bench::write_report;
use exareq_codesign::{catalog, share_system, two_app_frontier, SystemSkeleton};

fn main() {
    let sys = SystemSkeleton::reference_large();
    let mut out = String::new();
    out.push_str(&format!(
        "== E8: space-sharing co-design ==\nsystem: p = {:.0e}, {:.1e} B/process\n\n",
        sys.processes, sys.mem_per_process
    ));

    // Trade-off frontier: Kripke vs Relearn.
    let kripke = catalog::kripke();
    let relearn = catalog::relearn();
    out.push_str("Kripke/Relearn frontier (fraction to Kripke, overall problems):\n");
    out.push_str("  f(Kripke)   N(Kripke)      N(Relearn)\n");
    for (f, nk, nr) in two_app_frontier(&kripke, &relearn, &sys, 0.125) {
        out.push_str(&format!("  {f:>8.3}   {nk:>12.3e}   {nr:>12.3e}\n"));
    }
    out.push_str(
        "  Both footprints are p-independent, so each application's per-process\n\
         problem size is unchanged by the split and the overall problems trade\n\
         off linearly: the frontier offers no sweet spot, and the split is a\n\
         pure priority call (the paper's point that sharing is 'a matter of\n\
         scientific priority', outside the method's scope).\n\n",
    );

    // Three-way split with requirements.
    let milc = catalog::milc();
    let apps = [&kripke, &relearn, &milc];
    let shares = share_system(&apps, &[0.5, 0.25, 0.25], &sys).expect("all fit");
    out.push_str("three-way split (50% Kripke, 25% Relearn, 25% MILC):\n");
    out.push_str(&format!(
        "  {:<10} {:>10} {:>14} {:>14} {:>14} {:>14}\n",
        "app", "processes", "n/process", "overall N", "#FLOP/proc", "comm B/proc"
    ));
    for s in &shares {
        out.push_str(&format!(
            "  {:<10} {:>10.1e} {:>14.4e} {:>14.4e} {:>14.4e} {:>14.4e}\n",
            s.app, s.processes, s.n, s.overall_problem, s.rates[0], s.rates[1]
        ));
    }

    // icoFoam actually *prefers* smaller shares (its footprint grows with p).
    let ico = catalog::icofoam();
    out.push_str("\nicoFoam problem size per process vs share (p·log p footprint):\n");
    for frac in [0.1, 0.25, 0.5, 1.0] {
        let res = share_system(&[&ico], &[frac], &sys).expect("fits");
        out.push_str(&format!(
            "  {:>5.0}% of the machine -> n = {:.4e}, overall N = {:.4e}\n",
            frac * 100.0,
            res[0].n,
            res[0].overall_problem
        ));
    }
    out.push_str(
        "  note the sub-linear growth of icoFoam's overall problem with its\n\
         share — the same pathology that excludes it from Table VII.\n",
    );
    print!("{out}");
    write_report("sharing.txt", &out);
}
