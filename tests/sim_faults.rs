//! Fault tolerance of the simulation substrate, end to end: deadlock
//! detection, deterministic fault injection, per-fault-type accounting,
//! and degraded sweeps flowing through the model generator.

use exareq::apps::{all_apps_extended, survey_app_with_faults, AppGrid, MiniApp};
use exareq::core::multiparam::MultiParamConfig;
use exareq::locality::BurstSampler;
use exareq::pipeline::model_requirements;
use exareq::profile::ProcessProfile;
use exareq::sim::{
    run_ranks_supervised, run_ranks_with_faults, CommStats, FaultPlan, FaultStats, Rank,
    RankStatus, SimConfig, SimError,
};
use std::time::{Duration, Instant};

fn watchdog_cfg(ms: u64) -> SimConfig {
    SimConfig {
        faults: FaultPlan::none(),
        watchdog: Some(Duration::from_millis(ms)),
        cancel: None,
    }
}

// ---------------------------------------------------------------------------
// Deadlock detection
// ---------------------------------------------------------------------------

#[test]
fn crafted_deadlock_is_diagnosed_within_the_timeout() {
    // Both ranks post a receive for a tag nobody ever sends — the classic
    // circular wait. Rank 0 also sends an unrelated message first, so the
    // diagnosis must show it parked (received but unmatched) on rank 1.
    let started = Instant::now();
    let err = run_ranks_supervised(2, &watchdog_cfg(250), |r: &mut Rank| {
        if r.rank() == 0 {
            r.send(1, 5, b"red herring");
        }
        let peer = 1 - r.rank();
        let _ = r.recv(peer, 9); // never sent by anyone
    })
    .expect_err("a circular wait must be reported, not hung");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "watchdog took {:?}",
        started.elapsed()
    );

    let SimError::Deadlock { timeout, blocked } = err else {
        panic!("expected a deadlock diagnosis, got {err:?}");
    };
    assert_eq!(timeout, Duration::from_millis(250));
    assert_eq!(blocked.len(), 2, "both ranks were blocked: {blocked:?}");
    let b0 = blocked.iter().find(|b| b.rank == 0).expect("rank 0 listed");
    assert_eq!((b0.src, b0.tag), (1, 9));
    assert!(b0.pending.is_empty());
    let b1 = blocked.iter().find(|b| b.rank == 1).expect("rank 1 listed");
    assert_eq!((b1.src, b1.tag), (0, 9));
    assert_eq!(b1.pending.len(), 1, "the herring is parked: {b1:?}");
    assert_eq!(
        (b1.pending[0].src, b1.pending[0].tag, b1.pending[0].bytes),
        (0, 5, b"red herring".len())
    );

    // The rendered error names every party, so a bare `{err}` in a log is
    // already a usable diagnosis.
    let msg = SimError::Deadlock { timeout, blocked }.to_string();
    assert!(
        msg.contains("rank 0 blocked in recv(src=1, tag=9)"),
        "{msg}"
    );
    assert!(
        msg.contains("rank 1 blocked in recv(src=0, tag=9)"),
        "{msg}"
    );
    assert!(msg.contains("src=0 tag=5"), "parked queue shown: {msg}");
}

#[test]
fn watchdog_never_fires_on_healthy_kernels() {
    // Every behavioural twin, under a deliberately tight watchdog: the
    // "all live ranks blocked + zero progress" predicate must never
    // misfire on a progressing collective-heavy run.
    for app in all_apps_extended() {
        let outcome = run_ranks_supervised(4, &watchdog_cfg(300), |r: &mut Rank| {
            let mut prof = ProcessProfile::new();
            app.run_rank(r, 64, &mut prof);
        })
        .unwrap_or_else(|e| panic!("{}: watchdog false positive: {e}", app.name()));
        assert!(outcome.stall.is_none(), "{} stalled", app.name());
        assert_eq!(outcome.completed(), 4, "{}", app.name());
        assert!(!outcome.is_degraded(), "{}", app.name());
    }
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

#[test]
fn fault_injection_is_deterministic_for_a_given_seed() {
    let plan = FaultPlan::with_seed(0xBADC_0FFE)
        .drop(0.3)
        .duplicate(0.2)
        .delay(0.2)
        .corrupt(0.25, 2);
    let run = || -> Vec<(RankStatus, CommStats, FaultStats)> {
        let outcome = run_ranks_with_faults(5, &plan, |r: &mut Rank| {
            // Fire-and-forget all-to-all rounds: every fault type gets
            // exercised without any receive that could block on a drop.
            for round in 0..20u64 {
                for dst in 0..r.size() {
                    if dst != r.rank() {
                        r.send(dst, round, &[r.rank() as u8; 32]);
                    }
                }
            }
        })
        .expect("sends never deadlock");
        outcome
            .ranks
            .into_iter()
            .map(|r| (r.status, r.stats, r.faults))
            .collect()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce the run exactly");
    let events = a
        .iter()
        .fold(FaultStats::default(), |acc, (_, _, f)| acc.merged(f))
        .total_events();
    assert!(events > 0, "the plan was supposed to inject something");
}

// ---------------------------------------------------------------------------
// Per-fault-type accounting
// ---------------------------------------------------------------------------

#[test]
fn dropped_messages_never_arrive_and_are_counted() {
    let plan = FaultPlan::with_seed(1).drop(1.0);
    let outcome = run_ranks_with_faults(2, &plan, |r: &mut Rank| {
        if r.rank() == 0 {
            for tag in 0..3 {
                r.send(1, tag, &[9u8; 10]);
            }
        }
    })
    .expect("fire-and-forget completes");
    assert_eq!(outcome.completed(), 2);
    let f = outcome.total_faults();
    assert_eq!(f.dropped_msgs, 3);
    assert_eq!(f.dropped_bytes, 30);
    // The application-side accounting still records the attempted sends;
    // nothing was ever received.
    let s = outcome.total_stats();
    assert_eq!(s.messages_sent, 3);
    assert_eq!(s.total_recv(), 0);
    assert!(outcome.is_degraded());
}

#[test]
fn duplicated_message_is_delivered_twice() {
    let plan = FaultPlan::with_seed(2).duplicate(1.0);
    let outcome = run_ranks_with_faults(2, &plan, |r: &mut Rank| {
        if r.rank() == 0 {
            r.send(1, 7, &[0xAB; 4]);
            Vec::new()
        } else {
            let first = r.recv(0, 7).to_vec();
            let second = r.recv(0, 7).to_vec();
            vec![first, second]
        }
    })
    .expect("duplication cannot block anyone");
    assert_eq!(outcome.completed(), 2);
    let copies = outcome.ranks[1].value.as_ref().expect("rank 1 completed");
    assert_eq!(copies.len(), 2);
    assert_eq!(copies[0], vec![0xAB; 4]);
    assert_eq!(copies[1], vec![0xAB; 4]);
    let f = outcome.total_faults();
    assert_eq!(f.duplicated_msgs, 1);
    assert_eq!(f.duplicated_bytes, 4);
}

#[test]
fn delayed_message_is_reordered_behind_the_next_send() {
    let plan = FaultPlan::with_seed(3).delay(1.0);
    let outcome = run_ranks_with_faults(2, &plan, |r: &mut Rank| {
        if r.rank() == 0 {
            r.send(1, 1, b"first"); // parked by the fault layer
            r.send(1, 2, b"second"); // goes out, then flushes "first" behind it
            (Vec::new(), Vec::new())
        } else {
            let a = r.recv(0, 1).to_vec();
            let b = r.recv(0, 2).to_vec();
            (a, b)
        }
    })
    .expect("delay reorders but never loses");
    assert_eq!(outcome.completed(), 2);
    let (a, b) = outcome.ranks[1].value.as_ref().expect("rank 1 completed");
    assert_eq!(a, b"first");
    assert_eq!(b, b"second");
    assert_eq!(outcome.total_faults().delayed_msgs, 1);
}

#[test]
fn delayed_message_flushes_when_the_sender_completes() {
    let plan = FaultPlan::with_seed(4).delay(1.0);
    let outcome = run_ranks_with_faults(2, &plan, |r: &mut Rank| {
        if r.rank() == 0 {
            r.send(1, 3, b"late"); // parked; no further send to flush it
            Vec::new()
        } else {
            r.recv(0, 3).to_vec()
        }
    })
    .expect("completion flushes the parked message");
    assert_eq!(outcome.completed(), 2);
    assert_eq!(
        outcome.ranks[1].value.as_ref().expect("rank 1 completed"),
        b"late"
    );
    assert_eq!(outcome.total_faults().delayed_msgs, 1);
}

#[test]
fn corruption_flips_exactly_the_accounted_bytes() {
    let plan = FaultPlan::with_seed(5).corrupt(1.0, 2);
    let outcome = run_ranks_with_faults(2, &plan, |r: &mut Rank| {
        if r.rank() == 0 {
            r.send(1, 0, &[0u8; 32]);
            Vec::new()
        } else {
            r.recv(0, 0).to_vec()
        }
    })
    .expect("corruption does not block delivery");
    let data = outcome.ranks[1].value.as_ref().expect("rank 1 completed");
    let flipped = data.iter().filter(|&&b| b == 0xFF).count();
    let untouched = data.iter().filter(|&&b| b == 0).count();
    assert_eq!(
        flipped + untouched,
        32,
        "bytes are either intact or flipped"
    );
    assert!(
        (1..=2).contains(&flipped),
        "2 draws over distinct positions flip 1-2 bytes, got {flipped}"
    );
    let f = outcome.total_faults();
    assert_eq!(f.corrupted_msgs, 1);
    assert_eq!(f.corrupted_bytes as usize, flipped);
}

#[test]
fn crash_cascade_names_the_dead_peer_and_keeps_survivors() {
    // A 0 → 1 → 2 relay chain. Rank 1 dies at its first communication op
    // (the receive from 0): rank 0's fire-and-forget send still completes,
    // rank 2 aborts with a message naming the dead peer.
    let plan = FaultPlan::none().crash(1, 1);
    let outcome = run_ranks_with_faults(3, &plan, |r: &mut Rank| match r.rank() {
        0 => {
            r.send(1, 0, b"payload");
        }
        1 => {
            let got = r.recv(0, 0);
            r.send(2, 0, &got);
        }
        _ => {
            let _ = r.recv(1, 0);
        }
    })
    .expect("a crash is a degraded outcome, not a sim failure");
    assert!(outcome.is_degraded());
    assert_eq!(outcome.completed(), 1);
    assert!(outcome.ranks[0].value.is_some(), "rank 0's result survives");
    assert!(matches!(
        outcome.ranks[1].status,
        RankStatus::Crashed { op: 1 }
    ));
    match &outcome.ranks[2].status {
        RankStatus::Aborted { why } => {
            assert!(why.contains("peer 1"), "{why}");
            assert!(why.contains("injected fault at op 1"), "{why}");
        }
        other => panic!("rank 2 should abort on the dead peer, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Degraded sweeps through the model generator
// ---------------------------------------------------------------------------

/// A minimal behavioural twin whose communication-op count scales with `n`
/// (`2·(n/16)` ops per rank), so a fixed crash point kills exactly the
/// largest-`n` column of the sweep and leaves the rest untouched.
struct GridTwin;

impl MiniApp for GridTwin {
    fn name(&self) -> &'static str {
        "GridTwin"
    }

    fn run_rank(&self, rank: &mut Rank, n: u64, prof: &mut ProcessProfile) {
        let p = rank.size() as u64;
        prof.footprint.alloc(8 * n);
        prof.callpath.enter("work");
        prof.callpath.counters().add_flops(3 * n * p);
        prof.callpath.counters().add_loads(4 * n);
        prof.callpath.exit();
        let rounds = (n / 16).max(1);
        let next = (rank.rank() + 1) % rank.size();
        let prev = (rank.rank() + rank.size() - 1) % rank.size();
        let before = rank.stats().total();
        for round in 0..rounds {
            rank.send(next, round, &[1u8; 16]);
            let _ = rank.recv(prev, round);
        }
        prof.callpath.add_comm_bytes(rank.stats().total() - before);
    }

    fn run_locality(&self, _n: u64, sampler: &mut BurstSampler) {
        let g = sampler.register_group("window");
        // 8 passes x 32 addresses: enough warm re-references to clear the
        // sampler's >= 100-sample modelability filter.
        for _pass in 0..8 {
            for i in 0..32u64 {
                sampler.access(g, 0x1000 + i);
            }
        }
    }
}

#[test]
fn degraded_sweep_still_yields_models_and_reports_losses() {
    // Rank 1 crashes at op 9 — reached only by the n = 80 runs (10 ops per
    // rank). At p = 2 the crash takes the whole run down (the only other
    // rank blocks on the dead peer), so that configuration is skipped; at
    // p ≥ 3 the ring partially survives (each rank sends before it
    // receives), so those runs finish degraded with flagged observations.
    // Everything below the crash point stays clean.
    let grid = AppGrid {
        p_values: vec![2, 3, 4, 5, 6],
        n_values: vec![16, 32, 48, 64, 80],
    };
    let plan = FaultPlan::none().crash(1, 9);
    let survey = survey_app_with_faults(&GridTwin, &grid, &plan);

    assert_eq!(
        survey.skipped.len(),
        1,
        "only the p = 2 run dies outright: {:?}",
        survey.skipped
    );
    assert_eq!((survey.skipped[0].p, survey.skipped[0].n), (2, 80));
    assert!(
        survey.skipped[0].reason.contains("all 2 ranks failed"),
        "{}",
        survey.skipped[0].reason
    );
    let degraded = survey.degraded_configs();
    assert_eq!(
        degraded,
        vec![(3, 80), (4, 80), (5, 80), (6, 80)],
        "the survivors of the n = 80 column are flagged"
    );
    assert_eq!(survey.config_count(), 24);

    // The generator still produces the requirement models from the 20
    // clean configurations — and reports every loss, skipped or flagged.
    let modeled = model_requirements(&survey, &MultiParamConfig::coarse())
        .expect("20 clean configurations are plenty for a fit");
    assert!(
        modeled
            .dropped
            .iter()
            .any(|d| d.contains("p=2 n=80") && d.contains("no usable measurement")),
        "{:?}",
        modeled.dropped
    );
    assert!(
        modeled
            .dropped
            .iter()
            .any(|d| d.contains("#FLOP at p=3 n=80") && d.contains("degraded run")),
        "{:?}",
        modeled.dropped
    );
    // 1 skipped config + 4 flagged points on each of the five fitted
    // requirement rows (three totals, stack distance, P2P comm class).
    assert_eq!(modeled.dropped.len(), 1 + 4 * 5, "{:?}", modeled.dropped);

    // The recovered computation model extrapolates the true 3·p·n shape
    // beyond the (truncated) measured range.
    let flops = &modeled.requirements.flops;
    let truth = 3.0 * 12.0 * 160.0;
    let got = flops.eval(&[12.0, 160.0]);
    assert!(
        (got - truth).abs() / truth < 0.05,
        "flops model should recover 3·p·n: got {got}, want {truth}"
    );
}
