//! # exareq-bench — the reproduction harness
//!
//! One binary per paper table/figure (see `src/bin/`) plus criterion
//! performance benches (see `benches/`). This library holds the shared
//! plumbing: running surveys for all five applications, caching them as
//! JSON under `results/`, and comparing fitted lead exponents against the
//! published Table II.
//!
//! | binary | regenerates |
//! |---|---|
//! | `table2` | Table II — per-process requirement models, five apps |
//! | `fig3` | Figure 3 — relative-error histogram over all models |
//! | `table4` | Table IV — LULESH upgrade-A walkthrough |
//! | `table5` | Table V — upgrade comparison (A/B/C × five apps) |
//! | `table7` | Table VII — exascale straw-man mapping (+ Table VI) |
//! | `fig1` | Figure 1 — reuse vs stack distance example |
//! | `mmm_locality` | Section II-D — naive vs blocked MMM locality models |
//! | `ablation_baseline` | A1 — PMNF vs Carrington-style baseline |
//! | `ablation_noise` | A2 — model recovery under multiplicative noise |
//! | `ablation_selection` | A3 — cross-validated vs in-sample selection |
//! | `resilience` | fault-rate sweep: model survival under injected faults |

use exareq_apps::{all_apps, survey_app, AppGrid, MiniApp};
use exareq_core::fsio;
use exareq_core::multiparam::MultiParamConfig;
use exareq_core::pmnf::Exponents;
use exareq_profile::minijson::Json;
use exareq_profile::Survey;
use std::path::PathBuf;
use std::time::Instant;

/// Directory where bench binaries cache surveys and write reports.
///
/// Exits with a diagnostic (rather than panicking with a backtrace) when
/// the directory cannot be created — every bench binary needs it.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("EXAREQ_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    if let Err(e) = fsio::create_dir_all(&p) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    p
}

/// Writes one report artifact under [`results_dir`] atomically, echoing
/// its path; exits with a diagnostic on failure so a full disk never
/// manifests as a panic backtrace or a torn half-written table.
pub fn write_report(file_name: &str, contents: &str) -> PathBuf {
    let path = results_dir().join(file_name);
    if let Err(e) = fsio::write_atomic(&path, contents) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {}", path.display());
    path
}

/// Runs (or loads from cache) the full measurement survey of one app.
///
/// Surveys are deterministic, so the JSON cache under [`results_dir`] is
/// safe; delete the file (or set `EXAREQ_FRESH=1`) to force a re-run. The
/// cache is written atomically, so a killed bench run never leaves a
/// truncated JSON for the next run to trip over.
pub fn cached_survey(app: &dyn MiniApp, grid: &AppGrid) -> Survey {
    let path = results_dir().join(format!("survey_{}.json", app.name().to_lowercase()));
    let fresh = std::env::var("EXAREQ_FRESH").is_ok();
    if !fresh {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(s) = Survey::from_json(&text) {
                if s.config_count() == grid.p_values.len() * grid.n_values.len() {
                    return s;
                }
            }
        }
    }
    let survey = survey_app(app, grid);
    match survey.try_to_json() {
        Ok(json) => {
            if let Err(e) = fsio::write_atomic(&path, json) {
                eprintln!("warning: survey cache not written: {e}");
            }
        }
        Err(e) => eprintln!("warning: survey cache not written: {e}"),
    }
    survey
}

/// Surveys all five study applications (cached).
pub fn all_surveys(grid: &AppGrid) -> Vec<Survey> {
    all_apps()
        .iter()
        .map(|a| {
            eprintln!("  surveying {} ...", a.name());
            cached_survey(a.as_ref(), grid)
        })
        .collect()
}

/// The modeling configuration used by all reproduction binaries.
pub fn repro_config() -> MultiParamConfig {
    MultiParamConfig::default()
}

/// The published Table II lead exponents `(metric, p-exponents,
/// n-exponents)` per application, for the paper-vs-measured comparison
/// printed by `table2`.
pub fn paper_lead_exponents(app: &str) -> Vec<(&'static str, Exponents, Exponents)> {
    let e = Exponents::new;
    match app {
        "Kripke" => vec![
            ("#Bytes used", e(0.0, 0.0), e(1.0, 0.0)),
            ("#FLOP", e(0.0, 0.0), e(1.0, 0.0)),
            ("#Bytes sent & received", e(0.0, 0.0), e(1.0, 0.0)),
            ("#Loads & stores", e(1.0, 0.0), e(1.0, 0.0)),
            ("Stack distance", e(0.0, 0.0), e(0.0, 0.0)),
        ],
        "LULESH" => vec![
            ("#Bytes used", e(0.0, 0.0), e(1.0, 1.0)),
            ("#FLOP", e(0.25, 1.0), e(1.0, 1.0)),
            ("#Bytes sent & received", e(0.25, 1.0), e(1.0, 0.0)),
            ("#Loads & stores", e(0.0, 1.0), e(1.0, 1.0)),
            ("Stack distance", e(0.0, 0.0), e(0.0, 0.0)),
        ],
        "MILC" => vec![
            ("#Bytes used", e(0.0, 0.0), e(1.0, 0.0)),
            ("#FLOP", e(0.0, 1.0), e(1.0, 0.0)),
            ("#Bytes sent & received", e(0.0, 1.0), e(1.0, 0.0)),
            ("#Loads & stores", e(1.5, 0.0), e(1.0, 1.0)),
            ("Stack distance", e(0.0, 0.0), e(1.0, 0.0)),
        ],
        "Relearn" => vec![
            ("#Bytes used", e(0.0, 0.0), e(0.5, 0.0)),
            ("#FLOP", e(1.0, 0.0), e(1.0, 1.0)),
            ("#Bytes sent & received", e(1.0, 0.0), e(1.0, 0.0)),
            ("#Loads & stores", e(1.0, 1.0), e(1.0, 1.0)),
            ("Stack distance", e(0.0, 0.0), e(0.0, 0.0)),
        ],
        "icoFoam" => vec![
            ("#Bytes used", e(1.0, 1.0), e(1.0, 0.0)),
            ("#FLOP", e(0.5, 0.0), e(1.5, 0.0)),
            ("#Bytes sent & received", e(0.5, 1.0), e(1.0, 0.0)),
            ("#Loads & stores", e(0.5, 1.0), e(1.0, 1.0)),
            ("Stack distance", e(0.0, 0.0), e(0.0, 0.0)),
        ],
        _ => Vec::new(),
    }
}

/// Formats an exponent pair compactly (`n^1·log^1` style).
pub fn fmt_exp(e: Exponents, var: &str) -> String {
    e.render(var).unwrap_or_else(|| "1".to_string())
}

/// Shorthand for a minijson number, for the `BENCH_*.json` writers.
pub fn num(v: f64) -> Json {
    Json::Num(v)
}

/// Shorthand for a minijson object from `(key, value)` pairs.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Mean wall-clock milliseconds of `f` over `iters` runs.
pub fn mean_ms(iters: u32, mut f: impl FnMut()) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    started.elapsed().as_secs_f64() * 1e3 / f64::from(iters)
}

/// Nearest-rank percentile of an *ascending-sorted* sample set; `q` in
/// `[0, 100]`. An empty set yields NaN so callers cannot mistake a
/// missing measurement for a zero-latency one.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((q / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Latency summary of a set of per-request samples, in milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Largest observed latency.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarises raw latency samples (milliseconds, any order).
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        LatencySummary {
            p50_ms: percentile(&sorted, 50.0),
            p95_ms: percentile(&sorted, 95.0),
            p99_ms: percentile(&sorted, 99.0),
            max_ms: sorted.last().copied().unwrap_or(f64::NAN),
        }
    }

    /// The summary as minijson members, for the `BENCH_*.json` reports.
    pub fn to_members(self) -> Vec<(&'static str, Json)> {
        vec![
            ("p50_ms", num(self.p50_ms)),
            ("p95_ms", num(self.p95_ms)),
            ("p99_ms", num(self.p99_ms)),
            ("max_ms", num(self.max_ms)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_covers_all_apps() {
        for app in ["Kripke", "LULESH", "MILC", "Relearn", "icoFoam"] {
            assert_eq!(paper_lead_exponents(app).len(), 5, "{app}");
        }
        assert!(paper_lead_exponents("unknown").is_empty());
    }

    #[test]
    fn fmt_exp_renders() {
        assert_eq!(fmt_exp(Exponents::new(0.0, 0.0), "n"), "1");
        assert_eq!(fmt_exp(Exponents::new(1.0, 0.0), "n"), "n");
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn latency_summary_orders_samples() {
        let samples = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.p50_ms, 3.0);
        assert_eq!(s.max_ms, 5.0);
        assert!(s.p95_ms <= s.p99_ms && s.p99_ms <= s.max_ms);
    }
}
