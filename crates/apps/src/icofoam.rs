//! Behavioural twin of **icoFoam** — OpenFOAM's incompressible laminar
//! Navier–Stokes solver (PISO), applied to the lid-driven cavity.
//!
//! Target per-process requirement signature (Table II) — the problem child
//! of the study, ⚠ on nearly every row:
//!
//! | metric          | model                                                  |
//! |-----------------|--------------------------------------------------------|
//! | #Bytes used     | `c₁ · n + c₂ · p log p` ⚠                              |
//! | #FLOP           | `c · n^1.5 · p^0.5` ⚠                                  |
//! | #Bytes sent/rcv | `n^0.5·Allreduce(p) + c·p^0.5 log p ⚠ + c·n·p^0.375` ⚠ |
//! | #Loads & stores | `c · n log n · p^0.5 log p` ⚠                          |
//! | Stack distance  | constant                                               |
//!
//! The `p log p` footprint term models the globally replicated
//! processor-boundary addressing tables that grow with the decomposition —
//! the term that makes icoFoam unable to fully occupy any of the exascale
//! straw men (it is excluded from Table VII). The PISO pressure solve
//! allreduces a residual whose payload grows with the interface size
//! (`√n`), and the matrix traffic inflates with `p^0.5 log p`.

use crate::shapes::{log2f, ops, powf, ring_exchange, Arena};
use crate::MiniApp;
use exareq_locality::BurstSampler;
use exareq_profile::ProcessProfile;
use exareq_sim::Rank;

/// PISO outer iterations.
const PISO_ITERS: usize = 20;

/// The icoFoam behavioural twin.
#[derive(Debug, Clone, Copy, Default)]
pub struct IcoFoam;

impl MiniApp for IcoFoam {
    fn name(&self) -> &'static str {
        "icoFoam"
    }

    fn run_rank(&self, rank: &mut Rank, n: u64, prof: &mut ProcessProfile) {
        let p = rank.size() as u64;
        let nf = n as f64;
        let pf = p as f64;

        // Velocity/pressure fields linear in the cell count …
        let mut fields = Arena::new(n as usize * 3);
        prof.footprint.alloc(fields.bytes());
        // … plus replicated global processor-boundary tables: p·log p per
        // process — the footprint hazard.
        let tables = Arena::new(ops(2.0 * pf * log2f(p)).max(4) as usize);
        prof.footprint.alloc(tables.bytes());

        // Face sizes large enough that integer rounding stays below the
        // fitter's discrimination threshold (≤ 0.1%).
        let face_a = vec![0u8; ops(8.0 * nf * powf(p, 0.375)).max(1) as usize];
        let face_b = vec![0u8; ops(160.0 * powf(p, 0.5) * log2f(p)).max(1) as usize];

        // Momentum predictor + pressure corrector FLOPs (totals over all
        // PISO iterations, counted exactly).
        prof.callpath.enter("piso_solve");
        fields.compute(
            ops(1.5 * nf.powf(1.5) * pf.sqrt()),
            prof.callpath.counters(),
        );
        prof.callpath.exit();

        // Sparse-matrix traversal with decomposition-dependent indirection.
        prof.callpath.enter("matrix_traffic");
        fields.stream(
            ops(4.0 * nf * log2f(n) * pf.sqrt() * log2f(p)),
            prof.callpath.counters(),
        );
        prof.callpath.exit();

        // Per PISO iteration: residual allreduce with interface-sized
        // payload (√n doubles) plus processor-boundary face exchanges.
        for it in 0..PISO_ITERS {
            prof.callpath.enter("pressure_residual");
            let before = rank.stats().total();
            let mut residual = vec![0.0f64; nf.sqrt().ceil() as usize];
            rank.allreduce_sum(&mut residual);
            ring_exchange(rank, 500 + it as u64 * 2, &face_a, &face_b);
            prof.callpath.add_comm_bytes(rank.stats().total() - before);
            prof.callpath.exit();
        }
    }

    fn run_locality(&self, _n: u64, sampler: &mut BurstSampler) {
        // Cell-local stencils reuse a fixed window.
        let g_cells = sampler.register_group("cell stencil");
        let g_faces = sampler.register_group("face coefficients");
        for _pass in 0..4 {
            for i in 0..112u64 {
                sampler.access(g_cells, 0x4000 + i);
            }
            for i in 0..48u64 {
                sampler.access(g_faces, 0xC000 + i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn flops_scale_n15_sqrtp() {
        let a = measure(&IcoFoam, 4, 512);
        let b = measure(&IcoFoam, 4, 2048);
        let r = b.flops / a.flops;
        assert!((r - 8.0).abs() < 0.2, "n^1.5 scaling {r}");
        let c = measure(&IcoFoam, 16, 512);
        let rp = c.flops / a.flops;
        assert!((rp - 2.0).abs() < 0.1, "p^0.5 scaling {rp}");
    }

    #[test]
    fn footprint_gains_plogp_term() {
        // At fixed n the footprint must grow with p (the exclusion reason
        // in Table VII).
        let a = measure(&IcoFoam, 2, 256);
        let b = measure(&IcoFoam, 32, 256);
        assert!(
            b.bytes_used > a.bytes_used + 1000.0,
            "footprint must grow with p: {} vs {}",
            a.bytes_used,
            b.bytes_used
        );
    }

    #[test]
    fn allreduce_payload_scales_sqrt_n() {
        let a = measure(&IcoFoam, 8, 256);
        let b = measure(&IcoFoam, 8, 4096);
        let r = b.comm_class("Allreduce") / a.comm_class("Allreduce");
        assert!((r - 4.0).abs() < 0.1, "sqrt(n) payload scaling {r}");
    }

    #[test]
    fn p2p_scales_with_n_p0375() {
        let a = measure(&IcoFoam, 8, 1024);
        let b = measure(&IcoFoam, 8, 4096);
        let r = b.comm_class("P2P") / a.comm_class("P2P");
        // Dominated by the n·p^0.375 faces; the constant-in-n p^0.5·log p
        // faces dilute the ratio slightly below 4.
        assert!(r > 3.5 && r < 4.2, "{r}");
    }

    #[test]
    fn loads_scale_nlogn_sqrtp_logp() {
        let a = measure(&IcoFoam, 4, 1024);
        let b = measure(&IcoFoam, 16, 1024);
        // (16/4)^0.5·(log16/log4) = 2·2 = 4.
        let r = b.loads_stores / a.loads_stores;
        assert!((r - 4.0).abs() < 0.15, "{r}");
    }

    #[test]
    fn stack_distance_constant() {
        let run = |n: u64| {
            let mut s =
                exareq_locality::BurstSampler::new(exareq_locality::BurstSchedule::always());
            IcoFoam.run_locality(n, &mut s);
            s.groups()[0].median_stack().unwrap()
        };
        assert_eq!(run(128), run(65536));
    }
}
