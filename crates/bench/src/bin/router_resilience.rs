//! Router-resilience study: request rate, latency percentiles, and the
//! resilience ledger (failovers, hedges, degraded answers) of the
//! `exareq router` engine while replicas are killed out from under it,
//! emitted machine-readably as `BENCH_router.json`.
//!
//! Each round starts N in-process `exareq serve` engines plus a router
//! fronting them, drives a concurrent `/predict` burst through the
//! router, and kills K replicas mid-burst — starting with the ring
//! primary for the benched model, so the kill provably lands on the
//! replica carrying the traffic. A "kill" cancels the replica's engine
//! with a zero drain deadline: the listener vanishes immediately, which
//! is the same failure signature SIGKILL leaves from the router's side
//! of the socket.
//!
//! Every 200 body — healthy, failed-over, hedged, or degraded — is
//! compared byte-for-byte against the direct
//! [`exareq_serve::api::predict_body`] call; any drift reports
//! `"identical": false` and the process exits nonzero. `--tiny` shrinks
//! the rounds for CI smoke use.

use exareq_bench::{num, obj, write_report, LatencySummary};
use exareq_codesign::catalog;
use exareq_core::cancel::{CancelReason, CancelToken};
use exareq_profile::minijson::Json;
use exareq_router::{HashRing, ProxyConfig, RouterConfig};
use exareq_serve::registry::Fitter;
use exareq_serve::{api, artifact, ModelRegistry, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One raw HTTP/1.1 exchange; returns `(status, head, body)`.
fn http(addr: SocketAddr, request: &str) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to in-process router");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    let head = String::from_utf8(raw[..head_end].to_vec()).expect("response head is ASCII");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code in status line");
    (status, head, raw[head_end + 4..].to_vec())
}

fn http_post(addr: SocketAddr, target: &str, body: &str) -> (u16, String, Vec<u8>) {
    http(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Reads one counter from the router's `/metrics` exposition.
fn metric(addr: SocketAddr, name: &str) -> f64 {
    let (status, _, body) = http(addr, "GET /metrics HTTP/1.1\r\nHost: b\r\n\r\n");
    assert_eq!(status, 200, "metrics scrape");
    let text = String::from_utf8(body).expect("UTF-8 metrics");
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

/// One in-process replica: its engine thread and the token that kills it.
struct Replica {
    addr: SocketAddr,
    cancel: CancelToken,
    thread: std::thread::JoinHandle<exareq_serve::ServeSummary>,
}

fn start_replica(dir: &Path, drain: Duration) -> Replica {
    let no_fit: Box<Fitter> = Box::new(|_| Err("bench serves fitted artifacts only".to_string()));
    let registry = Arc::new(ModelRegistry::new(dir, no_fit));
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".parse().expect("loopback addr"),
        threads: 2,
        queue_depth: 64,
        request_deadline: Duration::from_secs(10),
        drain_deadline: drain,
        model_dir: dir.to_path_buf(),
        allow_measure: false,
        keep_alive_requests: 1000,
        idle_deadline: Duration::from_secs(5),
        refresh: Default::default(),
    };
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let thread = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            exareq_serve::serve(&cfg, registry, &cancel, move |addr| {
                tx.send(addr).expect("announce bound address");
            })
            .expect("replica engine runs")
        })
    };
    let addr = rx.recv().expect("replica ready");
    Replica {
        addr,
        cancel,
        thread,
    }
}

struct RoundOutcome {
    replicas: usize,
    kills: usize,
    requests: usize,
    seconds: f64,
    errors: u64,
    rejected_503: u64,
    identical: bool,
    failovers: f64,
    hedges_launched: f64,
    hedges_won: f64,
    degraded: f64,
    latency: LatencySummary,
}

#[allow(clippy::too_many_arguments)]
fn run_round(
    dir: &Path,
    replicas: usize,
    kills: usize,
    clients: usize,
    per_client: usize,
    kill_after: Duration,
    expected: &[u8],
) -> RoundOutcome {
    // Replicas get a zero drain deadline: a cancelled engine's listener
    // vanishes immediately, like a killed process's would.
    let mut fleet: Vec<Replica> = (0..replicas)
        .map(|_| start_replica(dir, Duration::ZERO))
        .collect();
    let replica_addrs: Vec<String> = fleet.iter().map(|r| r.addr.to_string()).collect();

    let mut proxy_cfg = ProxyConfig {
        request_deadline: Duration::from_secs(5),
        hedge_after: Duration::from_millis(25),
        backoff_base: Duration::from_millis(10),
        ..ProxyConfig::default()
    };
    proxy_cfg.health.probe_interval = Duration::from_millis(50);
    let router_cfg = RouterConfig {
        addr: "127.0.0.1:0".parse().expect("loopback addr"),
        threads: 4,
        queue_depth: 64,
        replicas: replica_addrs.clone(),
        model_dir: dir.to_path_buf(),
        drain_deadline: Duration::from_secs(5),
        proxy: proxy_cfg,
    };
    let no_fit: Box<Fitter> = Box::new(|_| Err("bench serves fitted artifacts only".to_string()));
    let router_registry = Arc::new(ModelRegistry::new(dir, no_fit));
    let router_cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let router_thread = {
        let cancel = router_cancel.clone();
        std::thread::spawn(move || {
            exareq_router::route(&router_cfg, router_registry, &cancel, move |addr| {
                tx.send(addr).expect("announce bound address");
            })
            .expect("router engine runs")
        })
    };
    let router_addr = rx.recv().expect("router ready");

    // Kill victims in ring order for the benched key, so the kill lands
    // on the replica actually carrying the traffic.
    let ring = HashRing::new(&replica_addrs);
    let victim_order: Vec<usize> = ring.ordered("Kripke");
    let killer = {
        let victims: Vec<CancelToken> = victim_order
            .iter()
            .take(kills)
            .map(|&idx| fleet[idx].cancel.clone())
            .collect();
        std::thread::spawn(move || {
            if victims.is_empty() {
                return;
            }
            std::thread::sleep(kill_after);
            for victim in victims {
                victim.cancel(CancelReason::Interrupt);
                std::thread::sleep(Duration::from_millis(30));
            }
        })
    };

    let started = Instant::now();
    let request_body = r#"{"model":"Kripke","p":1e6,"n":4096,"hold_ms":10}"#;
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let expected = expected.to_vec();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                let (mut errors, mut rejected, mut mismatched) = (0u64, 0u64, false);
                for _ in 0..per_client {
                    let t0 = Instant::now();
                    let (status, _head, body) = http_post(router_addr, "/predict", request_body);
                    latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                    match status {
                        200 => mismatched |= body != expected,
                        503 => rejected += 1,
                        _ => errors += 1,
                    }
                }
                (latencies, errors, rejected, mismatched)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let (mut errors, mut rejected, mut identical) = (0, 0, true);
    for h in handles {
        let (lat, e, r, mismatched) = h.join().expect("client thread");
        latencies.extend(lat);
        errors += e;
        rejected += r;
        identical &= !mismatched;
    }
    let seconds = started.elapsed().as_secs_f64();
    killer.join().expect("killer thread");

    let failovers = metric(router_addr, "router_failover_total");
    let hedges_launched = metric(router_addr, "router_hedge_launched_total");
    let hedges_won = metric(router_addr, "router_hedge_won_total");
    let degraded = metric(router_addr, "router_degraded_total");

    router_cancel.cancel(CancelReason::Interrupt);
    let summary = router_thread.join().expect("router thread");
    assert!(summary.drained, "router must drain between rounds");
    for replica in fleet.drain(..) {
        replica.cancel.cancel(CancelReason::Interrupt);
        let _ = replica.thread.join();
    }

    RoundOutcome {
        replicas,
        kills,
        requests: clients * per_client,
        seconds,
        errors,
        rejected_503: rejected,
        identical,
        failovers,
        hedges_launched,
        hedges_won,
        degraded,
        latency: LatencySummary::from_samples(&latencies),
    }
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let (clients, per_client, kill_after) = if tiny {
        (2usize, 15usize, Duration::from_millis(80))
    } else {
        (4, 40, Duration::from_millis(250))
    };
    // (replicas, kills): a healthy baseline, one kill absorbed by
    // failover, a two-kill cascade, and a total loss served degraded.
    let rounds_spec = [(1usize, 0usize), (2, 1), (3, 2), (1, 1)];

    let dir = std::env::temp_dir().join(format!("exareq_router_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("model dir");
    for app in catalog::paper_models() {
        std::fs::write(
            dir.join(format!("{}.json", app.name.to_lowercase())),
            artifact::requirements_to_string(&app),
        )
        .expect("write artifact");
    }
    let expected = api::predict_body(&catalog::kripke(), 1e6, 4096.0);

    eprintln!(
        "router resilience: rounds {rounds_spec:?}, {clients} clients x {per_client} requests"
    );
    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut total_loss_degraded = true;
    let mut kills_caused_failover = true;
    for &(replicas, kills) in &rounds_spec {
        let round = run_round(
            &dir,
            replicas,
            kills,
            clients,
            per_client,
            kill_after,
            expected.as_bytes(),
        );
        all_identical &= round.identical;
        if kills > 0 && replicas > kills {
            kills_caused_failover &= round.failovers > 0.0;
        }
        if kills >= replicas && kills > 0 {
            total_loss_degraded &= round.degraded > 0.0;
        }
        let rate = round.requests as f64 / round.seconds;
        eprintln!(
            "  replicas={replicas} kills={kills}: {rate:.0} req/s, p50 {:.2} ms, p99 {:.2} ms, \
             {} failovers, {}/{} hedges won, {} degraded, {} errors, {} x 503{}",
            round.latency.p50_ms,
            round.latency.p99_ms,
            round.failovers,
            round.hedges_won,
            round.hedges_launched,
            round.degraded,
            round.errors,
            round.rejected_503,
            if round.identical {
                ""
            } else {
                ", NOT IDENTICAL"
            }
        );
        let mut members = vec![
            ("replicas", num(round.replicas as f64)),
            ("kills", num(round.kills as f64)),
            ("requests", num(round.requests as f64)),
            ("seconds", num(round.seconds)),
            ("req_per_sec", num(rate)),
            ("errors", num(round.errors as f64)),
            ("rejected_503", num(round.rejected_503 as f64)),
            ("failover_total", num(round.failovers)),
            ("hedge_launched_total", num(round.hedges_launched)),
            ("hedge_won_total", num(round.hedges_won)),
            ("degraded_total", num(round.degraded)),
            ("identical", Json::Bool(round.identical)),
        ];
        members.extend(round.latency.to_members());
        rows.push(obj(members));
    }

    let report = obj(vec![
        ("schema", num(1.0)),
        ("model", Json::Str("Kripke".to_string())),
        ("clients", num(clients as f64)),
        ("requests_per_client", num(per_client as f64)),
        ("rounds", Json::Arr(rows)),
    ]);
    write_report("BENCH_router.json", &report.to_line());
    let _ = std::fs::remove_dir_all(&dir);

    if !all_identical {
        eprintln!("error: a routed answer diverged from the direct library call");
        std::process::exit(1);
    }
    if !kills_caused_failover {
        eprintln!("error: a survivable kill produced no failover");
        std::process::exit(1);
    }
    if !total_loss_degraded {
        eprintln!("error: total replica loss was not served by the degraded fallback");
        std::process::exit(1);
    }
}
