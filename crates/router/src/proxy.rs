//! The forwarding engine: one parsed request in, one response out, with
//! every resilience trick between — placement, failover, hedging,
//! breakers, and the degraded-mode local fallback.
//!
//! The contract that shapes everything here is **byte-identity**: every
//! `200` body the router returns must equal the direct library call,
//! whichever path produced it. Upstream bodies are therefore forwarded
//! *verbatim* — never re-serialized — and the degraded fallback answers
//! through the same [`exareq_serve::dispatch`] the replicas run, so its
//! bodies are identical by construction. The degraded flag travels in
//! the `X-Exareq-Degraded` response *header* and the
//! `router_degraded_total` metric, never in the body.
//!
//! Request lifecycle:
//!
//! 1. [`Proxy::plan`] derives the candidate replica order: the ring's
//!    walk for the request's model key, minus dead replicas and open
//!    breakers, with under-loaded healthy replicas first (bounded-load
//!    consistent hashing), over-loaded healthy next, suspects last.
//! 2. The first candidate is attempted. If no response arrives within
//!    the hedge delay (p99 of recent successes, clamped), one hedged
//!    duplicate is launched on the next candidate — first byte-valid
//!    `200` wins, the loser's token is cancelled.
//! 3. A transport failure or overload status (503/504) moves the request
//!    to the next candidate after a short jittered pause (failover),
//!    once no other attempt is still outstanding.
//! 4. Any other status is *conclusive* — the replica answered — and is
//!    proxied verbatim, `Retry-After` included.
//! 5. Candidates exhausted (or none to begin with): the router evaluates
//!    the request against its own `--model-dir` registry and flags the
//!    response degraded. Never a silent stall, never a divergent body.

use crate::breaker::CircuitBreaker;
use crate::metrics::RouterMetrics;
use crate::ring::HashRing;
use exareq_core::cancel::{CancelReason, CancelToken, Deadline};
use exareq_net::client::{ClientConfig, ClientError, ClientResponse, HttpClient};
use exareq_net::health::{HealthPolicy, HealthTable, WorkerState};
use exareq_serve::dispatch::{self, EngineState};
use exareq_serve::http::{Request, Response};
use exareq_serve::registry::ModelRegistry;
use exareq_serve::{api, Metrics};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Bounded-load overcapacity factor, hundredths: a replica may carry at
/// most `ceil(1.25 × fair share)` in-flight requests before the planner
/// prefers the next ring candidate.
const LOAD_FACTOR_HUNDREDTHS: u64 = 125;

/// Latency samples kept for the p99 hedge-delay estimate.
const LATENCY_WINDOW: usize = 512;

/// Successful samples required before the p99 estimate replaces the
/// configured default hedge delay.
const LATENCY_MIN_SAMPLES: usize = 20;

/// Clamp bounds for the derived hedge delay.
const HEDGE_MIN: Duration = Duration::from_millis(10);
const HEDGE_MAX: Duration = Duration::from_secs(2);

/// Cap on a failover pause taken on behalf of an upstream `Retry-After`:
/// the header describes the replica being *left*, so it bounds only a
/// short politeness pause before the next candidate — the full value is
/// still propagated verbatim whenever the 503 itself is returned.
const RETRY_AFTER_PAUSE_CAP: Duration = Duration::from_millis(250);

/// Poll slice while waiting on outstanding attempts with no hedge to arm.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// Everything the forwarding engine configures.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Total wall-clock budget for one routed request, all attempts
    /// included; expiry answers `504`.
    pub request_deadline: Duration,
    /// Wall-clock budget for one *upstream attempt*. Strictly smaller
    /// than the request deadline so a black-holed or dripping connection
    /// burns one attempt's worth of time, not the whole request — the
    /// loop still has budget to fail over. Clamped to the request
    /// deadline at construction.
    pub attempt_deadline: Duration,
    /// Hedge delay used until enough latency samples accumulate.
    pub hedge_after: Duration,
    /// Base of the jittered failover pause.
    pub backoff_base: Duration,
    /// Cooldown before an open circuit breaker admits a trial.
    pub breaker_cooldown: Duration,
    /// Hysteresis policy for the replica health table.
    pub health: HealthPolicy,
    /// Seed for backoff jitter (deterministic tests pass a fixed one).
    pub jitter_seed: u64,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            request_deadline: Duration::from_secs(10),
            attempt_deadline: Duration::from_millis(2500),
            hedge_after: Duration::from_millis(150),
            backoff_base: Duration::from_millis(50),
            breaker_cooldown: Duration::from_secs(1),
            health: HealthPolicy::default(),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// One upstream attempt's report back to the forwarding loop.
struct AttemptReport {
    /// Ring index of the replica attempted.
    replica: usize,
    /// Whether this attempt was the hedged duplicate.
    hedge: bool,
    /// The exchange outcome.
    outcome: Result<ClientResponse, ClientError>,
}

/// The forwarding engine. Shared behind an `Arc`: attempts run on their
/// own threads and report back over a channel.
pub struct Proxy {
    cfg: ProxyConfig,
    ring: HashRing,
    health: Arc<HealthTable>,
    breakers: Vec<CircuitBreaker>,
    client: HttpClient,
    metrics: Arc<RouterMetrics>,
    /// Requests currently in flight per replica, for bounded load.
    inflight: Vec<AtomicU64>,
    /// Recent successful-exchange latencies for the hedge estimate.
    latencies: Mutex<Vec<Duration>>,
    /// Last transport/integrity error seen per replica, for `/metrics`
    /// (`router_upstream_last_error`): when a fleet operator asks *why*
    /// traffic moved, the answer — including which phase a timeout died
    /// in — is one scrape away.
    last_errors: Vec<Mutex<Option<String>>>,
    /// The router's own model registry — the degraded-mode evaluator.
    registry: Arc<ModelRegistry>,
    /// Serve-layer metrics consumed by the degraded dispatch path (the
    /// router reports through [`RouterMetrics`]; these stay internal).
    local_metrics: Metrics,
    /// splitmix64 state for failover jitter.
    rng: Mutex<u64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Proxy {
    /// A proxy over `replicas`, falling back to `registry` when none can
    /// answer.
    pub fn new(replicas: &[String], registry: Arc<ModelRegistry>, cfg: ProxyConfig) -> Arc<Proxy> {
        let client = HttpClient::new(ClientConfig {
            connect_timeout: Duration::from_secs(1),
            exchange_deadline: cfg.attempt_deadline.min(cfg.request_deadline),
            // One attempt per exchange: failover and hedging are the
            // router's own, replica-aware retry policy.
            retry_budget: 1,
            backoff_base: cfg.backoff_base,
            backoff_cap: cfg.backoff_base * 4,
            jitter_seed: cfg.jitter_seed,
            request_budget: Some(cfg.request_deadline),
            // Replicas are exareq daemons and always stamp a body digest;
            // requiring it means a corrupted-in-transit 200 (even one
            // that lost the header) fails over instead of committing.
            require_digest: true,
        });
        Arc::new(Proxy {
            ring: HashRing::new(replicas),
            health: Arc::new(HealthTable::new(replicas.len(), cfg.health.clone())),
            breakers: (0..replicas.len())
                .map(|_| CircuitBreaker::new(cfg.breaker_cooldown))
                .collect(),
            client,
            metrics: Arc::new(RouterMetrics::new(replicas.len())),
            inflight: (0..replicas.len()).map(|_| AtomicU64::new(0)).collect(),
            last_errors: (0..replicas.len()).map(|_| Mutex::new(None)).collect(),
            latencies: Mutex::new(Vec::with_capacity(LATENCY_WINDOW)),
            registry,
            local_metrics: Metrics::new(),
            rng: Mutex::new(cfg.jitter_seed | 1),
            cfg,
        })
    }

    /// The replica health table, shared with the prober threads.
    pub fn health(&self) -> &Arc<HealthTable> {
        &self.health
    }

    /// The router metrics, shared with the `/metrics` handler.
    pub fn metrics(&self) -> &Arc<RouterMetrics> {
        &self.metrics
    }

    /// The upstream client's phase-timeout counters.
    pub fn net_metrics(&self) -> std::sync::Arc<exareq_net::NetMetrics> {
        self.client.metrics()
    }

    /// Last transport/integrity error recorded against a replica, if any.
    pub fn last_error(&self, replica: usize) -> Option<String> {
        self.last_errors
            .get(replica)?
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The full `/metrics` exposition: router counters, per-replica
    /// health, the net client's `net_request_phase_timeouts_total{phase}`
    /// counters, and one `router_upstream_last_error` info line per
    /// replica with a recorded failure.
    pub fn render_metrics(&self) -> String {
        let mut out = self.metrics.render(&self.health, self.ring.replicas());
        out.push_str(&self.client.metrics().render());
        out.push_str(
            "# HELP router_upstream_last_error Last transport/integrity error per replica (info gauge).\n",
        );
        out.push_str("# TYPE router_upstream_last_error gauge\n");
        for (idx, replica) in self.ring.replicas().iter().enumerate() {
            if let Some(error) = self.last_error(idx) {
                let escaped = error.replace('\\', "\\\\").replace('"', "\\\"");
                out.push_str(&format!(
                    "router_upstream_last_error{{replica=\"{replica}\",error=\"{escaped}\"}} 1\n"
                ));
            }
        }
        out
    }

    fn record_last_error(&self, replica: usize, error: &ClientError) {
        if let Some(slot) = self.last_errors.get(replica) {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(error.to_string());
        }
    }

    /// The hash ring (tests ask it which replica owns a key).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The consistent-hash key for a request: the model name when the
    /// body names one, else a stable digest of the whole request. Key
    /// extraction is best-effort on purpose — a malformed body still
    /// routes (deterministically) and is forwarded verbatim so the
    /// replica's own `400` comes back byte-identical.
    pub fn routing_key(request: &Request) -> String {
        let body = std::str::from_utf8(&request.body).unwrap_or("");
        let model = match request.target.as_str() {
            "/predict" => api::parse_predict(body).ok().map(|q| q.model),
            "/predict_batch" => api::parse_predict_batch(body).ok().map(|q| q.model),
            "/upgrade" => api::parse_upgrade(body).ok().map(|q| q.model),
            "/strawman" => api::parse_strawman(body).ok(),
            _ => None,
        };
        model.unwrap_or_else(|| format!("{}#{}", request.target, body))
    }

    /// Candidate replica indices for `key`, best first: the ring walk
    /// with dead replicas and open breakers removed, partitioned into
    /// under-capacity healthy, over-capacity healthy, then suspect.
    /// Empty means the degraded fallback is the only option.
    pub fn plan(&self, key: &str) -> Vec<usize> {
        let n = self.ring.len();
        if n == 0 {
            return Vec::new();
        }
        let total: u64 = self
            .inflight
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        // ceil(1.25 × (total + this request) / n), at least 1.
        let cap = (LOAD_FACTOR_HUNDREDTHS * (total + 1))
            .div_ceil(100 * n as u64)
            .max(1);
        let mut under = Vec::new();
        let mut over = Vec::new();
        let mut suspect = Vec::new();
        for idx in self.ring.ordered(key) {
            let state = self.health.state(idx);
            if state == WorkerState::Dead || !self.breakers[idx].allow() {
                continue;
            }
            if state == WorkerState::Suspect {
                suspect.push(idx);
            } else if self.inflight[idx].load(Ordering::Relaxed) < cap {
                under.push(idx);
            } else {
                over.push(idx);
            }
        }
        under.extend(over);
        under.extend(suspect);
        under
    }

    /// The current hedge delay: p99 of recent successful exchanges,
    /// clamped to `[10ms, 2s]`; the configured default until enough
    /// samples exist.
    pub fn hedge_delay(&self) -> Duration {
        let lat = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        if lat.len() < LATENCY_MIN_SAMPLES {
            return self.cfg.hedge_after;
        }
        let mut sorted = lat.clone();
        drop(lat);
        sorted.sort_unstable();
        let idx = (sorted.len() * 99).div_ceil(100).saturating_sub(1);
        sorted[idx].clamp(HEDGE_MIN, HEDGE_MAX)
    }

    fn push_latency(&self, sample: Duration) {
        let mut lat = self.latencies.lock().unwrap_or_else(|e| e.into_inner());
        if lat.len() >= LATENCY_WINDOW {
            lat.remove(0);
        }
        lat.push(sample);
    }

    /// A jittered failover pause: uniform in `[0, backoff_base]`, raised
    /// to honor an upstream `Retry-After` up to [`RETRY_AFTER_PAUSE_CAP`].
    fn failover_pause(&self, retry_after: Option<u64>) -> Duration {
        let base = self.cfg.backoff_base.as_millis().max(1) as u64;
        let jitter = {
            let mut rng = self.rng.lock().unwrap_or_else(|e| e.into_inner());
            splitmix64(&mut rng) % (base + 1)
        };
        let pause = Duration::from_millis(jitter);
        match retry_after {
            Some(secs) => pause.max(Duration::from_secs(secs).min(RETRY_AFTER_PAUSE_CAP)),
            None => pause,
        }
    }

    /// Launches one upstream attempt on its own thread; the report comes
    /// back over `tx`. Returns the attempt's cancel token so the loop
    /// can discard a losing racer.
    fn launch(
        self: &Arc<Self>,
        replica: usize,
        hedge: bool,
        request: &Request,
        tx: &mpsc::Sender<AttemptReport>,
    ) -> CancelToken {
        let token = CancelToken::new();
        let proxy = Arc::clone(self);
        let attempt_token = token.clone();
        let tx = tx.clone();
        let method = request.method.clone();
        let target = request.target.clone();
        let body = request.body.clone();
        self.metrics.record_upstream_request(replica);
        self.inflight[replica].fetch_add(1, Ordering::Relaxed);
        std::thread::spawn(move || {
            let addr = proxy.ring.replica(replica).to_string();
            let started = Instant::now();
            let outcome = if method == "GET" {
                proxy.client.get(&addr, &target, &attempt_token)
            } else {
                proxy.client.post(&addr, &target, &body, &attempt_token)
            };
            proxy.inflight[replica].fetch_sub(1, Ordering::Relaxed);
            if let Ok(response) = &outcome {
                if response.status == 200 {
                    proxy.push_latency(started.elapsed());
                }
            }
            // The loop may already have returned with a winner; a closed
            // channel is the expected way a loser's report dies.
            let _ = tx.send(AttemptReport {
                replica,
                hedge,
                outcome,
            });
        });
        token
    }

    /// Routes one request end to end. Never panics; every path — healthy
    /// forward, failover, hedge race, degraded fallback, deadline expiry
    /// — ends in a response.
    pub fn forward(self: &Arc<Self>, request: &Request) -> Response {
        let deadline = Deadline::after(self.cfg.request_deadline);
        let key = Self::routing_key(request);
        let mut pending: std::collections::VecDeque<usize> = self.plan(&key).into();
        let (tx, rx) = mpsc::channel::<AttemptReport>();
        let mut racers: Vec<CancelToken> = Vec::new();
        let mut outstanding = 0usize;
        let mut hedged = false;
        // The most recent conclusive non-200 (e.g. a 400 or an
        // out-of-candidates 503), proxied verbatim if nothing better.
        let mut conclusive: Option<ClientResponse> = None;

        // Pop the next candidate; when the walk is exhausted after a
        // *transport-class* failure (connect refused, phase timeout,
        // truncation, digest mismatch, 408) and wall-clock remains,
        // re-plan instead of dropping to degraded: a transient network
        // fault draws fresh dice on a new connection, while genuinely
        // dead replicas accumulate health failures until the plan comes
        // back empty and the loop exits. Bounded by the request deadline.
        let next_candidate =
            |pending: &mut std::collections::VecDeque<usize>, replan: bool| -> Option<usize> {
                if let Some(next) = pending.pop_front() {
                    return Some(next);
                }
                if replan && !deadline.expired() {
                    *pending = self.plan(&key).into();
                    return pending.pop_front();
                }
                None
            };

        if let Some(first) = next_candidate(&mut pending, false) {
            racers.push(self.launch(first, false, request, &tx));
            outstanding += 1;
        }

        while outstanding > 0 {
            if deadline.expired() {
                break;
            }
            let can_hedge = !hedged && outstanding == 1;
            let wait = if can_hedge {
                self.hedge_delay()
            } else {
                WAIT_SLICE
            }
            .min(deadline.remaining().max(Duration::from_millis(1)));
            match rx.recv_timeout(wait) {
                Ok(report) => {
                    outstanding -= 1;
                    match report.outcome {
                        Ok(response) if response.status == 200 => {
                            self.health.record_ok(report.replica);
                            self.breakers[report.replica].record_ok();
                            if report.hedge {
                                self.metrics.record_hedge_won();
                            }
                            for racer in &racers {
                                racer.cancel(CancelReason::Interrupt);
                            }
                            return to_response(response);
                        }
                        Ok(response)
                            if response.status == 503
                                || response.status == 504
                                || response.status == 408 =>
                        {
                            // Overloaded (503/504) or the request never
                            // arrived intact (408, e.g. a dripping link):
                            // a breaker failure, not a health failure.
                            // Only the 408 re-plans on exhaustion — it is
                            // a network symptom, while 503/504 describe
                            // replica capacity and are answered verbatim
                            // rather than retried into a deadline expiry.
                            let replan = response.status == 408;
                            self.breakers[report.replica].record_failure();
                            let retry_after = response.retry_after();
                            conclusive = Some(response);
                            if outstanding == 0 {
                                if let Some(next) = next_candidate(&mut pending, replan) {
                                    let pause = self.failover_pause(retry_after);
                                    if exareq_net::client::sleep_cancellable(
                                        pause.min(deadline.remaining()),
                                        &CancelToken::new(),
                                    ) {
                                        self.metrics.record_failover();
                                        racers.push(self.launch(next, false, request, &tx));
                                        outstanding += 1;
                                    }
                                }
                            }
                        }
                        Ok(response) => {
                            // The replica answered (400, 404, 405, …):
                            // conclusive, proxied verbatim.
                            self.health.record_ok(report.replica);
                            self.breakers[report.replica].record_ok();
                            for racer in &racers {
                                racer.cancel(CancelReason::Interrupt);
                            }
                            return to_response(response);
                        }
                        Err(ClientError::Cancelled) => {
                            // A discarded racer; nothing to record.
                        }
                        Err(e) => {
                            self.record_last_error(report.replica, &e);
                            self.health.record_failure(report.replica);
                            self.breakers[report.replica].record_failure();
                            if outstanding == 0 {
                                if let Some(next) = next_candidate(&mut pending, true) {
                                    let pause = self.failover_pause(None);
                                    if exareq_net::client::sleep_cancellable(
                                        pause.min(deadline.remaining()),
                                        &CancelToken::new(),
                                    ) {
                                        self.metrics.record_failover();
                                        racers.push(self.launch(next, false, request, &tx));
                                        outstanding += 1;
                                    }
                                }
                            }
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if can_hedge {
                        if let Some(next) = next_candidate(&mut pending, false) {
                            hedged = true;
                            self.metrics.record_hedge_launched();
                            racers.push(self.launch(next, true, request, &tx));
                            outstanding += 1;
                        } else {
                            // Nothing left to hedge onto; from here on
                            // just wait out the outstanding attempt.
                            hedged = true;
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        for racer in &racers {
            racer.cancel(CancelReason::Interrupt);
        }
        if deadline.expired() {
            let mut response = Response::json(
                504,
                api::error_body("request deadline expired").into_bytes(),
            );
            response.retry_after = Some(1);
            return response;
        }
        if let Some(response) = conclusive {
            // Every reachable replica said "not now": relay the last
            // answer verbatim, Retry-After included — the replicas are
            // alive, so local evaluation would lie about capacity.
            return to_response(response);
        }
        self.degraded(request, &deadline)
    }

    /// The degraded-mode fallback: evaluate in-process against the
    /// router's own registry, through the same dispatch the replicas
    /// run — bodies byte-identical by construction — and flag the
    /// response out-of-band.
    fn degraded(&self, request: &Request, deadline: &Deadline) -> Response {
        self.metrics.record_degraded();
        let token = CancelToken::new().with_deadline(Deadline::after(deadline.remaining()));
        // No refresher: a degraded router must not mutate model
        // artifacts it only borrows for fallback reads.
        let state = EngineState {
            queue_len: 0,
            allow_measure: false,
            refresher: None,
        };
        let mut response =
            dispatch::dispatch(request, &self.registry, &self.local_metrics, &token, &state);
        response
            .extra_headers
            .push(("X-Exareq-Degraded", "local".to_string()));
        response
    }
}

/// Maps an upstream response onto the router's wire type, body verbatim.
fn to_response(upstream: ClientResponse) -> Response {
    let is_text = upstream
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/plain"));
    let retry_after = upstream.retry_after();
    let mut response = if is_text {
        Response::text(upstream.status, upstream.body)
    } else {
        Response::json(upstream.status, upstream.body)
    };
    response.retry_after = retry_after;
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use exareq_serve::registry::Fitter;

    fn proxy_over(replicas: &[&str]) -> Arc<Proxy> {
        let replicas: Vec<String> = replicas.iter().map(|s| s.to_string()).collect();
        let fitter: Box<Fitter> = Box::new(|_| Err("no fitter in tests".to_string()));
        let registry = Arc::new(ModelRegistry::new("/nonexistent-model-dir", fitter));
        Proxy::new(&replicas, registry, ProxyConfig::default())
    }

    #[test]
    fn plan_walks_the_ring_and_skips_dead_replicas() {
        let proxy = proxy_over(&["127.0.0.1:9101", "127.0.0.1:9102", "127.0.0.1:9103"]);
        let full = proxy.plan("Kripke");
        assert_eq!(full.len(), 3);
        assert_eq!(full, proxy.ring().ordered("Kripke"));

        // Kill the primary: the plan starts at the old second choice.
        let primary = full[0];
        for _ in 0..3 {
            proxy.health().record_failure(primary);
        }
        let degraded_plan = proxy.plan("Kripke");
        assert_eq!(degraded_plan.len(), 2);
        assert!(!degraded_plan.contains(&primary));
        assert_eq!(degraded_plan[0], full[1]);
    }

    #[test]
    fn plan_skips_open_breakers_and_empties_when_all_are_out() {
        let proxy = proxy_over(&["127.0.0.1:9101", "127.0.0.1:9102"]);
        for _ in 0..crate::breaker::TRIP_AFTER {
            proxy.breakers[0].record_failure();
        }
        let plan = proxy.plan("LULESH");
        assert_eq!(plan, vec![1]);
        for _ in 0..3 {
            proxy.health().record_failure(1);
        }
        assert!(proxy.plan("LULESH").is_empty());
    }

    #[test]
    fn suspect_replicas_sort_after_healthy_ones() {
        let proxy = proxy_over(&["127.0.0.1:9101", "127.0.0.1:9102", "127.0.0.1:9103"]);
        let full = proxy.plan("MILC");
        let primary = full[0];
        proxy.health().record_failure(primary); // one failure: suspect
        let plan = proxy.plan("MILC");
        assert_eq!(plan.len(), 3);
        assert_eq!(*plan.last().unwrap(), primary, "suspect demoted to last");
    }

    #[test]
    fn hedge_delay_defaults_until_samples_accumulate() {
        let proxy = proxy_over(&["127.0.0.1:9101"]);
        assert_eq!(proxy.hedge_delay(), ProxyConfig::default().hedge_after);
        for i in 0..100 {
            proxy.push_latency(Duration::from_millis(1 + (i % 5)));
        }
        let derived = proxy.hedge_delay();
        assert!(
            derived >= HEDGE_MIN && derived <= Duration::from_millis(10),
            "{derived:?}"
        );
    }

    #[test]
    fn routing_key_prefers_the_model_name() {
        let request = Request {
            method: "POST".to_string(),
            target: "/predict".to_string(),
            headers: Vec::new(),
            body: br#"{"model":"Kripke","p":64,"n":1000}"#.to_vec(),
            http10: false,
        };
        assert_eq!(Proxy::routing_key(&request), "Kripke");
        let batch = Request {
            method: "POST".to_string(),
            target: "/predict_batch".to_string(),
            headers: Vec::new(),
            body: br#"{"model":"Kripke","points":[[2,64]]}"#.to_vec(),
            http10: false,
        };
        assert_eq!(Proxy::routing_key(&batch), "Kripke");
        let malformed = Request {
            method: "POST".to_string(),
            target: "/predict".to_string(),
            headers: Vec::new(),
            body: b"not json".to_vec(),
            http10: false,
        };
        assert_eq!(Proxy::routing_key(&malformed), "/predict#not json");
    }

    #[test]
    fn degraded_answers_carry_the_flag_header() {
        let proxy = proxy_over(&[]);
        let request = Request {
            method: "GET".to_string(),
            target: "/models".to_string(),
            headers: Vec::new(),
            body: Vec::new(),
            http10: false,
        };
        let response = proxy.forward(&request);
        assert_eq!(response.status, 200);
        assert!(response
            .extra_headers
            .iter()
            .any(|(k, v)| *k == "X-Exareq-Degraded" && v == "local"));
        assert_eq!(proxy.metrics().degraded(), 1);
    }
}
