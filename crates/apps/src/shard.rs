//! Shard planning for the distributed survey fleet.
//!
//! A survey grid is embarrassingly parallel (every `(p, n)` configuration
//! derives its fault seeds from `(plan, p, n, attempt)` alone), so the
//! coordinator is free to cut the grid into contiguous shards and measure
//! them on different workers. What it is *not* free to do is reorder the
//! observable trail: the journal and the survey fold in canonical grid
//! order. Keeping each shard a **contiguous slice of the canonical order**
//! lets the coordinator's reorder buffer commit shard 0, then shard 1, …
//! and mechanically reproduce the sequential bytes.

use crate::AppGrid;

/// One unit of fleet work: a contiguous run of canonical-order `(p, n)`
/// configurations, identified by its position in the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Shard index in canonical order (0 is the earliest grid slice).
    pub id: usize,
    /// The shard's configurations, in canonical grid order.
    pub configs: Vec<(u64, u64)>,
}

/// The grid's configurations in canonical order: `p` outer, `n` inner —
/// the exact order every survey driver measures and journals.
pub fn grid_configs(grid: &AppGrid) -> Vec<(u64, u64)> {
    grid.p_values
        .iter()
        .flat_map(|&p| grid.n_values.iter().map(move |&n| (p as u64, n)))
        .collect()
}

/// Cuts `configs` (already in canonical order, already filtered down to
/// the pending ones) into contiguous shards of at most `shard_size`
/// configurations. A `shard_size` of 0 is treated as 1; the final shard
/// may be short.
pub fn plan_shards(configs: &[(u64, u64)], shard_size: usize) -> Vec<ShardPlan> {
    let size = shard_size.max(1);
    configs
        .chunks(size)
        .enumerate()
        .map(|(id, chunk)| ShardPlan {
            id,
            configs: chunk.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_is_p_outer_n_inner() {
        let grid = AppGrid {
            p_values: vec![2, 4],
            n_values: vec![64, 256],
        };
        assert_eq!(
            grid_configs(&grid),
            vec![(2, 64), (2, 256), (4, 64), (4, 256)]
        );
    }

    #[test]
    fn shards_are_contiguous_and_cover_the_grid() {
        let configs = vec![(2, 64), (2, 256), (4, 64), (4, 256), (8, 64)];
        let shards = plan_shards(&configs, 2);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].configs, vec![(2, 64), (2, 256)]);
        assert_eq!(shards[2].configs, vec![(8, 64)]);
        let flat: Vec<_> = shards.iter().flat_map(|s| s.configs.clone()).collect();
        assert_eq!(flat, configs, "concatenated shards must be the grid");
        assert_eq!(
            shards.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn zero_shard_size_degenerates_to_one() {
        let shards = plan_shards(&[(2, 64), (4, 64)], 0);
        assert_eq!(shards.len(), 2);
    }
}
