//! Std-only HTTP/1.1 client for the fleet coordinator and query router.
//!
//! Both talk to `exareq serve` daemons over the same wire format, so the
//! client is the mirror image of `crates/serve/src/http.rs`: request
//! line plus `Content-Length` body out, status line + headers + body
//! back. Three properties matter more than generality:
//!
//! - **Bounded everything.** Connects use [`TcpStream::connect_timeout`],
//!   reads happen in short timeout slices under a per-exchange deadline,
//!   and response heads/bodies have hard size caps. A hung worker costs a
//!   deadline, never a stuck coordinator.
//! - **Cancellable everywhere.** Every wait — connect retry backoff,
//!   read slice, `Retry-After` sleep — polls a
//!   [`CancelToken`](exareq_core::cancel::CancelToken) so Ctrl-C and
//!   coordinator wind-down interrupt in-flight I/O within ~one slice.
//! - **Polite retries.** [`HttpClient::post_with_retry`] retries transport
//!   errors and 503/504 answers under a fixed attempt budget with jittered
//!   exponential backoff, and when the server names a price — a
//!   `Retry-After` header — the client pays exactly that instead of its
//!   own schedule.

use exareq_core::cancel::CancelToken;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Largest response head (status line + headers) the client will buffer.
pub const MAX_RESPONSE_HEAD: usize = 16 * 1024;

/// Largest response body the client will buffer (measurement shards can
/// carry thousands of journal entries, so this is far above `/predict`
/// sizes but still a hard stop against a babbling server).
pub const MAX_RESPONSE_BODY: usize = 64 * 1024 * 1024;

/// Ceiling on an honored `Retry-After` value, seconds. A misconfigured
/// worker must not be able to park the coordinator for an hour.
pub const MAX_RETRY_AFTER_SECS: u64 = 30;

/// Granularity of cancellable waits: read slices and backoff sleeps.
const SLICE: Duration = Duration::from_millis(50);

/// Tuning for one [`HttpClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Total wall-clock budget for one exchange (write + read).
    pub exchange_deadline: Duration,
    /// Attempts per [`HttpClient::post_with_retry`] call (including the
    /// first); clamped to at least 1.
    pub retry_budget: u32,
    /// First backoff step; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for backoff jitter (deterministic per client).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(1),
            exchange_deadline: Duration::from_secs(30),
            retry_budget: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// Why an exchange failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Could not resolve or connect within the connect timeout.
    Connect(String),
    /// Read/write failed mid-exchange.
    Io(String),
    /// The bytes on the wire were not a well-formed HTTP/1.1 response.
    Protocol(String),
    /// The exchange deadline elapsed before a full response arrived.
    Timeout,
    /// The cancel token fired mid-exchange or mid-backoff.
    Cancelled,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect: {e}"),
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Timeout => write!(f, "exchange deadline elapsed"),
            ClientError::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// One parsed HTTP response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header name/value pairs in wire order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `Retry-After` in whole seconds, if present and integral.
    pub fn retry_after(&self) -> Option<u64> {
        self.header("retry-after")?.trim().parse().ok()
    }
}

/// Std-only HTTP/1.1 client with bounded, cancellable exchanges.
pub struct HttpClient {
    cfg: ClientConfig,
    /// splitmix64 state for backoff jitter.
    rng: Mutex<u64>,
}

impl HttpClient {
    /// Build a client with the given tuning.
    pub fn new(cfg: ClientConfig) -> Self {
        let rng = Mutex::new(cfg.jitter_seed | 1);
        HttpClient { cfg, rng }
    }

    /// One `GET` exchange, no retries. Probes use this: a health check
    /// that needs a retry budget is already an answer.
    pub fn get(
        &self,
        addr: &str,
        target: &str,
        cancel: &CancelToken,
    ) -> Result<ClientResponse, ClientError> {
        self.exchange(addr, "GET", target, b"", cancel)
    }

    /// One `POST` exchange, no retries.
    pub fn post(
        &self,
        addr: &str,
        target: &str,
        body: &[u8],
        cancel: &CancelToken,
    ) -> Result<ClientResponse, ClientError> {
        self.exchange(addr, "POST", target, body, cancel)
    }

    /// `POST` with the retry budget applied to transport errors and
    /// 503/504 answers. When a retriable response carries `Retry-After`,
    /// that many seconds (capped at [`MAX_RETRY_AFTER_SECS`]) replace the
    /// computed backoff. Returns the first conclusive response, or the
    /// last failure once the budget is spent.
    pub fn post_with_retry(
        &self,
        addr: &str,
        target: &str,
        body: &[u8],
        cancel: &CancelToken,
    ) -> Result<ClientResponse, ClientError> {
        let attempts = self.cfg.retry_budget.max(1);
        let mut last: Option<Result<ClientResponse, ClientError>> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let hinted = match &last {
                    Some(Ok(resp)) => resp.retry_after(),
                    _ => None,
                };
                let pause = match hinted {
                    Some(secs) => Duration::from_secs(secs.min(MAX_RETRY_AFTER_SECS)),
                    None => self.backoff(attempt),
                };
                if !sleep_cancellable(pause, cancel) {
                    return Err(ClientError::Cancelled);
                }
            }
            match self.exchange(addr, "POST", target, body, cancel) {
                Ok(resp) if resp.status == 503 || resp.status == 504 => {
                    last = Some(Ok(resp));
                }
                Ok(resp) => return Ok(resp),
                Err(ClientError::Cancelled) => return Err(ClientError::Cancelled),
                Err(e) => last = Some(Err(e)),
            }
        }
        last.unwrap_or(Err(ClientError::Io("empty retry budget".to_string())))
    }

    /// Jittered exponential backoff for the given attempt (1-based):
    /// uniformly in `[step/2, step)` where `step = base * 2^(attempt-1)`,
    /// capped. Full-jitter halves herd alignment without ever sleeping
    /// longer than the deterministic schedule.
    fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let step = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.cfg.backoff_cap)
            .max(Duration::from_millis(1));
        let nanos = step.as_nanos() as u64;
        let mut state = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        let draw = splitmix64(&mut state);
        Duration::from_nanos(nanos / 2 + draw % (nanos / 2).max(1))
    }

    /// One full request/response round trip.
    fn exchange(
        &self,
        addr: &str,
        method: &str,
        target: &str,
        body: &[u8],
        cancel: &CancelToken,
    ) -> Result<ClientResponse, ClientError> {
        if cancel.is_cancelled() {
            return Err(ClientError::Cancelled);
        }
        let deadline = Instant::now() + self.cfg.exchange_deadline;
        let stream = self.connect(addr)?;
        stream
            .set_read_timeout(Some(SLICE))
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let mut stream = stream;
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body))
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let raw = read_response(&mut stream, deadline, cancel)?;
        parse_response(&raw)
    }

    /// Resolve and connect with the connect timeout. Multi-homed names
    /// try each address in resolution order.
    fn connect(&self, addr: &str) -> Result<TcpStream, ClientError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ClientError::Connect(format!("{addr}: {e}")))?
            .collect();
        let mut last = ClientError::Connect(format!("{addr}: no addresses"));
        for sockaddr in addrs {
            match TcpStream::connect_timeout(&sockaddr, self.cfg.connect_timeout) {
                Ok(s) => return Ok(s),
                Err(e) => last = ClientError::Connect(format!("{sockaddr}: {e}")),
            }
        }
        Err(last)
    }
}

/// splitmix64 step — same generator family the simulator uses, kept
/// local so the client has zero coupling to measurement seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sleep in cancellable slices; `false` means the token fired first.
/// Public because every consumer of this client ends up needing the same
/// "wait politely but notice Ctrl-C" loop between exchanges.
pub fn sleep_cancellable(total: Duration, cancel: &CancelToken) -> bool {
    let deadline = Instant::now() + total;
    loop {
        if cancel.is_cancelled() {
            return false;
        }
        let now = Instant::now();
        if now >= deadline {
            return true;
        }
        std::thread::sleep((deadline - now).min(SLICE));
    }
}

/// Read a full response in timeout slices: until `Content-Length` bytes
/// past the head, or EOF when the header is absent (`Connection: close`).
fn read_response(
    stream: &mut TcpStream,
    deadline: Instant,
    cancel: &CancelToken,
) -> Result<Vec<u8>, ClientError> {
    let mut raw = Vec::new();
    let mut buf = [0u8; 8192];
    let mut want: Option<usize> = None;
    loop {
        if let Some(total) = want {
            if raw.len() >= total {
                raw.truncate(total);
                return Ok(raw);
            }
        }
        if cancel.is_cancelled() {
            return Err(ClientError::Cancelled);
        }
        if Instant::now() >= deadline {
            return Err(ClientError::Timeout);
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                return match want {
                    // Short body after a promised length is a protocol error.
                    Some(_) => Err(ClientError::Protocol("truncated body".to_string())),
                    None if raw.is_empty() => {
                        Err(ClientError::Protocol("empty response".to_string()))
                    }
                    None => Ok(raw),
                };
            }
            Ok(k) => {
                raw.extend_from_slice(&buf[..k]);
                if want.is_none() {
                    if let Some(head_end) = find_head_end(&raw) {
                        let head = std::str::from_utf8(&raw[..head_end])
                            .map_err(|_| ClientError::Protocol("non-UTF8 head".to_string()))?;
                        want = content_length(head)?.map(|len| {
                            // Total bytes once the body is complete.
                            head_end + 4 + len
                        });
                        if let Some(total) = want {
                            if total > MAX_RESPONSE_BODY {
                                return Err(ClientError::Protocol(format!(
                                    "body of {} bytes exceeds cap",
                                    total - head_end - 4
                                )));
                            }
                        }
                    } else if raw.len() > MAX_RESPONSE_HEAD {
                        return Err(ClientError::Protocol("response head too large".to_string()));
                    }
                }
                if raw.len() > MAX_RESPONSE_BODY {
                    return Err(ClientError::Protocol("response body too large".to_string()));
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(ClientError::Io(e.to_string())),
        }
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

/// `Content-Length` from a response head, if present.
fn content_length(head: &str) -> Result<Option<usize>, ClientError> {
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                return value
                    .trim()
                    .parse::<usize>()
                    .map(Some)
                    .map_err(|_| ClientError::Protocol("bad Content-Length".to_string()));
            }
        }
    }
    Ok(None)
}

/// Parse a complete response buffer into status/headers/body.
fn parse_response(raw: &[u8]) -> Result<ClientResponse, ClientError> {
    let head_end = find_head_end(raw)
        .ok_or_else(|| ClientError::Protocol("no head terminator".to_string()))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| ClientError::Protocol("non-UTF8 head".to_string()))?;
    let mut lines = head.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| ClientError::Protocol("empty head".to_string()))?;
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ClientError::Protocol(format!("bad version {version:?}")));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol("bad status code".to_string()))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Serve `responses` on a loopback listener, one connection each,
    /// draining the request head first. Returns the address.
    fn canned_server(responses: Vec<String>) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            for resp in responses {
                let (mut stream, _) = match listener.accept() {
                    Ok(c) => c,
                    Err(_) => return,
                };
                let mut buf = [0u8; 4096];
                let mut seen = Vec::new();
                // Read until the request head terminator; the tests only
                // send bodies the head fully describes.
                while find_head_end(&seen).is_none() {
                    match stream.read(&mut buf) {
                        Ok(0) => break,
                        Ok(k) => seen.extend_from_slice(&buf[..k]),
                        Err(_) => break,
                    }
                }
                let _ = stream.write_all(resp.as_bytes());
            }
        });
        addr
    }

    fn ok_response(body: &str) -> String {
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn get_parses_status_headers_and_body() {
        let addr = canned_server(vec![ok_response("{\"status\":\"ok\"}")]);
        let client = HttpClient::new(ClientConfig::default());
        let resp = client
            .get(&addr, "/healthz", &CancelToken::new())
            .expect("exchange");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body, b"{\"status\":\"ok\"}");
    }

    #[test]
    fn post_with_retry_honors_retry_after_then_succeeds() {
        let addr = canned_server(vec![
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\nContent-Length: 4\r\n\r\nbusy"
                .to_string(),
            ok_response("done"),
        ]);
        let client = HttpClient::new(ClientConfig {
            // A computed backoff would be >= 50ms; Retry-After: 0 makes
            // the retry immediate, which the elapsed-time bound checks.
            backoff_base: Duration::from_millis(100),
            ..ClientConfig::default()
        });
        let t0 = Instant::now();
        let resp = client
            .post_with_retry(&addr, "/measure", b"{}", &CancelToken::new())
            .expect("retry succeeds");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"done");
        assert!(
            t0.elapsed() < Duration::from_millis(90),
            "Retry-After: 0 should preempt the 100ms backoff schedule"
        );
    }

    #[test]
    fn retry_budget_returns_last_503() {
        let busy =
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 0\r\nContent-Length: 0\r\n\r\n"
                .to_string();
        let addr = canned_server(vec![busy.clone(), busy.clone(), busy]);
        let client = HttpClient::new(ClientConfig {
            retry_budget: 3,
            ..ClientConfig::default()
        });
        let resp = client
            .post_with_retry(&addr, "/measure", b"{}", &CancelToken::new())
            .expect("last response surfaces");
        assert_eq!(resp.status, 503);
    }

    #[test]
    fn black_hole_times_out_within_deadline() {
        // Accepts but never responds.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        std::thread::spawn(move || {
            let conn = listener.accept();
            std::thread::sleep(Duration::from_secs(5));
            drop(conn);
        });
        let client = HttpClient::new(ClientConfig {
            exchange_deadline: Duration::from_millis(200),
            ..ClientConfig::default()
        });
        let t0 = Instant::now();
        let err = client
            .get(&addr, "/healthz", &CancelToken::new())
            .expect_err("no answer");
        assert_eq!(err, ClientError::Timeout);
        assert!(t0.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn connect_refused_is_a_connect_error() {
        // Bind then drop to get a port that refuses quickly.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let client = HttpClient::new(ClientConfig::default());
        match client.get(&addr, "/healthz", &CancelToken::new()) {
            Err(ClientError::Connect(_)) => {}
            other => panic!("expected connect error, got {other:?}"),
        }
    }
}
