//! CSV import/export for experiments, so measurements from real systems
//! (Score-P profiles, PAPI logs, spreadsheets) can be fed to the model
//! generator without writing Rust.
//!
//! Format: a header row naming the parameters, with the measured value in
//! the final column, e.g.
//!
//! ```csv
//! p,n,value
//! 2,1024,1.25e6
//! 4,1024,1.31e6
//! ```
//!
//! Repetitions (duplicate coordinates) are allowed and handled by the
//! generator's aggregation. Lines starting with `#` and blank lines are
//! ignored.

use crate::measurement::Experiment;

/// Errors produced while parsing experiment CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input has no header row.
    MissingHeader,
    /// The header has fewer than two columns (≥1 parameter + value).
    TooFewColumns {
        /// 1-based line number of the header row.
        line: usize,
    },
    /// A data row has the wrong number of fields.
    RaggedRow {
        /// 1-based line number in the input.
        line: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number in the input.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// A field parsed as a number but is NaN or ±infinity — meaningless as
    /// a measurement and poisonous to the fitting pipeline, so rejected at
    /// the boundary.
    NonFinite {
        /// 1-based line number in the input.
        line: usize,
        /// The offending field text.
        field: String,
    },
}

impl core::fmt::Display for CsvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "missing header row"),
            CsvError::TooFewColumns { line } => write!(
                f,
                "need at least one parameter column and a value column \
                 (header on line {line})"
            ),
            CsvError::RaggedRow { line } => write!(f, "wrong field count on line {line}"),
            CsvError::BadNumber { line, field } => {
                write!(f, "cannot parse `{field}` as a number on line {line}")
            }
            CsvError::NonFinite { line, field } => {
                write!(f, "non-finite value `{field}` on line {line}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses an experiment from CSV text.
///
/// # Errors
/// Returns [`CsvError`] for structural or numeric problems; the error
/// carries the offending line.
pub fn experiment_from_csv(text: &str) -> Result<Experiment, CsvError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (header_line, header) = lines.next().ok_or(CsvError::MissingHeader)?;
    let cols: Vec<&str> = header.split(',').map(str::trim).collect();
    if cols.len() < 2 {
        return Err(CsvError::TooFewColumns { line: header_line });
    }
    let params: Vec<String> = cols[..cols.len() - 1]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut exp = Experiment::new(params);

    for (line, row) in lines {
        let fields: Vec<&str> = row.split(',').map(str::trim).collect();
        if fields.len() != cols.len() {
            return Err(CsvError::RaggedRow { line });
        }
        // cols.len() >= 2 was checked above, so every row splits into at
        // least one coordinate plus the trailing value — no panic path.
        let (coord_fields, value_field) = match fields.split_last() {
            Some((value, coords)) => (coords, value),
            None => return Err(CsvError::RaggedRow { line }),
        };
        // Coordinates and value must be *finite* numbers: "nan"/"inf"
        // satisfy f64::parse but carry no measurement meaning, and one of
        // them silently poisons every downstream fit.
        let parse_finite = |field: &str| -> Result<f64, CsvError> {
            let v: f64 = field.parse().map_err(|_| CsvError::BadNumber {
                line,
                field: field.to_string(),
            })?;
            if !v.is_finite() {
                return Err(CsvError::NonFinite {
                    line,
                    field: field.to_string(),
                });
            }
            Ok(v)
        };
        let mut nums = Vec::with_capacity(coord_fields.len());
        for field in coord_fields {
            nums.push(parse_finite(field)?);
        }
        let value = parse_finite(value_field)?;
        exp.push(&nums, value);
    }
    Ok(exp)
}

/// Serializes an experiment to CSV text (header + one row per point).
pub fn experiment_to_csv(exp: &Experiment) -> String {
    let mut out = String::new();
    out.push_str(&exp.params.join(","));
    out.push_str(",value\n");
    for m in &exp.points {
        for c in &m.coords {
            out.push_str(&format!("{c},"));
        }
        out.push_str(&format!("{}\n", m.value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_two_parameter_csv() {
        let text = "\
# measured on cluster X
p,n,value
2,1024,100.5
4, 1024, 201.25

8,2048,410
";
        let exp = experiment_from_csv(text).unwrap();
        assert_eq!(exp.params, vec!["p".to_string(), "n".to_string()]);
        assert_eq!(exp.points.len(), 3);
        assert_eq!(exp.points[1].coords, vec![4.0, 1024.0]);
        assert_eq!(exp.points[1].value, 201.25);
    }

    #[test]
    fn roundtrip_preserves_data() {
        let exp = Experiment::from_fn(vec!["p", "n"], &[&[2.0, 4.0], &[8.0, 16.0]], |c| {
            c[0] * c[1] + 0.5
        });
        let back = experiment_from_csv(&experiment_to_csv(&exp)).unwrap();
        assert_eq!(exp, back);
    }

    #[test]
    fn repetitions_are_kept() {
        let text = "x,value\n2,10\n2,12\n4,20\n";
        let exp = experiment_from_csv(text).unwrap();
        assert_eq!(exp.points.len(), 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(
            experiment_from_csv("").unwrap_err(),
            CsvError::MissingHeader
        );
        assert_eq!(
            experiment_from_csv("value\n1\n").unwrap_err(),
            CsvError::TooFewColumns { line: 1 }
        );
        // The header's recorded line respects skipped comments/blanks.
        assert_eq!(
            experiment_from_csv("# note\n\nvalue\n1\n").unwrap_err(),
            CsvError::TooFewColumns { line: 3 }
        );
        assert_eq!(
            experiment_from_csv("p,value\n1,2,3\n").unwrap_err(),
            CsvError::RaggedRow { line: 2 }
        );
        assert_eq!(
            experiment_from_csv("p,value\n1,abc\n").unwrap_err(),
            CsvError::BadNumber {
                line: 2,
                field: "abc".to_string()
            }
        );
    }

    #[test]
    fn non_finite_values_are_rejected_with_line_numbers() {
        for field in ["nan", "NaN", "inf", "-inf", "infinity"] {
            assert_eq!(
                experiment_from_csv(&format!("p,value\n2,10\n4,{field}\n")).unwrap_err(),
                CsvError::NonFinite {
                    line: 3,
                    field: field.to_string()
                },
                "value field `{field}`"
            );
            assert_eq!(
                experiment_from_csv(&format!("p,value\n{field},10\n")).unwrap_err(),
                CsvError::NonFinite {
                    line: 2,
                    field: field.to_string()
                },
                "coordinate field `{field}`"
            );
        }
        let err = experiment_from_csv("p,value\n2,nan\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn fits_after_import() {
        // The advertised use: external measurements → model.
        let mut text = String::from("p,value\n");
        for p in [2.0f64, 4.0, 8.0, 16.0, 32.0, 64.0] {
            text.push_str(&format!("{p},{}\n", 5.0 * p * p.log2()));
        }
        let exp = experiment_from_csv(&text).unwrap();
        let m = crate::fit::fit_single(&exp, &crate::fit::FitConfig::coarse()).unwrap();
        assert_eq!(
            m.model.dominant_exponents(0),
            crate::pmnf::Exponents::new(1.0, 1.0)
        );
    }
}
