//! Network-aware wall-time bounds (Section III-B extension).
//!
//! Table VII's lower bound assumes perfect parallelization and *no
//! communication at all*; the paper notes that "to shift the lower bound
//! closer to more realistic runtimes, we need to take other requirements
//! such as communication into account, which is feasible as long as the
//! system designer can specify the rates at which the hardware can satisfy
//! them." This module implements that refinement: given per-processor
//! network injection rates for each straw man, the bound becomes
//! `max(T_flop, T_comm)` — compute/communication overlap is the most
//! optimistic consistent assumption, keeping it a true lower bound.

use crate::inflate::{inflate_problem, Inflation};
use crate::requirements::AppRequirements;
use crate::strawman::StrawMan;
use serde::{Deserialize, Serialize};

/// Per-processor network injection rate for one straw-man system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// System name (must match the straw man's).
    pub system: String,
    /// Injection bandwidth per processor, bytes/second.
    pub bytes_per_sec: f64,
}

/// Default network provisioning for the Table VI designs, derived from a
/// fixed byte-to-flop injection ratio of 0.1 B/flop — the Blue Gene/Q
/// class of balance (≈20 GB/s injection against ≈205 Gflop/s per node).
/// The paper does not pin these rates; this is a documented assumption of
/// the extension, and [`analyze_with_network`] accepts any other spec.
pub const DEFAULT_BYTES_PER_FLOP: f64 = 0.1;

/// Builds [`NetworkSpec`]s for a set of straw men at the default
/// byte-to-flop injection ratio.
pub fn default_network(systems: &[StrawMan]) -> Vec<NetworkSpec> {
    systems
        .iter()
        .map(|s| NetworkSpec {
            system: s.name.clone(),
            bytes_per_sec: DEFAULT_BYTES_PER_FLOP * s.flops_per_processor,
        })
        .collect()
}

/// One system's network-aware outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkOutcome {
    /// System name.
    pub system: String,
    /// FLOP-only lower bound (the Table VII number), seconds.
    pub t_flop: f64,
    /// Communication-only lower bound, seconds.
    pub t_comm: f64,
    /// Combined lower bound `max(T_flop, T_comm)`, seconds.
    pub t_bound: f64,
    /// True if the network, not compute, limits this application here.
    pub network_bound: bool,
}

/// Network-aware Table VII analysis for one application. Returns `None`
/// if the application cannot fill every system (the icoFoam case).
pub fn analyze_with_network(
    app: &AppRequirements,
    systems: &[StrawMan],
    network: &[NetworkSpec],
) -> Option<Vec<NetworkOutcome>> {
    assert_eq!(systems.len(), network.len(), "one spec per system");
    // Common benchmark problem: biggest solvable everywhere (as Table VII).
    let mut maxima = Vec::with_capacity(systems.len());
    for s in systems {
        match inflate_problem(&app.bytes_used, &s.skeleton()) {
            Inflation::Fits(n) => maxima.push(n * s.processors),
            _ => return None,
        }
    }
    let benchmark = maxima.iter().copied().fold(f64::INFINITY, f64::min);

    Some(
        systems
            .iter()
            .zip(network)
            .map(|(s, net)| {
                assert_eq!(s.name, net.system, "network spec order must match systems");
                let n_bench = benchmark / s.processors;
                let coords = [s.processors, n_bench];
                let t_flop = app.flops.eval(&coords) / s.flops_per_processor;
                let t_comm = app.comm_bytes.eval(&coords) / net.bytes_per_sec;
                NetworkOutcome {
                    system: s.name.clone(),
                    t_flop,
                    t_comm,
                    t_bound: t_flop.max(t_comm),
                    network_bound: t_comm > t_flop,
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::strawman::table_six;

    #[test]
    fn default_network_scales_with_compute() {
        let net = default_network(&table_six());
        assert_eq!(net.len(), 3);
        // Vector processors are 40× stronger than massively-parallel ones,
        // so their default injection is 40× higher too.
        assert!((net[1].bytes_per_sec / net[0].bytes_per_sec - 40.0).abs() < 1e-9);
    }

    #[test]
    fn bound_is_max_of_components() {
        let systems = table_six();
        let net = default_network(&systems);
        let out = analyze_with_network(&catalog::milc(), &systems, &net).unwrap();
        for o in &out {
            assert_eq!(o.t_bound, o.t_flop.max(o.t_comm));
            assert_eq!(o.network_bound, o.t_comm > o.t_flop);
            assert!(o.t_bound >= o.t_flop);
        }
    }

    #[test]
    fn network_bound_never_below_flop_only_table7() {
        // The refinement can only raise Table VII's numbers.
        let systems = table_six();
        let net = default_network(&systems);
        for app in [catalog::kripke(), catalog::lulesh(), catalog::relearn()] {
            let out = analyze_with_network(&app, &systems, &net).unwrap();
            for o in &out {
                assert!(o.t_bound >= o.t_flop, "{}: {o:?}", app.name);
            }
        }
    }

    #[test]
    fn milc_sits_at_the_balance_point() {
        // MILC's Table II requirement ratio is 1e9·n comm bytes per
        // 1e10·n flops = 0.1 B/F — exactly the default machine balance, so
        // its communication and compute bounds coincide to within the
        // small collective terms. This is the bytes-to-flop reasoning the
        // paper's introduction motivates, falling out of the models.
        let systems = table_six();
        let net = default_network(&systems);
        let out = analyze_with_network(&catalog::milc(), &systems, &net).unwrap();
        for o in &out {
            let ratio = o.t_comm / o.t_flop;
            assert!((ratio - 1.0).abs() < 0.05, "{o:?}");
        }
    }

    #[test]
    fn kripke_stays_compute_bound() {
        // Kripke: 1e4·n comm vs 1e7·n flops = 0.001 B/F requirement — two
        // decades below the machine balance.
        let systems = table_six();
        let net = default_network(&systems);
        let out = analyze_with_network(&catalog::kripke(), &systems, &net).unwrap();
        assert!(out.iter().all(|o| !o.network_bound), "{out:?}");
    }

    #[test]
    fn relearn_becomes_alltoall_bound_at_exascale() {
        // The extension's headline insight: Relearn's `10·Alltoall(p)` comm
        // term is negligible at measurement scale but linear in p, so at
        // p = 2·10⁹ it dwarfs the computation — the network, specifically
        // the all-to-all, limits Relearn on every straw man.
        let systems = table_six();
        let net = default_network(&systems);
        let out = analyze_with_network(&catalog::relearn(), &systems, &net).unwrap();
        assert!(out.iter().all(|o| o.network_bound), "{out:?}");
        // Most severely on the massively parallel design (largest p).
        assert!(out[0].t_comm / out[0].t_flop > out[1].t_comm / out[1].t_flop);
    }

    #[test]
    fn starved_network_flips_the_verdict() {
        // Choke the network 10 000×: every app becomes network bound.
        let systems = table_six();
        let net: Vec<NetworkSpec> = default_network(&systems)
            .into_iter()
            .map(|mut n| {
                n.bytes_per_sec /= 1e4;
                n
            })
            .collect();
        let out = analyze_with_network(&catalog::lulesh(), &systems, &net).unwrap();
        assert!(out.iter().any(|o| o.network_bound), "{out:?}");
    }

    #[test]
    fn icofoam_returns_none() {
        let systems = table_six();
        let net = default_network(&systems);
        assert!(analyze_with_network(&catalog::icofoam(), &systems, &net).is_none());
    }
}
