//! Client-side Prometheus counters.
//!
//! The interesting question when a distributed request dies is *where the
//! time went*: did the budget drain connecting, writing, or reading?
//! [`NetMetrics`] counts phase-attributed timeouts so the router and fleet
//! can export `net_request_phase_timeouts_total{phase}` next to their own
//! failover counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// The phase of an exchange a deadline can expire in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// TCP connect (including address resolution).
    Connect,
    /// Writing the request head + body.
    Write,
    /// Waiting for / reading the response.
    Read,
}

impl Phase {
    /// Stable metric label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Connect => "connect",
            Phase::Write => "write",
            Phase::Read => "read",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// All phases, in label order.
pub const PHASES: [Phase; 3] = [Phase::Connect, Phase::Write, Phase::Read];

/// Lock-free per-phase timeout counters, shared by one [`HttpClient`]
/// (every retry attempt of every request feeds the same counters).
///
/// [`HttpClient`]: crate::client::HttpClient
#[derive(Debug, Default)]
pub struct NetMetrics {
    connect: AtomicU64,
    write: AtomicU64,
    read: AtomicU64,
}

impl NetMetrics {
    /// Fresh counters at zero.
    pub fn new() -> Self {
        NetMetrics::default()
    }

    fn cell(&self, phase: Phase) -> &AtomicU64 {
        match phase {
            Phase::Connect => &self.connect,
            Phase::Write => &self.write,
            Phase::Read => &self.read,
        }
    }

    /// Record one timeout in `phase`.
    pub fn record_timeout(&self, phase: Phase) {
        self.cell(phase).fetch_add(1, Ordering::Relaxed);
    }

    /// Timeout count for one phase.
    pub fn timeouts(&self, phase: Phase) -> u64 {
        self.cell(phase).load(Ordering::Relaxed)
    }

    /// Sum across phases.
    pub fn timeouts_total(&self) -> u64 {
        PHASES.iter().map(|p| self.timeouts(*p)).sum()
    }

    /// Render in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(
            "# HELP net_request_phase_timeouts_total Client deadline expiries, by exchange phase.\n",
        );
        out.push_str("# TYPE net_request_phase_timeouts_total counter\n");
        for phase in PHASES {
            out.push_str(&format!(
                "net_request_phase_timeouts_total{{phase=\"{}\"}} {}\n",
                phase.label(),
                self.timeouts(phase)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_every_phase() {
        let m = NetMetrics::new();
        m.record_timeout(Phase::Read);
        m.record_timeout(Phase::Read);
        m.record_timeout(Phase::Connect);
        let text = m.render();
        assert!(text.contains("net_request_phase_timeouts_total{phase=\"connect\"} 1"));
        assert!(text.contains("net_request_phase_timeouts_total{phase=\"write\"} 0"));
        assert!(text.contains("net_request_phase_timeouts_total{phase=\"read\"} 2"));
        assert_eq!(m.timeouts_total(), 3);
    }
}
