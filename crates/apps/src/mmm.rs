//! The matrix-multiplication locality walk-through of Section II-D
//! (Listings 1 and 2): naïve and blocked `C = A·B` with instruction-group
//! instrumentation, used to demonstrate that the locality analysis
//! distinguishes locality-preserving implementations from locality-degrading
//! ones.
//!
//! Expected common-case distances (paper):
//!
//! | group | naïve SD  | naïve RD      | blocked SD | blocked RD |
//! |-------|-----------|---------------|------------|------------|
//! | A     | ≈ 2n      | ≈ 2n          | 2b+1       | 3b         |
//! | B     | n²+2n−1   | 2n²+n−1       | 2b²+b      | 3b²        |
//! | C     | —         | —             | 2          | 2          |

use exareq_locality::{BurstSampler, GroupId};

/// Instruction-group handles returned by the kernels, in Listing order.
#[derive(Debug, Clone, Copy)]
pub struct MmmGroups {
    /// Accesses to matrix A.
    pub a: GroupId,
    /// Accesses to matrix B.
    pub b: GroupId,
    /// Accesses to matrix C.
    pub c: GroupId,
}

/// Naïve triple-loop matrix multiplication (Listing 1) with every element
/// access fed to the locality sampler. Returns the group handles and a
/// checksum of C (so the arithmetic is observable and cannot be elided).
pub fn naive_mmm(n: usize, sampler: &mut BurstSampler) -> (MmmGroups, f64) {
    let groups = MmmGroups {
        a: sampler.register_group("A (naive mmm)"),
        b: sampler.register_group("B (naive mmm)"),
        c: sampler.register_group("C (naive mmm)"),
    };
    let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 * 0.25).collect();
    let b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 * 0.5).collect();
    let mut c = vec![0.0f64; n * n];
    let (base_a, base_b, base_c) = (0u64, (n * n) as u64, (2 * n * n) as u64);

    for i in 0..n {
        for j in 0..n {
            let mut v = 0.0f64;
            for k in 0..n {
                sampler.access(groups.a, base_a + (i * n + k) as u64);
                sampler.access(groups.b, base_b + (k * n + j) as u64);
                v += a[i * n + k] * b[k * n + j];
            }
            sampler.access(groups.c, base_c + (i * n + j) as u64);
            c[i * n + j] = v;
        }
    }
    (groups, c.iter().sum())
}

/// Blocked matrix multiplication (Listing 2) with block size `bs`. C must be
/// zero-initialized per the listing; every element access is fed to the
/// sampler. Returns the group handles and a checksum of C.
///
/// # Panics
/// Panics if `bs` is zero or does not divide `n` (keeps the trace shape
/// identical to the listing).
pub fn blocked_mmm(n: usize, bs: usize, sampler: &mut BurstSampler) -> (MmmGroups, f64) {
    assert!(bs > 0 && n.is_multiple_of(bs), "block size must divide n");
    let groups = MmmGroups {
        a: sampler.register_group("A (blocked mmm)"),
        b: sampler.register_group("B (blocked mmm)"),
        c: sampler.register_group("C (blocked mmm)"),
    };
    let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 * 0.25).collect();
    let b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 * 0.5).collect();
    let mut c = vec![0.0f64; n * n];
    let (base_a, base_b, base_c) = (0u64, (n * n) as u64, (2 * n * n) as u64);

    for i0 in (0..n).step_by(bs) {
        for j0 in (0..n).step_by(bs) {
            for k0 in (0..n).step_by(bs) {
                for i in i0..i0 + bs {
                    for j in j0..j0 + bs {
                        let mut v = c[i * n + j];
                        for k in k0..k0 + bs {
                            sampler.access(groups.a, base_a + (i * n + k) as u64);
                            sampler.access(groups.b, base_b + (k * n + j) as u64);
                            sampler.access(groups.c, base_c + (i * n + j) as u64);
                            v += a[i * n + k] * b[k * n + j];
                        }
                        c[i * n + j] = v;
                    }
                }
            }
        }
    }
    (groups, c.iter().sum())
}

/// Reference (uninstrumented) multiplication for correctness checks.
pub fn reference_mmm(n: usize) -> f64 {
    let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 * 0.25).collect();
    let b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 * 0.5).collect();
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            let mut v = 0.0;
            for k in 0..n {
                v += a[i * n + k] * b[k * n + j];
            }
            sum += v;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use exareq_locality::BurstSchedule;

    fn sampler() -> BurstSampler {
        BurstSampler::new(BurstSchedule::always())
    }

    #[test]
    fn both_kernels_compute_the_same_product() {
        let n = 16;
        let mut s1 = sampler();
        let (_, naive) = naive_mmm(n, &mut s1);
        let mut s2 = sampler();
        let (_, blocked) = blocked_mmm(n, 4, &mut s2);
        let reference = reference_mmm(n);
        assert!((naive - reference).abs() < 1e-9);
        assert!((blocked - reference).abs() < 1e-9);
    }

    #[test]
    fn naive_a_distance_theta_n() {
        // Paper: SD(A) ≈ RD(A) ≈ 2n.
        let run = |n: usize| {
            let mut s = sampler();
            let (g, _) = naive_mmm(n, &mut s);
            (
                s.groups()[g.a].median_stack().unwrap(),
                s.groups()[g.a].median_reuse().unwrap(),
            )
        };
        let (sd16, rd16) = run(16);
        let (sd32, rd32) = run(32);
        assert!((sd16 - 2.0 * 16.0).abs() <= 2.0, "sd16 {sd16}");
        assert!((sd32 / sd16 - 2.0).abs() < 0.1, "Θ(n): {sd32}/{sd16}");
        // Naive A: reuse ≈ stack (all intervening accesses distinct).
        assert_eq!(sd16, rd16);
        assert_eq!(sd32, rd32);
    }

    #[test]
    fn naive_b_stack_vs_reuse_differ() {
        // Paper: RD(B) = 2n²+n−1, SD(B) = n²+2n−1.
        let n = 24usize;
        let mut s = sampler();
        let (g, _) = naive_mmm(n, &mut s);
        let sd = s.groups()[g.b].median_stack().unwrap();
        let rd = s.groups()[g.b].median_reuse().unwrap();
        let nf = n as f64;
        assert!(
            (rd - (2.0 * nf * nf + nf - 1.0)).abs() <= 2.0 * nf,
            "rd {rd} vs {}",
            2.0 * nf * nf + nf - 1.0
        );
        assert!(
            (sd - (nf * nf + 2.0 * nf - 1.0)).abs() <= 2.0 * nf,
            "sd {sd} vs {}",
            nf * nf + 2.0 * nf - 1.0
        );
        assert!(rd > sd, "reuse must exceed stack for B");
    }

    #[test]
    fn blocked_distances_depend_on_block_not_matrix() {
        let run = |n: usize, bs: usize| {
            let mut s = sampler();
            let (g, _) = blocked_mmm(n, bs, &mut s);
            (
                s.groups()[g.a].median_stack().unwrap(),
                s.groups()[g.b].median_stack().unwrap(),
                s.groups()[g.c].median_stack().unwrap(),
            )
        };
        let b = 4;
        let (a16, b16, c16) = run(16, b);
        let (a32, b32, c32) = run(32, b);
        // Locality must not change with the matrix size.
        assert_eq!(a16, a32);
        assert_eq!(b16, b32);
        assert_eq!(c16, c32);
        // Paper's common-case values: SD(A)=2b+1, SD(B)≈2b²+b, SD(C)=2.
        // SD(B) in the exact trace is Θ(b²) with a slightly smaller
        // constant than the paper's back-of-the-envelope 2b²+b (their
        // estimate overcounts distinct A rows); assert the class.
        let bf = b as f64;
        assert!((a16 - (2.0 * bf + 1.0)).abs() <= 1.0, "SD(A) {a16}");
        assert!(
            b16 >= 1.5 * bf * bf && b16 <= 2.5 * bf * bf + bf,
            "SD(B) {b16} not Θ(b²) near 2b²+b = {}",
            2.0 * bf * bf + bf
        );
        assert_eq!(c16, 2.0, "SD(C)");
    }

    #[test]
    fn blocked_reuse_distances_match_paper() {
        let n = 16;
        let b = 4usize;
        let mut s = sampler();
        let (g, _) = blocked_mmm(n, b, &mut s);
        let bf = b as f64;
        let rd_a = s.groups()[g.a].median_reuse().unwrap();
        let rd_b = s.groups()[g.b].median_reuse().unwrap();
        let rd_c = s.groups()[g.c].median_reuse().unwrap();
        assert!(
            (rd_a - 3.0 * bf).abs() <= 1.0,
            "RD(A) {rd_a} vs {}",
            3.0 * bf
        );
        assert!(
            (rd_b - 3.0 * bf * bf).abs() <= bf,
            "RD(B) {rd_b} vs {}",
            3.0 * bf * bf
        );
        assert_eq!(rd_c, 2.0, "RD(C)");
    }

    #[test]
    fn naive_c_is_never_reused() {
        let mut s = sampler();
        let (g, _) = naive_mmm(12, &mut s);
        // Every C access is a first touch: no warm samples at all.
        assert!(s.groups()[g.c].stack.is_empty());
        assert_eq!(s.groups()[g.c].cold as usize, 12 * 12);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn blocked_requires_divisible_n() {
        let mut s = sampler();
        let _ = blocked_mmm(10, 3, &mut s);
    }
}
