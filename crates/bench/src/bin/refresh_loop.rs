//! Refresh-loop study: does the adaptive sampling planner actually buy
//! anything over the paper's fixed small-scale grid?
//!
//! A synthetic two-parameter requirement with a known PMNF truth is
//! measured under multiplicative counter noise, one configuration at a
//! time, under two acquisition strategies with identical budgets and
//! identical per-configuration noise draws:
//!
//! - **adaptive** — each step measures the configuration
//!   [`rank_candidates`] ranks highest (leverage × LOO residual
//!   variance), exactly what `exareq plan` prints;
//! - **fixed-grid** — each step measures the next configuration in
//!   row-major grid order, the paper's Section II-B shape.
//!
//! After every observation both fits are scored against the *noise-free*
//! truth at extrapolation targets far outside the candidate lattice —
//! the co-design question the models exist to answer. The curves
//! (error and LOO `ci95_rel` vs observation count, averaged over seeded
//! repetitions) land in `BENCH_refresh.json`; the process exits nonzero
//! if the adaptive curve does not dominate on average, so CI catches a
//! planner regression. `--tiny` shrinks repetitions for smoke use.

use exareq_bench::{num, obj, write_report};
use exareq_core::pmnf::{Exponents, Model, Term};
use exareq_core::refresh::{rank_candidates, IncrementalFit};
use exareq_profile::minijson::Json;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::BTreeMap;

/// The generating truth: `100 + 3·p·log2(p) + 0.5·n`.
fn truth(p: f64, n: f64) -> f64 {
    100.0 + 3.0 * p * p.log2() + 0.5 * n
}

/// The truth's own hypothesis, with placeholder coefficients for the
/// refit machinery to recover.
fn hypothesis() -> Model {
    Model::new(
        1.0,
        vec![
            Term::new(1.0, vec![Exponents::new(1.0, 1.0), Exponents::constant()]),
            Term::new(1.0, vec![Exponents::constant(), Exponents::new(1.0, 0.0)]),
        ],
        vec!["p".to_string(), "n".to_string()],
    )
}

/// Key for a lattice configuration (f64 grids are exact powers of two,
/// so bit-keys are stable).
fn key(coords: &[f64]) -> (u64, u64) {
    (coords[0].to_bits(), coords[1].to_bits())
}

/// Mean relative extrapolation error (percent) of `fit` against the
/// noise-free truth at the held-out targets.
fn extrapolation_error(fit: &IncrementalFit, targets: &[(f64, f64)]) -> f64 {
    let mut sum = 0.0;
    for &(p, n) in targets {
        let t = truth(p, n);
        sum += ((fit.model().eval(&[p, n]) - t) / t).abs();
    }
    100.0 * sum / targets.len() as f64
}

/// One strategy's run over one noise table: returns per-step
/// `(extrapolation error %, ci95_rel)` from the seed onward.
fn run_strategy(
    adaptive: bool,
    seeds: &[(Vec<f64>, f64)],
    lattice: &[Vec<f64>],
    noisy: &BTreeMap<(u64, u64), f64>,
    budget: usize,
    targets: &[(f64, f64)],
) -> Vec<(f64, f64)> {
    let mut fit = IncrementalFit::new(&hypothesis(), seeds).expect("seed fit");
    let seeded: Vec<(u64, u64)> = seeds.iter().map(|(c, _)| key(c)).collect();
    let mut remaining: Vec<Vec<f64>> = lattice
        .iter()
        .filter(|c| !seeded.contains(&key(c)))
        .cloned()
        .collect();
    let mut curve = Vec::with_capacity(budget + 1);
    let step = |fit: &IncrementalFit| {
        let ci = fit.loo().map(|l| l.ci95_rel).unwrap_or(f64::NAN);
        (extrapolation_error(fit, targets), ci)
    };
    curve.push(step(&fit));
    for _ in 0..budget {
        let pick = if adaptive {
            let ranked = rank_candidates(&fit, &remaining).expect("rankable candidates");
            ranked[0].coords.clone()
        } else {
            remaining[0].clone() // row-major: the lattice's own order
        };
        remaining.retain(|c| key(c) != key(&pick));
        let value = noisy[&key(&pick)];
        fit.push(&pick, value).expect("non-degenerate push");
        curve.push(step(&fit));
    }
    curve
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let (reps, budget) = if tiny { (3usize, 12usize) } else { (10, 28) };
    let noise_level = 0.02;

    // Candidate lattice: the survey space the planner chooses from.
    let p_values: Vec<f64> = (1..=10).map(|i| 2f64.powi(i)).collect();
    let n_values: Vec<f64> = (6..=15).map(|i| 2f64.powi(i)).collect();
    let lattice: Vec<Vec<f64>> = p_values
        .iter()
        .flat_map(|&p| n_values.iter().map(move |&n| vec![p, n]))
        .collect();
    // Extrapolation targets: the exascale-facing corner far outside it.
    let targets = [(2048.0, 65536.0), (4096.0, 131072.0), (8192.0, 262144.0)];

    // Per-curve-point accumulators, [step] -> (err, ci) sums.
    let mut adaptive_sum = vec![(0.0f64, 0.0f64); budget + 1];
    let mut fixed_sum = vec![(0.0f64, 0.0f64); budget + 1];
    for rep in 0..reps {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000 + rep as u64);
        // One noise draw per configuration, shared by both strategies so
        // the comparison isolates *which* configs get measured.
        let noisy: BTreeMap<(u64, u64), f64> = lattice
            .iter()
            .map(|c| {
                let factor = 1.0 + noise_level * (2.0 * rng.random::<f64>() - 1.0);
                (key(c), truth(c[0], c[1]) * factor)
            })
            .collect();
        // Seed: the cheapest corner of the lattice, both axes varied —
        // the small-scale runs the paper starts from.
        let seeds: Vec<(Vec<f64>, f64)> = [[2.0, 64.0], [2.0, 128.0], [4.0, 64.0], [4.0, 128.0]]
            .iter()
            .map(|c| (c.to_vec(), noisy[&key(c)]))
            .collect();
        for (accum, adaptive) in [(&mut adaptive_sum, true), (&mut fixed_sum, false)] {
            let curve = run_strategy(adaptive, &seeds, &lattice, &noisy, budget, &targets);
            for (slot, (err, ci)) in accum.iter_mut().zip(curve) {
                slot.0 += err;
                slot.1 += ci;
            }
        }
    }

    let seed_count = 4usize;
    let mut rows = Vec::with_capacity(budget + 1);
    let (mut adaptive_auc, mut fixed_auc) = (0.0f64, 0.0f64);
    eprintln!("refresh loop: {reps} reps, budget {budget}, noise ±{noise_level:.0e}");
    eprintln!(
        "  {:>4} {:>16} {:>16} {:>12} {:>12}",
        "obs", "adaptive err%", "fixed err%", "adapt ci95", "fixed ci95"
    );
    for (i, (a, f)) in adaptive_sum.iter().zip(&fixed_sum).enumerate() {
        let (a_err, a_ci) = (a.0 / reps as f64, a.1 / reps as f64);
        let (f_err, f_ci) = (f.0 / reps as f64, f.1 / reps as f64);
        adaptive_auc += a_err;
        fixed_auc += f_err;
        eprintln!(
            "  {:>4} {a_err:>16.4} {f_err:>16.4} {a_ci:>12.5} {f_ci:>12.5}",
            seed_count + i
        );
        rows.push(obj(vec![
            ("observations", num((seed_count + i) as f64)),
            ("adaptive_extrapolation_err_pct", num(a_err)),
            ("fixed_extrapolation_err_pct", num(f_err)),
            ("adaptive_ci95_rel", num(a_ci)),
            ("fixed_ci95_rel", num(f_ci)),
        ]));
    }
    let steps = (budget + 1) as f64;
    let (adaptive_mean, fixed_mean) = (adaptive_auc / steps, fixed_auc / steps);
    let adaptive_wins = adaptive_mean < fixed_mean;
    eprintln!(
        "  mean over curve: adaptive {adaptive_mean:.4}% vs fixed {fixed_mean:.4}% -> {}",
        if adaptive_wins {
            "adaptive wins"
        } else {
            "ADAPTIVE DOES NOT WIN"
        }
    );

    let report = obj(vec![
        ("schema", num(1.0)),
        ("reps", num(reps as f64)),
        ("budget", num(budget as f64)),
        ("noise_level", num(noise_level)),
        ("seed_points", num(seed_count as f64)),
        ("lattice_size", num(lattice.len() as f64)),
        ("adaptive_mean_err_pct", num(adaptive_mean)),
        ("fixed_mean_err_pct", num(fixed_mean)),
        ("adaptive_wins", Json::Bool(adaptive_wins)),
        ("curve", Json::Arr(rows)),
    ]);
    write_report("BENCH_refresh.json", &report.to_line());

    if !adaptive_wins {
        eprintln!("error: the adaptive planner did not beat fixed-grid sampling");
        std::process::exit(1);
    }
}
