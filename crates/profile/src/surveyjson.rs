//! Survey encode/decode over the in-tree [`minijson`](crate::minijson)
//! codec — no serde involved.
//!
//! `Survey` already derives serde traits for the batch CLI, but a consumer
//! that must *also* run where serde_json is unavailable (the `exareq serve`
//! model registry in this offline-first reproduction) needs a parser for
//! the same JSON shape built on the hardened in-tree codec. This module is
//! that parser plus the matching writer; the field names and the variant
//! spelling of [`MetricKind`] are identical to the serde output, so a file
//! written by either side loads through the other.
//!
//! Version policy matches [`Survey::from_json`] and the journal: versions
//! `<= SURVEY_SCHEMA_VERSION` are accepted with older fields defaulting,
//! newer versions are rejected loudly instead of mis-parsed.

use crate::minijson::{self, Json, JsonError};
use crate::survey::{MetricKind, Observation, SkippedConfig, Survey, SURVEY_SCHEMA_VERSION};

/// Why a survey could not be decoded from minijson text.
#[derive(Debug)]
pub enum SurveyJsonError {
    /// The text is not valid JSON at all.
    Json(JsonError),
    /// The JSON is valid but does not have the survey shape; the string
    /// names the offending field.
    Shape(String),
    /// The survey was written by a newer exareq whose schema this build
    /// does not understand.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
}

impl core::fmt::Display for SurveyJsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SurveyJsonError::Json(e) => write!(f, "{e}"),
            SurveyJsonError::Shape(what) => write!(f, "not a survey: {what}"),
            SurveyJsonError::UnsupportedVersion { found, supported } => write!(
                f,
                "survey schema version {found} is newer than the newest supported \
                 version {supported}; upgrade exareq to read this file"
            ),
        }
    }
}

impl std::error::Error for SurveyJsonError {}

/// Encodes a survey as a minijson value with the same member names the
/// serde derive writes.
pub fn survey_to_json(s: &Survey) -> Json {
    let observations = s
        .observations
        .iter()
        .map(|o| {
            Json::Obj(vec![
                ("p".into(), Json::Num(o.p as f64)),
                ("n".into(), Json::Num(o.n as f64)),
                ("metric".into(), Json::Str(o.metric.name().into())),
                (
                    "channel".into(),
                    match &o.channel {
                        Some(c) => Json::Str(c.clone()),
                        None => Json::Null,
                    },
                ),
                ("value".into(), Json::Num(o.value)),
                ("degraded".into(), Json::Bool(o.degraded)),
            ])
        })
        .collect();
    let skipped = s
        .skipped
        .iter()
        .map(|k| {
            Json::Obj(vec![
                ("p".into(), Json::Num(k.p as f64)),
                ("n".into(), Json::Num(k.n as f64)),
                ("reason".into(), Json::Str(k.reason.clone())),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "schema_version".into(),
            Json::Num(f64::from(s.schema_version)),
        ),
        ("app".into(), Json::Str(s.app.clone())),
        ("observations".into(), Json::Arr(observations)),
        ("skipped".into(), Json::Arr(skipped)),
        ("incomplete".into(), Json::Bool(s.incomplete)),
    ])
}

/// Encodes a survey as a single JSON line.
pub fn survey_to_string(s: &Survey) -> String {
    survey_to_json(s).to_line()
}

fn get_u64(v: &Json, key: &str) -> Option<u64> {
    let x = v.get(key)?.to_f64_lossless()?;
    // Exact integers only: (p, n) are run configurations, not estimates.
    if x.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&x) {
        Some(x as u64)
    } else {
        None
    }
}

fn shape(what: impl Into<String>) -> SurveyJsonError {
    SurveyJsonError::Shape(what.into())
}

fn observation_from_json(v: &Json, i: usize) -> Result<Observation, SurveyJsonError> {
    let metric = v
        .get("metric")
        .and_then(Json::as_str)
        .and_then(MetricKind::from_name)
        .ok_or_else(|| shape(format!("observations[{i}].metric")))?;
    let channel = match v.get("channel") {
        None | Some(Json::Null) => None,
        Some(Json::Str(c)) => Some(c.clone()),
        Some(_) => return Err(shape(format!("observations[{i}].channel"))),
    };
    Ok(Observation {
        p: get_u64(v, "p").ok_or_else(|| shape(format!("observations[{i}].p")))?,
        n: get_u64(v, "n").ok_or_else(|| shape(format!("observations[{i}].n")))?,
        metric,
        channel,
        value: v
            .get("value")
            .and_then(Json::to_f64_lossless)
            .ok_or_else(|| shape(format!("observations[{i}].value")))?,
        degraded: v.get("degraded").and_then(Json::as_bool).unwrap_or(false),
    })
}

fn skipped_from_json(v: &Json, i: usize) -> Result<SkippedConfig, SurveyJsonError> {
    Ok(SkippedConfig {
        p: get_u64(v, "p").ok_or_else(|| shape(format!("skipped[{i}].p")))?,
        n: get_u64(v, "n").ok_or_else(|| shape(format!("skipped[{i}].n")))?,
        reason: v
            .get("reason")
            .and_then(Json::as_str)
            .ok_or_else(|| shape(format!("skipped[{i}].reason")))?
            .to_string(),
    })
}

/// Decodes a survey from a minijson value.
///
/// # Errors
/// [`SurveyJsonError::Shape`] when a required field is missing or
/// mistyped; [`SurveyJsonError::UnsupportedVersion`] when the file claims a
/// schema newer than [`SURVEY_SCHEMA_VERSION`].
pub fn survey_from_json(v: &Json) -> Result<Survey, SurveyJsonError> {
    let version = v
        .get("schema_version")
        .map(|j| {
            get_u64(v, "schema_version")
                .and_then(|x| u32::try_from(x).ok())
                .ok_or_else(|| shape(format!("schema_version {j:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if version > SURVEY_SCHEMA_VERSION {
        return Err(SurveyJsonError::UnsupportedVersion {
            found: version,
            supported: SURVEY_SCHEMA_VERSION,
        });
    }
    let app = v
        .get("app")
        .and_then(Json::as_str)
        .ok_or_else(|| shape("app"))?
        .to_string();
    let observations = v
        .get("observations")
        .and_then(Json::as_arr)
        .ok_or_else(|| shape("observations"))?
        .iter()
        .enumerate()
        .map(|(i, o)| observation_from_json(o, i))
        .collect::<Result<Vec<_>, _>>()?;
    let skipped = match v.get("skipped") {
        None | Some(Json::Null) => Vec::new(),
        Some(j) => j
            .as_arr()
            .ok_or_else(|| shape("skipped"))?
            .iter()
            .enumerate()
            .map(|(i, k)| skipped_from_json(k, i))
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(Survey {
        schema_version: version,
        app,
        observations,
        skipped,
        incomplete: v.get("incomplete").and_then(Json::as_bool).unwrap_or(false),
    })
}

/// Decodes a survey from JSON text via the in-tree codec.
///
/// # Errors
/// [`SurveyJsonError::Json`] on malformed text, plus everything
/// [`survey_from_json`] reports.
pub fn survey_from_str(text: &str) -> Result<Survey, SurveyJsonError> {
    let v = minijson::parse(text).map_err(SurveyJsonError::Json)?;
    survey_from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Survey {
        let mut s = Survey::new("Relearn");
        s.push(2, 64, MetricKind::Flops, 1.5e9);
        s.push_degraded(4, 64, MetricKind::BytesUsed, 2.0e6);
        s.push_channel(4, 256, MetricKind::CommBytes, "Allreduce", 3.25e4);
        s.note_skipped(8, 64, "all ranks crashed");
        s
    }

    #[test]
    fn round_trips_through_minijson() {
        let s = sample();
        let text = survey_to_string(&s);
        let back = survey_from_str(&text).expect("round trip");
        assert_eq!(back, s);
    }

    #[test]
    fn missing_optional_fields_default() {
        let text = r#"{"app":"X","observations":[{"p":2,"n":64,"metric":"Flops","value":1.0}]}"#;
        let s = survey_from_str(text).expect("legacy shape");
        assert_eq!(s.schema_version, 0);
        assert!(!s.incomplete);
        assert!(s.skipped.is_empty());
        assert_eq!(s.observations[0].channel, None);
        assert!(!s.observations[0].degraded);
    }

    #[test]
    fn rejects_newer_schema_version() {
        let text = r#"{"schema_version":99,"app":"X","observations":[]}"#;
        match survey_from_str(text) {
            Err(SurveyJsonError::UnsupportedVersion { found, supported }) => {
                assert_eq!((found, supported), (99, SURVEY_SCHEMA_VERSION));
            }
            other => panic!("expected version rejection, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_shapes_with_field_names() {
        for (text, field) in [
            (r#"{"observations":[]}"#, "app"),
            (r#"{"app":"X"}"#, "observations"),
            (
                r#"{"app":"X","observations":[{"p":2.5,"n":64,"metric":"Flops","value":1}]}"#,
                "observations[0].p",
            ),
            (
                r#"{"app":"X","observations":[{"p":2,"n":64,"metric":"Warp","value":1}]}"#,
                "observations[0].metric",
            ),
        ] {
            match survey_from_str(text) {
                Err(SurveyJsonError::Shape(what)) => assert_eq!(what, field, "{text}"),
                other => panic!("{text}: expected shape error, got {other:?}"),
            }
        }
    }

    #[test]
    fn not_json_is_a_json_error() {
        assert!(matches!(
            survey_from_str("{ nope"),
            Err(SurveyJsonError::Json(_))
        ));
    }
}
