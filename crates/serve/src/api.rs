//! Query parsing and response building for every endpoint — pure
//! functions, no sockets.
//!
//! Responses are rendered with the in-tree minijson writer, the same one
//! the direct library consumers use, so a daemon answer is **byte-identical**
//! to calling these functions in-process: `tests/serve.rs` and the
//! `serve_throughput` bench assert exactly that. Keep every response built
//! here; a handler that formats its own JSON breaks the mechanical
//! equivalence check.

use crate::registry::RegistrySnapshot;
use exareq_codesign::query::{upgrade_advice, UpgradeAdvice};
use exareq_codesign::{
    analyze_strawmen, share_system, table_six, AppRequirements, RateMetric, StrawManAnalysis,
    SystemSkeleton,
};
use exareq_profile::minijson::{self, Json};

/// Upper bound for the `hold_ms` load-testing aid, milliseconds.
pub const MAX_HOLD_MS: u64 = 10_000;

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn opt_num(v: Option<f64>) -> Json {
    match v {
        Some(x) => Json::Num(x),
        None => Json::Null,
    }
}

/// `{"error": reason}` — the body of every non-200 answer.
pub fn error_body(reason: &str) -> String {
    obj(vec![("error", Json::Str(reason.to_string()))]).to_line()
}

/// The `/healthz` body.
pub fn health_body() -> String {
    obj(vec![("status", Json::Str("ok".to_string()))]).to_line()
}

/// A parsed `POST /predict` body.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictQuery {
    /// Model (application) name to evaluate.
    pub model: String,
    /// Target process count.
    pub p: f64,
    /// Target problem size per process.
    pub n: f64,
    /// Optional load-testing aid: hold the worker for this many
    /// milliseconds before answering (capped at [`MAX_HOLD_MS`], still
    /// subject to the request deadline).
    pub hold_ms: u64,
}

fn parse_body(body: &str) -> Result<Json, String> {
    minijson::parse(body).map_err(|e| format!("body is not valid JSON: {e}"))
}

fn required_model(v: &Json) -> Result<String, String> {
    v.get("model")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "missing string field \"model\"".to_string())
}

fn coordinate(v: &Json, key: &str) -> Result<f64, String> {
    let x = v
        .get(key)
        .and_then(Json::to_f64_lossless)
        .ok_or_else(|| format!("missing numeric field \"{key}\""))?;
    if !x.is_finite() || x < 1.0 {
        return Err(format!("\"{key}\" must be a finite number >= 1"));
    }
    Ok(x)
}

/// Parses a `POST /predict` body.
///
/// # Errors
/// A one-line reason suitable for a 400 body.
pub fn parse_predict(body: &str) -> Result<PredictQuery, String> {
    let v = parse_body(body)?;
    let hold_ms = match v.get("hold_ms") {
        None | Some(Json::Null) => 0,
        Some(j) => {
            let x = j
                .to_f64_lossless()
                .filter(|x| x.fract() == 0.0 && (0.0..=MAX_HOLD_MS as f64).contains(x))
                .ok_or_else(|| format!("\"hold_ms\" must be an integer in 0..={MAX_HOLD_MS}"))?;
            x as u64
        }
    };
    Ok(PredictQuery {
        model: required_model(&v)?,
        p: coordinate(&v, "p")?,
        n: coordinate(&v, "n")?,
        hold_ms,
    })
}

/// The `/predict` answer: every requirement model evaluated at `(p, n)`.
pub fn predict_body(app: &AppRequirements, p: f64, n: f64) -> String {
    let coords = [p, n];
    let eval = |m: &exareq_core::pmnf::Model| Json::Num(m.eval(&coords));
    obj(vec![
        ("app", Json::Str(app.name.clone())),
        ("p", Json::Num(p)),
        ("n", Json::Num(n)),
        (
            "requirements",
            obj(vec![
                ("bytes_used", eval(&app.bytes_used)),
                ("flops", eval(&app.flops)),
                ("comm_bytes", eval(&app.comm_bytes)),
                ("loads_stores", eval(&app.loads_stores)),
                ("stack_distance", eval(&app.stack_distance)),
            ]),
        ),
    ])
    .to_line()
}

/// A parsed `POST /upgrade` body.
#[derive(Debug, Clone, PartialEq)]
pub struct UpgradeQuery {
    /// Model (application) name to advise.
    pub model: String,
    /// Optional co-tenant model name for a sharing analysis.
    pub share_with: Option<String>,
    /// Fraction of the system given to `model` when sharing (0, 1).
    pub fraction: f64,
}

/// Parses a `POST /upgrade` body.
///
/// # Errors
/// A one-line reason suitable for a 400 body.
pub fn parse_upgrade(body: &str) -> Result<UpgradeQuery, String> {
    let v = parse_body(body)?;
    let share_with = match v.get("share_with") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(_) => return Err("\"share_with\" must be a string".to_string()),
    };
    let fraction = match v.get("fraction") {
        None | Some(Json::Null) => 0.5,
        Some(j) => j
            .to_f64_lossless()
            .filter(|f| f.is_finite() && *f > 0.0 && *f < 1.0)
            .ok_or_else(|| "\"fraction\" must be a number in (0, 1)".to_string())?,
    };
    if fraction != 0.5 && share_with.is_none() {
        return Err("\"fraction\" requires \"share_with\"".to_string());
    }
    Ok(UpgradeQuery {
        model: required_model(&v)?,
        share_with,
        fraction,
    })
}

fn rates_obj(rates: &[f64; 3]) -> Json {
    obj(vec![
        ("computation", Json::Num(rates[0])),
        ("communication", Json::Num(rates[1])),
        ("memory_access", Json::Num(rates[2])),
    ])
}

fn advice_json(advice: &UpgradeAdvice) -> Vec<(&'static str, Json)> {
    vec![
        (
            "upgrades",
            Json::Arr(
                advice
                    .rows
                    .iter()
                    .map(|r| {
                        obj(vec![
                            ("name", Json::Str(r.outcome.upgrade_name.clone())),
                            ("description", Json::Str(r.description.clone())),
                            ("ratio_n", Json::Num(r.outcome.ratio_n)),
                            ("ratio_overall", Json::Num(r.outcome.ratio_overall)),
                            ("rates", rates_obj(&r.outcome.ratio_rates)),
                            ("score", Json::Num(r.score)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "excluded",
            Json::Arr(
                advice
                    .excluded
                    .iter()
                    .map(|(name, reason)| {
                        obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("reason", Json::Str(reason.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "best",
            match &advice.best {
                Some(b) => Json::Str(b.clone()),
                None => Json::Null,
            },
        ),
        ("comm_crossover_p", opt_num(advice.comm_crossover_p)),
    ]
}

/// The `/upgrade` answer: ranked Table V outcomes on the reference system,
/// plus an optional sharing analysis with a co-tenant.
///
/// # Errors
/// A one-line reason (suitable for a 400 body) when the sharing analysis
/// itself fails — e.g. neither app fits the shared system.
pub fn upgrade_body(
    app: &AppRequirements,
    share: Option<(&AppRequirements, f64)>,
) -> Result<String, String> {
    let base = SystemSkeleton::reference_large();
    let advice = upgrade_advice(app, &base);
    let mut members = vec![
        ("app", Json::Str(app.name.clone())),
        (
            "base",
            obj(vec![
                ("processes", Json::Num(base.processes)),
                ("mem_per_process", Json::Num(base.mem_per_process)),
            ]),
        ),
    ];
    members.extend(advice_json(&advice));
    let sharing = match share {
        None => Json::Null,
        Some((other, fraction)) => {
            let outcomes = share_system(&[app, other], &[fraction, 1.0 - fraction], &base)
                .map_err(|e| e.to_string())?;
            Json::Arr(
                outcomes
                    .iter()
                    .map(|o| {
                        obj(vec![
                            ("app", Json::Str(o.app.clone())),
                            ("fraction", Json::Num(o.fraction)),
                            ("processes", Json::Num(o.processes)),
                            ("n", Json::Num(o.n)),
                            ("overall_problem", Json::Num(o.overall_problem)),
                            ("rates", rates_obj(&o.rates)),
                        ])
                    })
                    .collect(),
            )
        }
    };
    members.push(("sharing", sharing));
    Ok(obj(members).to_line())
}

/// Parses a `POST /strawman` body.
///
/// # Errors
/// A one-line reason suitable for a 400 body.
pub fn parse_strawman(body: &str) -> Result<String, String> {
    required_model(&parse_body(body)?)
}

/// The `/strawman` answer: the Table VII verdict over [`table_six`].
pub fn strawman_body(app: &AppRequirements) -> String {
    match analyze_strawmen(app, &table_six()) {
        StrawManAnalysis::Fits {
            app,
            benchmark_overall,
            outcomes,
        } => obj(vec![
            ("app", Json::Str(app)),
            ("verdict", Json::Str("fits".to_string())),
            ("benchmark_overall", Json::Num(benchmark_overall)),
            (
                "systems",
                Json::Arr(
                    outcomes
                        .iter()
                        .map(|o| {
                            obj(vec![
                                ("system", Json::Str(o.system.clone())),
                                ("max_n", Json::Num(o.max_n)),
                                ("max_overall", Json::Num(o.max_overall)),
                                ("min_wall_time", Json::Num(o.min_wall_time)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        StrawManAnalysis::Excluded { app, cannot_use } => obj(vec![
            ("app", Json::Str(app)),
            ("verdict", Json::Str("excluded".to_string())),
            (
                "cannot_use",
                Json::Arr(cannot_use.into_iter().map(Json::Str).collect()),
            ),
        ]),
    }
    .to_line()
}

/// The `/models` answer: the registry snapshot.
pub fn models_body(snap: &RegistrySnapshot) -> String {
    obj(vec![
        ("generation", Json::Num(snap.generation as f64)),
        (
            "models",
            Json::Arr(
                snap.models
                    .iter()
                    .map(|m| {
                        obj(vec![
                            ("name", Json::Str(m.name.clone())),
                            ("source", Json::Str(m.source.clone())),
                            ("kind", Json::Str(m.kind.label().to_string())),
                            ("hash", Json::Str(format!("{:#018x}", m.hash))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "errors",
            Json::Arr(
                snap.errors
                    .iter()
                    .map(|(file, reason)| {
                        obj(vec![
                            ("file", Json::Str(file.clone())),
                            ("reason", Json::Str(reason.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_line()
}

/// Keep `RateMetric::ALL` and [`rates_obj`] in the same order — this
/// compile-time shim trips if the metric set ever changes shape.
const _: () = assert!(RateMetric::ALL.len() == 3);

#[cfg(test)]
mod tests {
    use super::*;
    use exareq_codesign::catalog;

    #[test]
    fn predict_parses_and_evaluates_like_the_library() {
        let q = parse_predict(r#"{"model":"Kripke","p":1e6,"n":4096}"#).expect("valid");
        assert_eq!(q.model, "Kripke");
        assert_eq!((q.p, q.n, q.hold_ms), (1e6, 4096.0, 0));

        let app = catalog::kripke();
        let body = predict_body(&app, q.p, q.n);
        let v = minijson::parse(&body).expect("self-produced JSON parses");
        let flops = v
            .get("requirements")
            .and_then(|r| r.get("flops"))
            .and_then(Json::to_f64_lossless)
            .expect("flops present");
        assert_eq!(flops, app.flops.eval(&[q.p, q.n]));
    }

    #[test]
    fn predict_rejects_bad_bodies_with_one_line_reasons() {
        for (body, needle) in [
            ("{ nope", "not valid JSON"),
            (r#"{"p":2,"n":3}"#, "\"model\""),
            (r#"{"model":"X","p":0,"n":3}"#, "\"p\""),
            (r#"{"model":"X","p":2,"n":"big"}"#, "\"n\""),
            (r#"{"model":"X","p":2,"n":3,"hold_ms":-1}"#, "hold_ms"),
            (r#"{"model":"X","p":2,"n":3,"hold_ms":999999}"#, "hold_ms"),
        ] {
            let err = parse_predict(body).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn upgrade_body_ranks_and_shares() {
        let milc = catalog::milc();
        let kripke = catalog::kripke();
        let alone = upgrade_body(&milc, None).expect("advice");
        let v = minijson::parse(&alone).unwrap();
        assert_eq!(v.get("best").and_then(Json::as_str), Some("C"));
        assert!(matches!(v.get("sharing"), Some(Json::Null)));

        let shared = upgrade_body(&milc, Some((&kripke, 0.25))).expect("sharing");
        let v = minijson::parse(&shared).unwrap();
        let outcomes = v.get("sharing").and_then(Json::as_arr).expect("array");
        assert_eq!(outcomes.len(), 2);
        assert_eq!(
            outcomes[0].get("fraction").and_then(Json::to_f64_lossless),
            Some(0.25)
        );
    }

    #[test]
    fn strawman_body_reports_fits_and_exclusions() {
        let fits = strawman_body(&catalog::kripke());
        let v = minijson::parse(&fits).unwrap();
        assert_eq!(v.get("verdict").and_then(Json::as_str), Some("fits"));
        assert_eq!(
            v.get("systems").and_then(Json::as_arr).map(<[Json]>::len),
            Some(table_six().len())
        );

        let excluded = strawman_body(&catalog::icofoam());
        let v = minijson::parse(&excluded).unwrap();
        assert_eq!(v.get("verdict").and_then(Json::as_str), Some("excluded"));
    }

    #[test]
    fn upgrade_parse_validates_sharing_fields() {
        let q = parse_upgrade(r#"{"model":"MILC","share_with":"Kripke","fraction":0.3}"#)
            .expect("valid");
        assert_eq!(q.share_with.as_deref(), Some("Kripke"));
        assert_eq!(q.fraction, 0.3);
        assert!(parse_upgrade(r#"{"model":"M","fraction":0.3}"#).is_err());
        assert!(parse_upgrade(r#"{"model":"M","share_with":"K","fraction":1.5}"#).is_err());
    }
}
