//! End-to-end tests of the `exareq` command-line interface.

use std::process::Command;

fn exareq(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_exareq"))
        .args(args)
        .output()
        .expect("spawn exareq");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (ok, _, err) = exareq(&[]);
    assert!(!ok);
    assert!(err.contains("USAGE"));
}

#[test]
fn help_prints_usage_and_succeeds() {
    let (ok, out, _) = exareq(&["help"]);
    assert!(ok);
    assert!(out.contains("survey"));
    assert!(out.contains("strawman"));
}

#[test]
fn unknown_command_fails() {
    let (ok, _, err) = exareq(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));
}

#[test]
fn apps_lists_all_five() {
    let (ok, out, _) = exareq(&["apps"]);
    assert!(ok);
    for name in ["Kripke", "LULESH", "MILC", "Relearn", "icoFoam"] {
        assert!(out.contains(name), "{out}");
    }
}

#[test]
fn survey_then_model_roundtrip() {
    let dir = std::env::temp_dir().join("exareq_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("relearn.json");
    let path_s = path.to_str().unwrap();

    let (ok, out, err) = exareq(&[
        "survey",
        "relearn",
        "--p",
        "2,4,8,16,32",
        "--n",
        "64,256,1024,4096,16384",
        "-o",
        path_s,
    ]);
    assert!(ok, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("25 configurations"), "{out}");

    let (ok, out, err) = exareq(&["model", path_s]);
    assert!(ok, "stdout: {out}\nstderr: {err}");
    assert!(out.contains("== Relearn =="), "{out}");
    assert!(out.contains("n^0.5"), "footprint model missing: {out}");
    assert!(out.contains("Allreduce(p)"), "{out}");
    assert!(out.contains("in words:"), "{out}");
}

#[test]
fn survey_rejects_unknown_app() {
    let (ok, _, err) = exareq(&["survey", "nosuchapp"]);
    assert!(!ok);
    assert!(err.contains("unknown application"));
}

#[test]
fn model_rejects_missing_file() {
    let (ok, _, err) = exareq(&["model", "/nonexistent/path.json"]);
    assert!(!ok);
    // The typed I/O error names the operation and the offending path.
    assert!(err.contains("read"), "{err}");
    assert!(err.contains("/nonexistent/path.json"), "{err}");
}

#[test]
fn report_generates_full_dossier() {
    let dir = std::env::temp_dir().join("exareq_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let survey = dir.join("kripke_report_in.json");
    let report = dir.join("kripke_report.md");
    let (ok, _, err) = exareq(&[
        "survey",
        "kripke",
        "--p",
        "2,4,8,16,32",
        "--n",
        "64,256,1024,4096,16384",
        "-o",
        survey.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    let (ok, _, err) = exareq(&[
        "report",
        survey.to_str().unwrap(),
        "-o",
        report.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    let md = std::fs::read_to_string(&report).unwrap();
    for section in [
        "# Co-design dossier: Kripke",
        "## Requirement models",
        "## Scaling hazards",
        "## Fit check",
        "## Scaling outlook",
        "## Upgrade response",
        "## Exascale straw-man verdict",
    ] {
        assert!(md.contains(section), "missing {section}");
    }
    assert!(md.contains("multiplicative p×n effect"), "{md}");
}

#[test]
fn fit_command_on_csv() {
    let dir = std::env::temp_dir().join("exareq_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("lin.csv");
    std::fs::write(&csv, "p,value\n2,14\n4,28\n8,56\n16,112\n32,224\n").unwrap();
    let (ok, out, err) = exareq(&["fit", csv.to_str().unwrap()]);
    assert!(ok, "{err}");
    assert!(out.contains("7·p"), "{out}");
    assert!(out.contains("grows linearly"), "{out}");
}

#[test]
fn upgrades_with_paper_catalog() {
    let (ok, out, _) = exareq(&["upgrades"]);
    assert!(ok);
    assert!(out.contains("Double the racks"), "{out}");
    assert!(out.contains("Kripke"), "{out}");
    assert!(out.contains("Baseline"), "{out}");
}

#[test]
fn strawman_with_network() {
    let (ok, out, _) = exareq(&["strawman", "--network"]);
    assert!(ok);
    assert!(out.contains("Massively parallel"), "{out}");
    assert!(out.contains("network-aware"), "{out}");
    assert!(out.contains("excluded"), "icoFoam exclusion missing: {out}");
}
