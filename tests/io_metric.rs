//! The I/O extension end to end: a user application with checkpoint I/O
//! goes through survey and modeling, and its I/O requirement model is
//! generated "analogously to the network communication requirement"
//! (Section II-A).

use exareq::apps::shapes::{log2f, ops, Arena};
use exareq::apps::{measure, survey_app, AppGrid, MiniApp};
use exareq::core::multiparam::MultiParamConfig;
use exareq::core::pmnf::Exponents;
use exareq::locality::BurstSampler;
use exareq::pipeline::model_requirements;
use exareq::profile::{MetricKind, ProcessProfile};
use exareq::sim::Rank;

/// A checkpointing stencil: every rank writes its n-sized state plus a
/// log-growing index, and reads a fixed input deck.
struct CheckpointingApp;

impl MiniApp for CheckpointingApp {
    fn name(&self) -> &'static str {
        "Checkpointer"
    }

    fn run_rank(&self, rank: &mut Rank, n: u64, prof: &mut ProcessProfile) {
        let mut field = Arena::new(n as usize);
        prof.footprint.alloc(field.bytes());
        field.compute(ops(4.0 * n as f64), prof.callpath.counters());
        field.stream(ops(2.0 * n as f64), prof.callpath.counters());

        // I/O: fixed input deck read + per-rank checkpoint write.
        prof.io.read("input-deck", 65_536);
        prof.io.write("checkpoint", 8 * n + 128 * log2f(n) as u64);

        // Token exchange so communication is non-trivial.
        if rank.size() > 1 {
            let next = (rank.rank() + 1) % rank.size();
            let prev = (rank.rank() + rank.size() - 1) % rank.size();
            rank.send(next, 0, &[0u8; 64]);
            let _ = rank.recv(prev, 0);
        }
    }

    fn run_locality(&self, _n: u64, sampler: &mut BurstSampler) {
        let g = sampler.register_group("stencil window");
        for _ in 0..4 {
            for i in 0..48u64 {
                sampler.access(g, i);
            }
        }
    }
}

#[test]
fn io_is_measured_per_process() {
    let m = measure(&CheckpointingApp, 4, 1024);
    // 64 KiB read + (8·1024 + 128·10) written per process.
    assert_eq!(m.io_bytes, 65_536.0 + 8.0 * 1024.0 + 1280.0);
}

#[test]
fn io_model_is_generated_analogously() {
    let grid = AppGrid {
        p_values: vec![2, 4, 8, 16, 32],
        n_values: vec![64, 256, 1024, 4096, 16384],
    };
    let survey = survey_app(&CheckpointingApp, &grid);
    assert!(!survey.triples(MetricKind::IoBytes).is_empty());

    let modeled = model_requirements(&survey, &MultiParamConfig::default()).unwrap();
    let (_, io) = modeled
        .fitted
        .iter()
        .find(|(l, _)| l == "#Bytes read & written")
        .expect("I/O model fitted");
    // Dominated by the linear checkpoint state; independent of p.
    assert_eq!(
        io.model.dominant_exponents(1),
        Exponents::new(1.0, 0.0),
        "{}",
        io.model
    );
    assert!(!io.model.depends_on(0), "{}", io.model);
    // Extrapolation at exascale: the write volume stays per-process linear.
    let at_exa = io.model.eval(&[2e9, 1e6]);
    assert!((at_exa - (65_536.0 + 8e6 + 128.0 * 1e6_f64.log2())).abs() / at_exa < 0.05);
}

#[test]
fn study_twins_have_no_io() {
    // Matching the paper: "none of our analyzed applications includes
    // significant I/O traffic".
    for app in exareq::apps::all_apps() {
        let m = measure(app.as_ref(), 4, 256);
        assert_eq!(m.io_bytes, 0.0, "{}", app.name());
    }
}
