//! # exareq-sim — deterministic message-passing simulator
//!
//! The measurement substrate of the reproduction. The paper ran its five
//! applications on JUQUEEN and Lichtenberg under an MPI library; we run
//! *behavioural twins* on this simulator instead. Because the paper's
//! requirement metrics (Table I) are hardware-independent by construction —
//! bytes injected, FLOPs executed, loads/stores retired — a functional
//! simulator that executes the same data flow produces the same counter
//! values a physical cluster would.
//!
//! Each simulated rank runs on its own OS thread and communicates through
//! unbounded channels. Collectives are implemented with real algorithms
//! (binomial-tree broadcast, recursive-doubling all-reduce, ring all-gather,
//! pairwise all-to-all) so byte counts carry the true structural
//! `p`-dependence that the model generator later rediscovers as `log p`,
//! `p − 1`, …
//!
//! Because exascale co-design is about machines where component failure is
//! the steady state, the substrate is fault-aware: a deterministic,
//! seed-driven [`FaultPlan`] injects rank crashes and message
//! drop/duplicate/delay/corruption at the send/receive chokepoints, a
//! supervised runner ([`run_ranks_with_faults`], [`run_ranks_supervised`])
//! reports per-rank completion status instead of hanging on failures, and
//! a watchdog turns genuine deadlocks into a structured
//! [`SimError::Deadlock`] naming the blocked ranks. Runs are also
//! *preemptible*: arm a [`SimConfig::cancel`] token
//! (`exareq_core::cancel::CancelToken`) and every rank winds down
//! cooperatively at its next communication chokepoint — blocked ranks are
//! woken by the supervisor — yielding [`SimError::Cancelled`] instead of
//! an abandoned run.
//!
//! ```
//! use exareq_sim::{run_ranks, total_stats};
//!
//! let results = run_ranks(8, |rank| {
//!     let mut local = vec![rank.rank() as f64];
//!     rank.allreduce_sum(&mut local);
//!     local[0]
//! });
//! assert!(results.iter().all(|r| r.value == 28.0)); // Σ 0..8
//! let stats = total_stats(&results);
//! assert!(stats.total_sent() > 0);
//! ```

#![warn(missing_docs)]

mod collectives;
mod extended;
pub mod fault;
mod rank;
mod runner;
pub mod stats;
pub mod topology;

pub use extended::{Group, RecvFuture};
pub use fault::{derive_attempt_seed, CrashPoint, FaultPlan, FaultStats};
pub use rank::{CommError, PeerReason, Rank};
pub use runner::{
    max_over_ranks, run_ranks, run_ranks_supervised, run_ranks_with_faults, total_stats,
    BlockedRank, PendingMsg, RankReport, RankResult, RankStatus, SimConfig, SimError, SimOutcome,
    StallInfo, DEFAULT_WATCHDOG,
};
pub use stats::{ClassBytes, CommStats, OpClass};
pub use topology::{dims_create, CartGrid};
