//! Consistent hashing of model keys over a replica set.
//!
//! Each replica contributes [`VNODES`] virtual points on a 64-bit ring;
//! a key routes to the replica owning the first point at or after the
//! key's hash. The properties the router (and
//! `tests/router_properties.rs`) depend on:
//!
//! - **Determinism.** The ring is a pure function of the replica address
//!   list, so every router instance over the same `--replicas` makes the
//!   same primary choice for a key — and so can a test that wants to
//!   know which replica to kill.
//! - **Balance.** With 128 virtual points per replica the largest
//!   primary share stays within 2× of uniform (property-tested across
//!   3–16 replicas).
//! - **Minimal disruption.** Removing a replica removes only its points:
//!   keys whose primary survives keep it, so a replica death remaps only
//!   the dead replica's keys.
//!
//! The ring itself is orderings only; *bounded load* — diverting a key
//! whose primary is already saturated to the next candidate — is applied
//! by the proxy at selection time, where live in-flight counts exist.

/// Virtual points per replica. 128 keeps the largest primary share well
/// inside the 2×-of-uniform bound the property tests assert.
pub const VNODES: usize = 128;

/// FNV-1a 64-bit — the same dependency-free hash the model registry uses
/// for content keys; plenty for placement (this is not cryptographic).
/// Always finalized through [`mix`] before use as a ring position: raw
/// FNV of strings sharing a prefix differs only in the low ~44 bits, so
/// sibling keys would otherwise fall into a single inter-point gap and
/// share a primary.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A finalizing mix (splitmix64's) so consecutive vnode indices of one
/// replica land far apart on the ring instead of clustering.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The hash ring: replica addresses plus their sorted virtual points.
#[derive(Debug, Clone)]
pub struct HashRing {
    replicas: Vec<String>,
    /// `(point hash, replica index)`, sorted by hash.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds the ring over the given replica addresses (order defines
    /// the stable replica indices used by health tables and metrics).
    pub fn new(replicas: &[String]) -> Self {
        let mut points = Vec::with_capacity(replicas.len() * VNODES);
        for (idx, addr) in replicas.iter().enumerate() {
            let base = fnv1a64(addr.as_bytes());
            for vnode in 0..VNODES {
                points.push((mix(base.wrapping_add(vnode as u64)), idx));
            }
        }
        points.sort_unstable();
        HashRing {
            replicas: replicas.to_vec(),
            points,
        }
    }

    /// Number of replicas on the ring.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True when the ring has no replicas.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The address of replica `idx`.
    pub fn replica(&self, idx: usize) -> &str {
        &self.replicas[idx]
    }

    /// All replica addresses, in index order.
    pub fn replicas(&self) -> &[String] {
        &self.replicas
    }

    /// Distinct replica indices in ring order starting at `key`'s
    /// position: the primary first, then each failover candidate in the
    /// order a dead primary's keys spill over.
    pub fn ordered(&self, key: &str) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let h = mix(fnv1a64(key.as_bytes()));
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut seen = vec![false; self.replicas.len()];
        let mut order = Vec::with_capacity(self.replicas.len());
        for i in 0..self.points.len() {
            let (_, idx) = self.points[(start + i) % self.points.len()];
            if !seen[idx] {
                seen[idx] = true;
                order.push(idx);
                if order.len() == self.replicas.len() {
                    break;
                }
            }
        }
        order
    }

    /// The primary replica address for `key` (`None` on an empty ring).
    /// Tests use this to decide which replica to kill.
    pub fn primary(&self, key: &str) -> Option<&str> {
        self.ordered(key).first().map(|&i| self.replica(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replicas(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.1.2.{i}:84{i:02}")).collect()
    }

    #[test]
    fn ordered_visits_every_replica_exactly_once() {
        let ring = HashRing::new(&replicas(7));
        for key in ["Kripke", "LULESH", "MILC", "Relearn", "icoFoam"] {
            let order = ring.ordered(key);
            assert_eq!(order.len(), 7, "{key}");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..7).collect::<Vec<_>>(), "{key}");
        }
    }

    #[test]
    fn primary_distribution_is_within_2x_of_uniform() {
        // The fixed-key twin of the proptest in
        // tests/router_properties.rs, kept here so the balance bound is
        // checked even where proptest cannot run.
        for n in [3usize, 5, 8, 16] {
            let ring = HashRing::new(&replicas(n));
            let keys = 1024;
            let mut counts = vec![0usize; n];
            for k in 0..keys {
                counts[ring.ordered(&format!("model-{k}"))[0]] += 1;
            }
            let cap = 2 * keys / n;
            for (i, &c) in counts.iter().enumerate() {
                assert!(c <= cap, "replica {i} of {n} owns {c} of {keys} keys");
                assert!(c > 0, "replica {i} of {n} owns no keys");
            }
        }
    }

    #[test]
    fn removing_a_replica_remaps_only_its_keys() {
        let full = replicas(6);
        let ring_a = HashRing::new(&full);
        let victim = ring_a.primary("Kripke").unwrap().to_string();
        let survivors: Vec<String> = full.iter().filter(|r| **r != victim).cloned().collect();
        let ring_b = HashRing::new(&survivors);
        for k in 0..512 {
            let key = format!("model-{k}");
            let before = ring_a.primary(&key).unwrap();
            let after = ring_b.primary(&key).unwrap();
            if before != victim {
                assert_eq!(before, after, "{key} moved although its primary survived");
            }
        }
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(&[]);
        assert!(ring.is_empty());
        assert!(ring.ordered("Kripke").is_empty());
        assert_eq!(ring.primary("Kripke"), None);
    }
}
