//! Extra behavioural twins beyond the paper's five study applications:
//! the two algorithm classes of the exascale feasibility study the paper
//! builds on (related work \[20\], Gahvari & Gropp: "An introductory
//! exascale feasibility study for FFTs and multigrid"). The paper notes
//! those studies were "purely theoretical and not based on real
//! applications — with our method, we enable similar studies for actual
//! code bases"; these twins make that sentence executable.

use crate::shapes::{log2f, ops, ring_exchange, Arena};
use crate::MiniApp;
use exareq_locality::BurstSampler;
use exareq_profile::ProcessProfile;
use exareq_sim::Rank;

/// A distributed 1-D FFT twin: per-process butterfly passes (`n log n`
/// FLOPs), a global transpose whose per-process volume is linear in `n`
/// (all-to-all of the local slab), and twiddle-table traffic.
///
/// Requirement signature:
///
/// | metric          | model            |
/// |-----------------|------------------|
/// | #Bytes used     | `c · n`          |
/// | #FLOP           | `c · n log n`    |
/// | #Bytes sent/rcv | `c · n` (A2A)    |
/// | #Loads & stores | `c · n log n`    |
/// | Stack distance  | constant (radix) |
#[derive(Debug, Clone, Copy, Default)]
pub struct Fft;

impl MiniApp for Fft {
    fn name(&self) -> &'static str {
        "FFT"
    }

    fn run_rank(&self, rank: &mut Rank, n: u64, prof: &mut ProcessProfile) {
        let p = rank.size();
        let nf = n as f64;
        let mut field = Arena::new(2 * n as usize); // complex slab
        prof.footprint.alloc(field.bytes());

        // Butterfly passes: 5 real FLOPs per complex point per stage.
        prof.callpath.enter("butterflies");
        field.compute(ops(5.0 * nf * log2f(n)), prof.callpath.counters());
        field.stream(ops(4.0 * nf * log2f(n)), prof.callpath.counters());
        prof.callpath.exit();

        // Global transpose: every rank redistributes its slab — an
        // all-to-all with per-destination blocks of n/p complex values.
        prof.callpath.enter("transpose");
        let before = rank.stats().total();
        let block = ((16 * n) as usize / p.max(1)).max(16);
        let blocks: Vec<Vec<u8>> = (0..p).map(|_| vec![0u8; block]).collect();
        let _ = rank.alltoall(&blocks);
        prof.callpath.add_comm_bytes(rank.stats().total() - before);
        prof.callpath.exit();
    }

    fn run_locality(&self, _n: u64, sampler: &mut BurstSampler) {
        // Radix-8 working set: constant reuse window.
        let g = sampler.register_group("radix kernel");
        for _pass in 0..4 {
            for i in 0..56u64 {
                sampler.access(g, 0x6000 + i);
            }
        }
    }
}

/// A geometric-multigrid V-cycle twin: smoother sweeps dominated by the
/// fine grid (`c·n` FLOPs), halos whose volume telescopes over the levels
/// (`c·n` in total), and coarse-level collectives that contribute the
/// tell-tale `log p` communication term of parallel multigrid — the
/// latency-bound levels Gahvari & Gropp's feasibility bounds revolve
/// around.
///
/// Requirement signature:
///
/// | metric          | model                        |
/// |-----------------|------------------------------|
/// | #Bytes used     | `c · n` (telescoping levels) |
/// | #FLOP           | `c · n`                      |
/// | #Bytes sent/rcv | `c₁ · n + c₂ · log p`        |
/// | #Loads & stores | `c · n`                      |
/// | Stack distance  | constant (stencil window)    |
#[derive(Debug, Clone, Copy, Default)]
pub struct Multigrid;

/// V-cycles per solve.
const V_CYCLES: usize = 4;

impl MiniApp for Multigrid {
    fn name(&self) -> &'static str {
        "Multigrid"
    }

    fn run_rank(&self, rank: &mut Rank, n: u64, prof: &mut ProcessProfile) {
        let nf = n as f64;
        // Grid hierarchy: n + n/2 + n/4 + … < 2n points.
        let mut grids = Arena::new(2 * n as usize);
        prof.footprint.alloc(grids.bytes());

        let levels = (log2f(n) as usize).max(1);
        for _cycle in 0..V_CYCLES {
            // Smoother: work telescopes like the grid sizes (Σ n/2^l < 2n).
            prof.callpath.enter("smoother");
            grids.compute(ops(8.0 * nf), prof.callpath.counters());
            grids.stream(ops(12.0 * nf), prof.callpath.counters());
            prof.callpath.exit();

            // Level halos: volume telescopes too; one ring exchange per
            // level with sizes n/2^l (the fine levels dominate).
            prof.callpath.enter("level_halos");
            let before = rank.stats().total();
            for l in 0..levels.min(6) {
                let bytes = ops(nf / (1u64 << l) as f64).max(1);
                let halo = vec![0u8; bytes as usize];
                ring_exchange(rank, 700 + l as u64 * 2, &halo, &halo);
            }
            prof.callpath.add_comm_bytes(rank.stats().total() - before);
            prof.callpath.exit();

            // Coarse-grid solve: the grid no longer covers all ranks; the
            // residual norm is agreed on globally — the log p term.
            prof.callpath.enter("coarse_solve");
            let before = rank.stats().total();
            let mut norm = [0.0f64; 4];
            rank.allreduce_sum(&mut norm);
            prof.callpath.add_comm_bytes(rank.stats().total() - before);
            prof.callpath.exit();
        }
    }

    fn run_locality(&self, _n: u64, sampler: &mut BurstSampler) {
        // 5-point stencil window on the fine grid.
        let g = sampler.register_group("stencil window");
        for _pass in 0..4 {
            for i in 0..40u64 {
                sampler.access(g, 0x5000 + i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;

    #[test]
    fn fft_flops_scale_nlogn() {
        let a = measure(&Fft, 4, 1024);
        let b = measure(&Fft, 4, 4096);
        let r = b.flops / a.flops;
        // 4·(12/10) = 4.8
        assert!((r - 4.8).abs() < 0.05, "{r}");
    }

    #[test]
    fn fft_transpose_volume_linear_in_n_saturating_in_p() {
        // Per-process alltoall volume: (p−1) exchanged blocks of 16n/p
        // bytes each way → 2·16n·(p−1)/p, saturating towards 32n as p
        // grows: p 4 → 16 gives exactly (15/16)/(3/4) = 1.25.
        let a = measure(&Fft, 4, 4096);
        let b = measure(&Fft, 16, 4096);
        let ra = b.comm_class("Alltoall") / a.comm_class("Alltoall");
        assert!((ra - 1.25).abs() < 0.01, "{ra}");
        let c = measure(&Fft, 4, 16384);
        let rn = c.comm_class("Alltoall") / a.comm_class("Alltoall");
        assert!((rn - 4.0).abs() < 0.05, "{rn}");
    }

    #[test]
    fn multigrid_flops_linear() {
        let a = measure(&Multigrid, 4, 1024);
        let b = measure(&Multigrid, 4, 4096);
        let r = b.flops / a.flops;
        assert!((r - 4.0).abs() < 0.02, "{r}");
    }

    #[test]
    fn multigrid_has_logp_collective_term() {
        // Allreduce volume grows with log p at fixed payload & count.
        let a = measure(&Multigrid, 4, 1024);
        let b = measure(&Multigrid, 16, 1024);
        let r = b.comm_class("Allreduce") / a.comm_class("Allreduce");
        assert!((r - 2.0).abs() < 0.05, "{r}"); // log2(16)/log2(4) = 2
    }

    #[test]
    fn multigrid_halos_telescope() {
        // Total halo volume ≈ 2·Σ n/2^l ≈ 2n per direction — linear in n.
        let a = measure(&Multigrid, 8, 1024);
        let b = measure(&Multigrid, 8, 4096);
        let r = b.comm_class("P2P") / a.comm_class("P2P");
        assert!((r - 4.0).abs() < 0.05, "{r}");
    }

    #[test]
    fn both_have_constant_locality() {
        for app in [&Fft as &dyn crate::MiniApp, &Multigrid] {
            let a = measure(app, 2, 256);
            let b = measure(app, 2, 16384);
            assert_eq!(
                a.max_stack_distance(),
                b.max_stack_distance(),
                "{}",
                app.name()
            );
        }
    }
}
