//! Property-based verification of the locality engine: the Fenwick-tree
//! analyzer must agree with the naive oracle on arbitrary traces, and the
//! distance metrics must satisfy their defining invariants.

use exareq::locality::{
    AccessDistances, BurstSampler, BurstSchedule, DistanceAnalyzer, NaiveAnalyzer,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The O(log T) engine and the O(T) oracle agree access for access.
    #[test]
    fn fast_matches_naive(trace in proptest::collection::vec(0u64..32, 1..400)) {
        let mut fast = DistanceAnalyzer::new();
        let mut slow = NaiveAnalyzer::new();
        for (i, &addr) in trace.iter().enumerate() {
            let f = fast.access(addr);
            let s = slow.access(addr);
            prop_assert_eq!(f, s, "divergence at access {} (addr {})", i, addr);
        }
    }

    /// Stack distance never exceeds reuse distance (unique ⊆ all), and both
    /// are bounded by the trace position.
    #[test]
    fn stack_bounded_by_reuse(trace in proptest::collection::vec(0u64..64, 1..300)) {
        let mut a = DistanceAnalyzer::new();
        for (i, &addr) in trace.iter().enumerate() {
            let d = a.access(addr);
            if let AccessDistances { reuse: Some(r), stack: Some(s) } = d {
                prop_assert!(s <= r, "stack {} > reuse {} at {}", s, r, i);
                prop_assert!(r as usize <= i, "reuse beyond history at {}", i);
            }
        }
    }

    /// Stack distance is bounded by the number of distinct addresses seen so
    /// far minus one (everything else could be in between at most once).
    #[test]
    fn stack_bounded_by_distinct(trace in proptest::collection::vec(0u64..16, 1..300)) {
        let mut a = DistanceAnalyzer::new();
        for &addr in &trace {
            let before_distinct = a.distinct_addresses();
            let d = a.access(addr);
            if let Some(s) = d.stack {
                prop_assert!((s as usize) < before_distinct.max(1));
            }
        }
    }

    /// Cold misses happen exactly once per distinct address.
    #[test]
    fn one_cold_miss_per_address(trace in proptest::collection::vec(0u64..32, 1..300)) {
        let mut a = DistanceAnalyzer::new();
        let cold = trace.iter().filter(|&&x| a.access(x).is_cold()).count();
        let mut uniq: Vec<u64> = trace.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(cold, uniq.len());
    }

    /// Burst sampling never invents samples: the sampled distances are a
    /// subset of what exact monitoring produces, and per-group access counts
    /// are exact regardless of the schedule.
    #[test]
    fn sampling_is_a_subset(
        trace in proptest::collection::vec(0u64..16, 1..300),
        burst in 1u64..8,
        gap in 0u64..8,
    ) {
        let mut exact = BurstSampler::new(BurstSchedule::always());
        let ge = exact.register_group("g");
        let mut sampled = BurstSampler::new(BurstSchedule { burst, gap });
        let gs = sampled.register_group("g");
        for &addr in &trace {
            exact.access(ge, addr);
            sampled.access(gs, addr);
        }
        prop_assert_eq!(sampled.groups()[gs].accesses, trace.len() as u64);
        prop_assert!(sampled.groups()[gs].stack.len() <= exact.groups()[ge].stack.len());
        // Every sampled value appears in the exact multiset.
        let mut pool = exact.groups()[ge].stack.clone();
        for v in &sampled.groups()[gs].stack {
            let pos = pool.iter().position(|x| x == v);
            prop_assert!(pos.is_some(), "sampled {} not in exact distances", v);
            pool.swap_remove(pos.unwrap());
        }
    }
}

#[test]
fn sequential_scan_has_no_reuse() {
    let mut a = DistanceAnalyzer::new();
    for addr in 0..10_000u64 {
        assert!(a.access(addr).is_cold());
    }
}

#[test]
fn grouped_median_is_deterministic() {
    let run = || {
        let mut s = BurstSampler::new(BurstSchedule::default());
        let g = s.register_group("loop");
        for _pass in 0..50 {
            for i in 0..1000u64 {
                s.access(g, i);
            }
        }
        s.groups()[g].median_stack()
    };
    assert_eq!(run(), run());
    assert_eq!(run(), Some(999.0));
}
