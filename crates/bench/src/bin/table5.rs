//! Regenerates **Table V**: how problem size and per-process requirements of
//! each application change under the three Table III upgrades, with the
//! published values printed alongside for comparison.
//!
//! Run with `cargo run --release -p exareq-bench --bin table5`.

use exareq_bench::write_report;
use exareq_codesign::report::{fmt_ratio, render_upgrade_block};
use exareq_codesign::{analyze_upgrade, baseline_expectation, catalog, SystemSkeleton, Upgrade};

/// Table V as printed in the paper: per upgrade, rows (problem/proc,
/// overall, computation, communication, memory access) × apps (Kripke,
/// LULESH, MILC, Relearn, icoFoam).
const PAPER: [(&str, [[f64; 5]; 5]); 3] = [
    (
        "A",
        [
            [1.0, 1.0, 1.0, 1.0, 0.5],
            [2.0, 2.0, 2.0, 2.0, 1.0],
            [1.0, 1.2, 1.0, 1.0, 0.5],
            [1.0, 1.2, 1.0, 1.0, 0.7],
            [2.0, 1.2, 2.8, 2.0, 0.7],
        ],
    ),
    (
        "B",
        [
            [0.5, 0.5, 0.5, 0.3, 0.3],
            [1.0, 1.0, 1.0, 0.5, 0.6],
            [0.5, 0.6, 0.5, 0.3, 0.2],
            [0.5, 0.6, 0.5, 0.3, 0.3],
            [0.5, 1.0, 1.4, 1.0, 0.5],
        ],
    ),
    (
        "C",
        [
            [2.0, 1.4, 2.0, 4.0, 1.4],
            [2.0, 1.4, 2.0, 4.0, 1.4],
            [2.0, 1.4, 2.0, 4.0, 1.7],
            [2.0, 1.4, 2.0, 4.0, 1.4],
            [2.0, 1.4, 2.0, 4.0, 1.4],
        ],
    ),
];

fn main() {
    let base = SystemSkeleton::reference_large();
    let mut out = String::new();
    out.push_str(&format!(
        "== Table V reproduction ==\nbase skeleton: p = {:.0e}, memory/process = {:.1e} B\n\n",
        base.processes, base.mem_per_process
    ));

    for (up, (_, paper_block)) in Upgrade::ALL.iter().zip(PAPER) {
        let mut outcomes = Vec::new();
        let mut infeasible = Vec::new();
        for app in catalog::paper_models() {
            match analyze_upgrade(&app, &base, up) {
                Ok(o) => outcomes.push(o),
                Err(e) => infeasible.push(format!("{}: {e}", app.name)),
            }
        }
        let baseline = baseline_expectation(&base, up);
        out.push_str(&render_upgrade_block(
            &format!("{}: {}", up.name, up.description),
            &outcomes,
            &baseline,
        ));
        for msg in &infeasible {
            out.push_str(&format!("  note: {msg}\n"));
        }
        // Published values for the same block.
        out.push_str("  paper's published values:\n");
        let rows = [
            "Problem size per process",
            "Overall problem size",
            "Computation",
            "Communication",
            "Memory access",
        ];
        for (row_label, row_vals) in rows.iter().zip(paper_block) {
            let cells: Vec<String> = row_vals.iter().map(|v| fmt_ratio(*v)).collect();
            out.push_str(&format!("    {row_label}\t{}\n", cells.join("\t")));
        }
        out.push('\n');
    }
    out.push_str(
        "Paper's summary: no upgrade is best for all applications; doubling the\n\
         memory or the racks helps most applications the most. Deviating cells\n\
         (documented in EXPERIMENTS.md) trace to the paper's rounded BOE\n\
         arithmetic, which is not always consistent with exact evaluation of\n\
         its own Table II models at a single base configuration.\n",
    );
    print!("{out}");
    write_report("table5.txt", &out);
}
