//! Performance model normal form (PMNF).
//!
//! Models follow Eq. 1/2 of the paper:
//!
//! ```text
//! f(x)        = c₀ + Σ_k c_k · x^{i_k} · log2^{j_k}(x)
//! f(x₁..x_m)  = c₀ + Σ_k c_k · Π_l x_l^{i_kl} · log2^{j_kl}(x_l)
//! ```
//!
//! Parameter values are assumed to be ≥ 1 (process counts, problem sizes);
//! evaluation clamps to 1 so that `log2` never goes negative.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Exponent pair `(i, j)` of a PMNF factor `x^i · log2(x)^j`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponents {
    /// Polynomial exponent `i`.
    pub poly: f64,
    /// Logarithm exponent `j` (exponent of `log2(x)`).
    pub log: f64,
}

impl Exponents {
    /// Creates an exponent pair.
    pub fn new(poly: f64, log: f64) -> Self {
        Exponents { poly, log }
    }

    /// The identity factor `x^0 · log^0 = 1`.
    pub fn constant() -> Self {
        Exponents::new(0.0, 0.0)
    }

    /// True if this factor is identically 1.
    pub fn is_constant(&self) -> bool {
        self.poly == 0.0 && self.log == 0.0
    }

    /// Evaluates `x^i · log2(x)^j` with `x` clamped to ≥ 1.
    pub fn eval(&self, x: f64) -> f64 {
        let x = x.max(1.0);
        let mut v = 1.0;
        if self.poly != 0.0 {
            v *= x.powf(self.poly);
        }
        if self.log != 0.0 {
            v *= x.log2().powf(self.log);
        }
        v
    }

    /// Asymptotic-growth ordering: compares `(poly, log)` lexicographically,
    /// which matches `lim x→∞` dominance for PMNF factors.
    pub fn growth_cmp(&self, other: &Exponents) -> std::cmp::Ordering {
        self.poly
            .partial_cmp(&other.poly)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                self.log
                    .partial_cmp(&other.log)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    }

    /// Renders the factor for a parameter named `name`, or `None` if constant.
    pub fn render(&self, name: &str) -> Option<String> {
        if self.is_constant() {
            return None;
        }
        let mut parts = Vec::new();
        if self.poly != 0.0 {
            if self.poly == 1.0 {
                parts.push(name.to_string());
            } else {
                parts.push(format!("{}^{}", name, trim_float(self.poly)));
            }
        }
        if self.log != 0.0 {
            if self.log == 1.0 {
                parts.push(format!("log2({name})"));
            } else {
                parts.push(format!("log2({})^{}", name, trim_float(self.log)));
            }
        }
        Some(parts.join("·"))
    }
}

fn trim_float(v: f64) -> String {
    let s = format!("{v:.4}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

/// One compound PMNF term: `coeff · Π_l factor_l(x_l)`.
///
/// `factors` has one entry per model parameter, aligned with
/// [`Model::params`]; constant factors (exponents 0,0) mean the parameter
/// does not appear in the term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Term {
    /// Multiplicative coefficient `c_k`.
    pub coeff: f64,
    /// Per-parameter factors, one per model parameter.
    pub factors: Vec<Exponents>,
}

impl Term {
    /// Creates a term with the given coefficient and per-parameter factors.
    pub fn new(coeff: f64, factors: Vec<Exponents>) -> Self {
        Term { coeff, factors }
    }

    /// Evaluates the term's basis `Π_l factor_l(x_l)` (without the coefficient).
    pub fn basis(&self, coords: &[f64]) -> f64 {
        debug_assert_eq!(coords.len(), self.factors.len());
        self.factors
            .iter()
            .zip(coords)
            .map(|(f, &x)| f.eval(x))
            .product()
    }

    /// Evaluates the full term `coeff · basis`.
    pub fn eval(&self, coords: &[f64]) -> f64 {
        self.coeff * self.basis(coords)
    }

    /// True if no parameter appears (the term is a constant).
    pub fn is_constant(&self) -> bool {
        self.factors.iter().all(Exponents::is_constant)
    }
}

/// A PMNF model: `constant + Σ terms`, over named parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Constant offset `c₀`.
    pub constant: f64,
    /// Compound terms, each aligned with `params`.
    pub terms: Vec<Term>,
    /// Parameter names (e.g. `["p", "n"]`), defining coordinate order.
    pub params: Vec<String>,
}

impl Model {
    /// Creates a constant model `f(..) = c`.
    pub fn constant(c: f64, params: Vec<String>) -> Self {
        Model {
            constant: c,
            terms: Vec::new(),
            params,
        }
    }

    /// Creates a model from parts, checking factor arity.
    ///
    /// # Panics
    /// Panics if any term's factor count differs from the parameter count.
    pub fn new(constant: f64, terms: Vec<Term>, params: Vec<String>) -> Self {
        for t in &terms {
            assert_eq!(
                t.factors.len(),
                params.len(),
                "term arity must match parameter count"
            );
        }
        Model {
            constant,
            terms,
            params,
        }
    }

    /// Number of model parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Evaluates the model at the given coordinates (one per parameter).
    ///
    /// # Panics
    /// Panics (debug) if `coords.len() != self.arity()`.
    pub fn eval(&self, coords: &[f64]) -> f64 {
        debug_assert_eq!(coords.len(), self.params.len());
        self.constant + self.terms.iter().map(|t| t.eval(coords)).sum::<f64>()
    }

    /// Ratio `f(new) / f(old)` — the paper's relative-requirement workflow
    /// (Table IV step V) evaluates models at two system configurations and
    /// compares.
    pub fn ratio(&self, old: &[f64], new: &[f64]) -> f64 {
        let o = self.eval(old);
        let n = self.eval(new);
        if o == 0.0 {
            if n == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            n / o
        }
    }

    /// Index of a parameter by name.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p == name)
    }

    /// The fastest-growing exponents in parameter `param` across all terms
    /// (the "terms with the largest impact" that Table II reports).
    pub fn dominant_exponents(&self, param: usize) -> Exponents {
        self.terms
            .iter()
            .map(|t| t.factors[param])
            .max_by(|a, b| a.growth_cmp(b))
            .unwrap_or_else(Exponents::constant)
    }

    /// The term that dominates asymptotically when all parameters grow
    /// together, with ties broken by coefficient magnitude.
    pub fn dominant_term(&self) -> Option<&Term> {
        self.terms.iter().max_by(|a, b| {
            let ga: f64 = a.factors.iter().map(|f| f.poly + 0.001 * f.log).sum();
            let gb: f64 = b.factors.iter().map(|f| f.poly + 0.001 * f.log).sum();
            ga.partial_cmp(&gb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    a.coeff
                        .abs()
                        .partial_cmp(&b.coeff.abs())
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        })
    }

    /// True if the model depends on parameter `param` at all.
    pub fn depends_on(&self, param: usize) -> bool {
        self.terms.iter().any(|t| !t.factors[param].is_constant())
    }

    /// True if some term multiplies two different parameters together — the
    /// "multiplicative effect" the paper flags (e.g. Kripke loads/stores
    /// `n·p`, LULESH FLOP `n log n · p^0.25 log p`).
    pub fn has_multiplicative_interaction(&self) -> bool {
        self.terms
            .iter()
            .any(|t| t.factors.iter().filter(|f| !f.is_constant()).count() >= 2)
    }

    /// Sums several models over the same parameters into one (constants add,
    /// term lists concatenate; identical factor sets are merged). Used to
    /// assemble a total-communication model from per-collective-class fits,
    /// the way Table II stacks an application's comm rows.
    ///
    /// # Panics
    /// Panics if the models disagree on their parameter lists, or `models`
    /// is empty.
    pub fn sum(models: &[&Model]) -> Model {
        let first = models.first().expect("at least one model");
        let mut out = Model {
            constant: 0.0,
            terms: Vec::new(),
            params: first.params.clone(),
        };
        for m in models {
            assert_eq!(m.params, out.params, "parameter mismatch in Model::sum");
            out.constant += m.constant;
            for t in &m.terms {
                match out.terms.iter_mut().find(|x| x.factors == t.factors) {
                    Some(existing) => existing.coeff += t.coeff,
                    None => out.terms.push(t.clone()),
                }
            }
        }
        out
    }

    /// Returns a copy whose coefficients are rounded to the nearest power of
    /// ten — the presentation rule of Table II ("rounded to the nearest power
    /// of ten").
    pub fn rounded_to_power_of_ten(&self) -> Model {
        let mut m = self.clone();
        m.constant = round_pow10(m.constant);
        for t in &mut m.terms {
            t.coeff = round_pow10(t.coeff);
        }
        m
    }
}

/// Rounds a value to the nearest power of ten, preserving sign; zero stays zero.
pub fn round_pow10(v: f64) -> f64 {
    if v == 0.0 || !v.is_finite() {
        return v;
    }
    let sign = v.signum();
    let exp = v.abs().log10().round();
    sign * 10f64.powf(exp)
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.constant != 0.0 || self.terms.is_empty() {
            parts.push(format_coeff(self.constant));
        }
        for t in &self.terms {
            let factors: Vec<String> = t
                .factors
                .iter()
                .zip(&self.params)
                .filter_map(|(e, name)| e.render(name))
                .collect();
            if factors.is_empty() {
                parts.push(format_coeff(t.coeff));
            } else {
                parts.push(format!("{}·{}", format_coeff(t.coeff), factors.join("·")));
            }
        }
        write!(f, "{}", parts.join(" + "))
    }
}

fn format_coeff(c: f64) -> String {
    if c == 0.0 {
        return "0".to_string();
    }
    let a = c.abs();
    if (0.01..10000.0).contains(&a) {
        trim_float(c)
    } else {
        format!("{c:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_param_model() -> Model {
        // f(p, n) = 5 + 2·n·log2(p)
        Model::new(
            5.0,
            vec![Term::new(
                2.0,
                vec![Exponents::new(0.0, 1.0), Exponents::new(1.0, 0.0)],
            )],
            vec!["p".into(), "n".into()],
        )
    }

    #[test]
    fn exponent_eval_basic() {
        let e = Exponents::new(2.0, 0.0);
        assert_eq!(e.eval(3.0), 9.0);
        let e = Exponents::new(0.0, 1.0);
        assert_eq!(e.eval(8.0), 3.0);
        let e = Exponents::new(1.0, 1.0);
        assert_eq!(e.eval(4.0), 8.0);
    }

    #[test]
    fn exponent_eval_clamps_below_one() {
        let e = Exponents::new(0.5, 1.5);
        assert_eq!(e.eval(0.25), e.eval(1.0));
        assert_eq!(e.eval(1.0), 0.0); // log2(1) = 0 with positive exponent
    }

    #[test]
    fn constant_factor_is_one() {
        assert_eq!(Exponents::constant().eval(1234.5), 1.0);
        assert!(Exponents::constant().is_constant());
    }

    #[test]
    fn growth_ordering() {
        use std::cmp::Ordering::*;
        let n1 = Exponents::new(1.0, 0.0);
        let n1log = Exponents::new(1.0, 1.0);
        let n2 = Exponents::new(2.0, 0.0);
        let log2 = Exponents::new(0.0, 2.0);
        assert_eq!(n1.growth_cmp(&n1log), Less);
        assert_eq!(n2.growth_cmp(&n1log), Greater);
        assert_eq!(log2.growth_cmp(&n1), Less);
        assert_eq!(n1.growth_cmp(&n1), Equal);
    }

    #[test]
    fn model_eval_two_params() {
        let m = two_param_model();
        // p = 8, n = 10 → 5 + 2·10·3 = 65
        assert_eq!(m.eval(&[8.0, 10.0]), 65.0);
    }

    #[test]
    fn model_ratio_matches_direct_eval() {
        let m = two_param_model();
        let r = m.ratio(&[8.0, 10.0], &[16.0, 10.0]);
        assert!((r - m.eval(&[16.0, 10.0]) / 65.0).abs() < 1e-15);
    }

    #[test]
    fn ratio_of_zero_base() {
        let m = Model::constant(0.0, vec!["p".into()]);
        assert_eq!(m.ratio(&[1.0], &[2.0]), 1.0);
    }

    #[test]
    fn dominant_exponents_picks_fastest_growth() {
        let m = Model::new(
            0.0,
            vec![
                Term::new(1e8, vec![Exponents::new(1.0, 0.0)]),
                Term::new(1e2, vec![Exponents::new(1.5, 0.0)]),
            ],
            vec!["n".into()],
        );
        assert_eq!(m.dominant_exponents(0), Exponents::new(1.5, 0.0));
    }

    #[test]
    fn multiplicative_interaction_detection() {
        assert!(two_param_model().has_multiplicative_interaction());
        let additive = Model::new(
            0.0,
            vec![
                Term::new(1.0, vec![Exponents::new(1.0, 0.0), Exponents::constant()]),
                Term::new(1.0, vec![Exponents::constant(), Exponents::new(1.0, 0.0)]),
            ],
            vec!["p".into(), "n".into()],
        );
        assert!(!additive.has_multiplicative_interaction());
    }

    #[test]
    fn round_pow10_cases() {
        assert_eq!(round_pow10(0.0), 0.0);
        assert_eq!(round_pow10(97000.0), 1e5);
        assert_eq!(round_pow10(120000.0), 1e5);
        assert_eq!(round_pow10(4.0e7), 1e8); // log10(4e7) ≈ 7.6 rounds to 8
        assert_eq!(round_pow10(2.9e7), 1e7);
        assert_eq!(round_pow10(-3000.0), -1e3); // log10(3000)≈3.48
        assert_eq!(round_pow10(0.004), 0.01_f64.powf(1.0) * 1.0); // 1e-2? log10=−2.4 → −2
    }

    #[test]
    fn display_renders_readably() {
        let m = two_param_model();
        let s = m.to_string();
        assert!(s.contains("log2(p)"), "{s}");
        assert!(s.contains('n'), "{s}");
        assert!(s.starts_with('5'), "{s}");
    }

    #[test]
    fn display_constant_model() {
        let m = Model::constant(42.0, vec!["p".into()]);
        assert_eq!(m.to_string(), "42");
    }

    #[test]
    fn display_fractional_exponents() {
        let m = Model::new(
            0.0,
            vec![Term::new(1e8, vec![Exponents::new(0.25, 1.0)])],
            vec!["p".into()],
        );
        let s = m.to_string();
        assert!(s.contains("p^0.25"), "{s}");
        assert!(s.contains("log2(p)"), "{s}");
    }

    #[test]
    fn serde_roundtrip() {
        let m = two_param_model();
        let json = serde_json::to_string(&m).unwrap();
        let back: Model = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn sum_merges_and_concatenates() {
        let a = Model::new(
            1.0,
            vec![Term::new(2.0, vec![Exponents::new(1.0, 0.0)])],
            vec!["p".into()],
        );
        let b = Model::new(
            3.0,
            vec![
                Term::new(5.0, vec![Exponents::new(1.0, 0.0)]),
                Term::new(7.0, vec![Exponents::new(0.0, 1.0)]),
            ],
            vec!["p".into()],
        );
        let s = Model::sum(&[&a, &b]);
        assert_eq!(s.constant, 4.0);
        assert_eq!(s.terms.len(), 2);
        assert_eq!(s.eval(&[8.0]), a.eval(&[8.0]) + b.eval(&[8.0]));
    }

    #[test]
    #[should_panic(expected = "parameter mismatch")]
    fn sum_requires_same_params() {
        let a = Model::constant(1.0, vec!["p".into()]);
        let b = Model::constant(1.0, vec!["n".into()]);
        let _ = Model::sum(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Model::new(
            0.0,
            vec![Term::new(1.0, vec![Exponents::constant()])],
            vec!["p".into(), "n".into()],
        );
    }
}
