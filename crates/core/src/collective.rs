//! Symbolic collective-communication models.
//!
//! Table II expresses communication requirements of MILC, Relearn and
//! icoFoam in terms of opaque collective cost functions — `Allreduce(p)`,
//! `Bcast(p)`, `Alltoall(p)` — rather than raw bytes, because the byte count
//! of a collective is a property of the algorithm (tree, recursive doubling,
//! pairwise exchange), not of the application. This module provides closed
//! forms for the reference algorithms (matching the `exareq-sim`
//! implementations message for message) and a *symbolizer* that factors the
//! algorithmic `p`-dependence out of a measured byte surface before
//! modeling, so fitted models print like the paper's.

use crate::fit::FittedModel;
use crate::measurement::Experiment;
use crate::multiparam::{fit_multi, MultiParamConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Collective operation classes distinguished by the byte-accounting layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Point-to-point messages (sends/recvs, halo exchanges).
    PointToPoint,
    /// Broadcast (binomial tree).
    Bcast,
    /// All-reduce (recursive doubling with non-power-of-two fold).
    Allreduce,
    /// All-gather (ring).
    Allgather,
    /// All-to-all (pairwise exchange).
    Alltoall,
}

impl CollectiveKind {
    /// Human-readable symbol used in model rendering (matches Table II).
    pub fn symbol(&self) -> &'static str {
        match self {
            CollectiveKind::PointToPoint => "P2P",
            CollectiveKind::Bcast => "Bcast",
            CollectiveKind::Allreduce => "Allreduce",
            CollectiveKind::Allgather => "Allgather",
            CollectiveKind::Alltoall => "Alltoall",
        }
    }

    /// Total bytes counted across *all* processes (sent + received) for one
    /// operation with per-process payload `s` bytes on `p` processes, for
    /// the reference algorithm of each collective.
    ///
    /// These closed forms are asserted (message for message) against the
    /// `exareq-sim` implementations by integration tests.
    pub fn total_bytes(&self, p: u64, s: u64) -> f64 {
        let (p, s) = (p as f64, s as f64);
        match self {
            // One matched send/recv pair: counted once at the sender and
            // once at the receiver.
            CollectiveKind::PointToPoint => 2.0 * s,
            // Binomial tree: p−1 messages of size s, each counted twice.
            CollectiveKind::Bcast => 2.0 * (p - 1.0) * s,
            // Recursive doubling on the largest power of two f ≤ p, with
            // r = p − f extra ranks folded in (2 messages per extra pair).
            CollectiveKind::Allreduce => {
                let f = (p as u64).next_power_of_two() as f64;
                let f = if f > p { f / 2.0 } else { f };
                let r = p - f;
                2.0 * (f * f.log2() * s) + 2.0 * (2.0 * r * s)
            }
            // Ring allgather: p−1 rounds, every process sends and receives
            // a block of size s each round.
            CollectiveKind::Allgather => 2.0 * p * (p - 1.0) * s,
            // Pairwise exchange: every process exchanges a block of size s
            // with each of the p−1 others.
            CollectiveKind::Alltoall => 2.0 * p * (p - 1.0) * s,
        }
    }

    /// Per-process bytes (average) of one operation: `total_bytes / p`.
    pub fn unit_bytes(&self, p: u64, s: u64) -> f64 {
        self.total_bytes(p, s) / p as f64
    }
}

/// A communication model with the collective's algorithmic `p`-dependence
/// factored out: `bytes(p, n) ≈ scale(p, n) · unit_bytes(p, 1)`.
///
/// For a well-behaved application the fitted `scale` depends only on `n`
/// (e.g. Relearn's `1e5·Allreduce(p)` → scale constant; icoFoam's
/// `n^0.5·Allreduce(p)` → scale `n^0.5`), which is exactly how Table II
/// prints these rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymbolicCommModel {
    /// Which collective this models.
    pub kind: CollectiveKind,
    /// Fitted model of `bytes / unit_bytes(p, 1)`.
    pub scale: FittedModel,
    /// Fitted model of the raw byte surface (for ratio workflows).
    pub raw: FittedModel,
}

impl SymbolicCommModel {
    /// Predicted per-process bytes at coordinates aligned with the
    /// experiment's parameters (the parameter named `p_param` supplies the
    /// process count for the unit function).
    pub fn eval(&self, coords: &[f64]) -> f64 {
        self.raw.model.eval(coords)
    }

    /// The index of the process-count parameter inside the model.
    fn p_index(&self) -> usize {
        self.raw
            .model
            .param_index("p")
            .expect("communication models are parameterized over p")
    }

    /// True if the symbolic factorization is clean: the scale model does not
    /// depend on `p` (all `p`-dependence was explained by the collective's
    /// algorithm).
    pub fn is_clean(&self) -> bool {
        !self.scale.model.depends_on(self.p_index())
    }
}

impl fmt::Display for SymbolicCommModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}) · {}(p)", self.scale.model, self.kind.symbol())
    }
}

/// Fits a symbolic model to a measured per-process byte surface for one
/// collective class.
///
/// `exp` must contain a parameter named `"p"` (process count). Each
/// measurement's value is divided by `unit_bytes(p, 1)` before fitting the
/// scale model; the raw surface is fitted as-is.
///
/// # Errors
/// Propagates fitting errors; returns `WrongArity` if no `"p"` parameter
/// exists.
pub fn symbolize(
    kind: CollectiveKind,
    exp: &Experiment,
    cfg: &MultiParamConfig,
) -> Result<SymbolicCommModel, crate::fit::FitError> {
    let p_idx =
        exp.params
            .iter()
            .position(|s| s == "p")
            .ok_or(crate::fit::FitError::WrongArity {
                expected: exp.arity(),
                got: 0,
            })?;
    let mut normalized = exp.clone();
    for m in &mut normalized.points {
        let p = m.coords[p_idx] as u64;
        let unit = kind.unit_bytes(p.max(1), 1);
        if unit > 0.0 {
            m.value /= unit;
        }
    }
    let scale = fit_multi(&normalized, cfg)?;
    let raw = fit_multi(exp, cfg)?;
    Ok(SymbolicCommModel { kind, scale, raw })
}

/// Renders a combined communication model (one symbolic row per collective
/// class plus an optional point-to-point model) the way Table II stacks
/// them.
pub fn render_comm_rows(models: &[SymbolicCommModel]) -> Vec<String> {
    models
        .iter()
        .filter(|m| {
            // Suppress all-zero classes.
            m.raw.model.constant != 0.0 || !m.raw.model.terms.is_empty()
        })
        .map(|m| match m.kind {
            CollectiveKind::PointToPoint => format!("{}", m.raw.model),
            _ => format!("{m}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_bytes_bcast_tree() {
        // p=8, s=100: 7 messages × 100 × 2 = 1400 total
        assert_eq!(CollectiveKind::Bcast.total_bytes(8, 100), 1400.0);
    }

    #[test]
    fn unit_bytes_allreduce_power_of_two() {
        // p=8: f=8, r=0 → 2·8·3·s = 48s
        assert_eq!(CollectiveKind::Allreduce.total_bytes(8, 1), 48.0);
    }

    #[test]
    fn unit_bytes_allreduce_non_power_of_two() {
        // p=6: f=4, r=2 → 2·4·2·s + 4·2·s = 16s + 8s = 24s
        assert_eq!(CollectiveKind::Allreduce.total_bytes(6, 1), 24.0);
    }

    #[test]
    fn unit_bytes_alltoall_quadratic() {
        assert_eq!(
            CollectiveKind::Alltoall.total_bytes(4, 10),
            2.0 * 4.0 * 3.0 * 10.0
        );
    }

    #[test]
    fn allgather_matches_alltoall_volume() {
        // Ring allgather and pairwise alltoall move the same volume for
        // equal block sizes.
        assert_eq!(
            CollectiveKind::Allgather.total_bytes(16, 7),
            CollectiveKind::Alltoall.total_bytes(16, 7)
        );
    }

    #[test]
    fn per_process_is_total_over_p() {
        let k = CollectiveKind::Allreduce;
        assert!((k.unit_bytes(8, 3) - k.total_bytes(8, 3) / 8.0).abs() < 1e-12);
    }

    #[test]
    fn symbolize_factors_out_allreduce() {
        // bytes(p, n) = n^0.5 · unit(p): icoFoam-style.
        let kind = CollectiveKind::Allreduce;
        let exp = Experiment::from_fn(
            vec!["p", "n"],
            &[
                &[2.0, 4.0, 8.0, 16.0, 32.0],
                &[16.0, 64.0, 256.0, 1024.0, 4096.0],
            ],
            |c| c[1].sqrt() * kind.unit_bytes(c[0] as u64, 1),
        );
        let cfg = MultiParamConfig::coarse();
        let sym = symbolize(kind, &exp, &cfg).unwrap();
        assert!(sym.is_clean(), "scale model: {}", sym.scale.model);
        let n_idx = 1;
        assert_eq!(
            sym.scale.model.dominant_exponents(n_idx),
            crate::pmnf::Exponents::new(0.5, 0.0),
            "{}",
            sym.scale.model
        );
        let disp = sym.to_string();
        assert!(disp.contains("Allreduce(p)"), "{disp}");
    }

    #[test]
    fn symbolize_flags_dirty_residual() {
        // bytes grow faster than the collective explains: p² on top of unit.
        let kind = CollectiveKind::Bcast;
        let exp = Experiment::from_fn(
            vec!["p", "n"],
            &[
                &[2.0, 4.0, 8.0, 16.0, 32.0],
                &[16.0, 64.0, 256.0, 1024.0, 4096.0],
            ],
            |c| c[0] * c[0] * kind.unit_bytes(c[0] as u64, 1),
        );
        let sym = symbolize(kind, &exp, &MultiParamConfig::coarse()).unwrap();
        assert!(!sym.is_clean());
    }

    #[test]
    fn requires_p_parameter() {
        let exp = Experiment::from_fn(vec!["m", "n"], &[&[1.0, 2.0], &[1.0, 2.0]], |c| c[0]);
        assert!(symbolize(CollectiveKind::Bcast, &exp, &MultiParamConfig::coarse()).is_err());
    }

    #[test]
    fn render_skips_empty_models() {
        let kind = CollectiveKind::Allreduce;
        let exp = Experiment::from_fn(
            vec!["p", "n"],
            &[
                &[2.0, 4.0, 8.0, 16.0, 32.0],
                &[16.0, 64.0, 256.0, 1024.0, 4096.0],
            ],
            |c| 100.0 * kind.unit_bytes(c[0] as u64, 1) * c[1],
        );
        let cfg = MultiParamConfig::coarse();
        let sym = symbolize(kind, &exp, &cfg).unwrap();
        let zero_exp = Experiment::from_fn(
            vec!["p", "n"],
            &[
                &[2.0, 4.0, 8.0, 16.0, 32.0],
                &[16.0, 64.0, 256.0, 1024.0, 4096.0],
            ],
            |_| 0.0,
        );
        let zero = symbolize(CollectiveKind::Alltoall, &zero_exp, &cfg).unwrap();
        let rows = render_comm_rows(&[sym, zero]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].contains("Allreduce"));
    }
}
