//! Chaos tests of `exareq fleet`: real coordinator + worker subprocesses
//! on loopback, with workers killed, black-holed, or absent mid-run.
//!
//! The one invariant every scenario asserts: the merged journal and the
//! survey artifact are **byte-identical** (`==` on the file bytes, the
//! test-side `cmp`) to a single-process sequential `exareq survey` run —
//! re-dispatch, work stealing, and in-process fallback may change *how*
//! the grid got measured, never *what* was measured.

#![cfg(unix)]

use exareq::fleet::ShardSequencer;
use exareq::signal::send_signal;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const FAULTS: &str = "seed=7,drop=0.01";
const GRID: [&str; 4] = ["--p", "2,4", "--n", "64,256"];
const SIGKILL: i32 = 9;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_exareq"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("exareq_fleet_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("test dir");
    dir
}

/// A fleet worker: `exareq serve --allow-measure` on an ephemeral port
/// with an empty model dir (measurement needs no models).
struct Worker {
    child: Child,
    addr: String,
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_worker(dir: &Path) -> Worker {
    let models = dir.join("models");
    std::fs::create_dir_all(&models).expect("model dir");
    let mut child = bin()
        .args(["serve", "--allow-measure", "--addr", "127.0.0.1:0"])
        .arg("--model-dir")
        .arg(&models)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut ready = String::new();
    reader.read_line(&mut ready).expect("readable stdout");
    let addr = ready
        .strip_prefix("serving on ")
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected ready line: {ready}"))
        .to_string();
    // Leak the reader thread-lessly: the pipe stays open via the Child.
    std::mem::forget(reader);
    Worker { child, addr }
}

/// Runs the sequential baseline (`exareq survey --jobs 1`) and returns
/// the `(journal, artifact)` paths.
fn sequential_baseline(dir: &Path) -> (PathBuf, PathBuf) {
    let journal = dir.join("seq.jsonl");
    let artifact = dir.join("seq.json");
    let status = bin()
        .args(["survey", "Relearn"])
        .args(GRID)
        .args(["--faults", FAULTS, "--max-retries", "1", "--jobs", "1"])
        .arg("--journal")
        .arg(&journal)
        .arg("-o")
        .arg(&artifact)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run exareq survey");
    assert!(status.success(), "sequential baseline failed");
    (journal, artifact)
}

struct FleetRun {
    status: std::process::ExitStatus,
    stderr: String,
    journal: PathBuf,
    artifact: PathBuf,
    report: PathBuf,
}

/// Runs `exareq fleet` against `workers` with the chaos knobs given as
/// extra flags; captures stderr and the three artifacts.
fn run_fleet_cli(dir: &Path, tag: &str, workers: &[String], extra: &[&str]) -> FleetRun {
    let journal = dir.join(format!("fleet_{tag}.jsonl"));
    let artifact = dir.join(format!("fleet_{tag}.json"));
    let report = dir.join(format!("report_{tag}.json"));
    let output = bin()
        .args(["fleet", "Relearn", "--workers", &workers.join(",")])
        .args(GRID)
        .args(["--faults", FAULTS, "--max-retries", "1"])
        .args(extra)
        .arg("--journal")
        .arg(&journal)
        .arg("-o")
        .arg(&artifact)
        .arg("--fleet-report")
        .arg(&report)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .expect("run exareq fleet");
    FleetRun {
        status: output.status,
        stderr: String::from_utf8_lossy(&output.stderr).to_string(),
        journal,
        artifact,
        report,
    }
}

fn read_bytes(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The in-test `cmp`: byte equality of two files.
fn assert_same_bytes(a: &Path, b: &Path, what: &str) {
    assert_eq!(
        read_bytes(a),
        read_bytes(b),
        "{what}: {} and {} differ",
        a.display(),
        b.display()
    );
}

fn report_json(run: &FleetRun) -> exareq::profile::minijson::Json {
    let text = String::from_utf8(read_bytes(&run.report)).expect("UTF-8 report");
    exareq::profile::minijson::parse(text.trim()).expect("valid fleet report JSON")
}

fn report_num(v: &exareq::profile::minijson::Json, key: &str) -> f64 {
    v.get(key)
        .and_then(exareq::profile::minijson::Json::as_f64)
        .unwrap_or_else(|| panic!("report key {key} missing"))
}

#[test]
fn live_fleet_merges_byte_identical_to_sequential() {
    let dir = tmp_dir("live");
    let (seq_journal, seq_artifact) = sequential_baseline(&dir);
    let w1 = spawn_worker(&dir);
    let w2 = spawn_worker(&dir);
    let run = run_fleet_cli(
        &dir,
        "live",
        &[w1.addr.clone(), w2.addr.clone()],
        &["--shard-size", "1"],
    );
    assert!(run.status.success(), "fleet failed: {}", run.stderr);
    assert_same_bytes(&run.journal, &seq_journal, "merged journal");
    assert_same_bytes(&run.artifact, &seq_artifact, "survey artifact");
    let report = report_json(&run);
    assert_eq!(
        report
            .get("fallback")
            .and_then(exareq::profile::minijson::Json::as_bool),
        Some(false),
        "healthy fleet must not fall back: {}",
        run.stderr
    );
    let metrics = report
        .get("metrics")
        .and_then(exareq::profile::minijson::Json::as_str)
        .expect("metrics exposition in report");
    assert!(metrics.contains("fleet_redispatch_total"), "{metrics}");
    assert!(
        metrics.contains("fleet_worker_state{state=\"healthy\"} 2"),
        "{metrics}"
    );
}

#[test]
fn sigkill_mid_shard_redispatches_and_merges_exactly() {
    let dir = tmp_dir("sigkill");
    let (seq_journal, seq_artifact) = sequential_baseline(&dir);
    let w1 = spawn_worker(&dir);
    let w2 = spawn_worker(&dir);
    let victim = w2.child.id();

    // --hold-ms keeps every shard in flight for 600ms, so a kill at
    // 250ms is guaranteed to land mid-shard: the victim is holding a
    // dispatched shard it will never answer.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        assert!(send_signal(victim, SIGKILL), "deliver SIGKILL");
    });
    let run = run_fleet_cli(
        &dir,
        "sigkill",
        &[w1.addr.clone(), w2.addr.clone()],
        &["--shard-size", "1", "--hold-ms", "600"],
    );
    killer.join().expect("killer thread");
    assert!(run.status.success(), "fleet failed: {}", run.stderr);

    // Crash-exact merge: the survivor's re-measurements slot into the
    // canonical order bit-for-bit.
    assert_same_bytes(&run.journal, &seq_journal, "merged journal after SIGKILL");
    assert_same_bytes(
        &run.artifact,
        &seq_artifact,
        "survey artifact after SIGKILL",
    );

    let report = report_json(&run);
    assert!(
        report_num(&report, "redispatches") >= 1.0,
        "the killed worker's shard must have been stolen: {}",
        run.stderr
    );
    assert_eq!(
        report
            .get("fallback")
            .and_then(exareq::profile::minijson::Json::as_bool),
        Some(false),
        "one worker survived; no fallback expected"
    );
    let metrics = report
        .get("metrics")
        .and_then(exareq::profile::minijson::Json::as_str)
        .expect("metrics exposition in report");
    assert!(!metrics.contains("fleet_redispatch_total 0\n"), "{metrics}");
}

#[test]
fn black_hole_worker_times_out_and_its_shard_is_stolen() {
    let dir = tmp_dir("blackhole");
    let (seq_journal, seq_artifact) = sequential_baseline(&dir);
    // A "worker" that accepts connections and never answers: the worst
    // failure mode, indistinguishable from a hang.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind black hole");
    let hole_addr = listener.local_addr().expect("addr").to_string();
    let hole = std::thread::spawn(move || {
        let mut held = Vec::new();
        // Hold every connection open without responding until the test
        // ends (the listener drops when the thread is joined or leaked).
        while let Ok((conn, _)) = listener.accept() {
            let _ = conn.set_read_timeout(Some(Duration::from_secs(30)));
            held.push(conn);
            if held.len() > 64 {
                break;
            }
        }
    });
    let real = spawn_worker(&dir);

    let run = run_fleet_cli(
        &dir,
        "blackhole",
        &[real.addr.clone(), hole_addr],
        &["--shard-size", "1", "--shard-deadline-ms", "500"],
    );
    assert!(run.status.success(), "fleet failed: {}", run.stderr);
    assert_same_bytes(&run.journal, &seq_journal, "merged journal after timeout");
    assert_same_bytes(&run.artifact, &seq_artifact, "artifact after timeout");
    let report = report_json(&run);
    assert!(
        report_num(&report, "redispatches") >= 1.0,
        "the black hole's shard must time out and be stolen: {}",
        run.stderr
    );
    drop(hole); // leaked on purpose if still accepting
}

#[test]
fn all_workers_dead_falls_back_in_process_and_flags_the_run() {
    let dir = tmp_dir("alldead");
    let (seq_journal, seq_artifact) = sequential_baseline(&dir);
    // Bind-then-drop twice: ports that refuse connections immediately.
    let dead_addr = || {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let run = run_fleet_cli(&dir, "alldead", &[dead_addr(), dead_addr()], &[]);
    assert!(
        run.status.success(),
        "a dead fleet must complete in degraded mode, not fail: {}",
        run.stderr
    );
    assert!(
        run.stderr.contains("degraded mode"),
        "the operator must be told: {}",
        run.stderr
    );
    // Degraded mode still keeps the byte-identity contract — the flag
    // lives in the fleet report, not in the survey artifacts.
    assert_same_bytes(&run.journal, &seq_journal, "fallback journal");
    assert_same_bytes(&run.artifact, &seq_artifact, "fallback artifact");
    let report = report_json(&run);
    assert_eq!(
        report
            .get("fallback")
            .and_then(exareq::profile::minijson::Json::as_bool),
        Some(true)
    );
    assert!(report_num(&report, "fallback_shards") >= 1.0);
    let metrics = report
        .get("metrics")
        .and_then(exareq::profile::minijson::Json::as_str)
        .expect("metrics exposition in report");
    assert!(
        metrics.contains("fleet_worker_state{state=\"dead\"} 2\n"),
        "{metrics}"
    );
    assert!(metrics.contains("fleet_fallback_shards_total"), "{metrics}");
}

#[test]
fn duplicate_shard_completion_is_dropped_first_wins() {
    use exareq::profile::journal::JournalEntry;
    let entry = |p: u64, n: u64| JournalEntry {
        p,
        n,
        attempts: 1,
        seed: 7,
        skip_reason: None,
        observations: Vec::new(),
    };
    let seq = ShardSequencer::new(1);
    assert!(seq.put(0, vec![entry(2, 64)]), "first completion wins");
    assert!(
        !seq.put(0, vec![entry(2, 64)]),
        "a duplicate completion before commit is dropped"
    );
    let committed = seq
        .take(0, Duration::from_millis(10))
        .expect("deposited shard");
    assert_eq!(committed.len(), 1);
    assert!(
        !seq.put(0, vec![entry(2, 64)]),
        "a late completion after commit is dropped too"
    );
}
