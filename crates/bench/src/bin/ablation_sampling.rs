//! Ablation **A4**: burst sampling vs exact monitoring for locality
//! measurement, and median vs mean aggregation.
//!
//! Threadspotter keeps its runtime dilation near 8× by monitoring bursts
//! of accesses and skipping the gaps (Section II-B); the paper then models
//! the *median* of the samples because loop-boundary accesses inject large
//! outliers. This study quantifies both choices on the MILC locality
//! kernel (whose stack distance grows with n — the hard case).
//!
//! Run with `cargo run --release -p exareq-bench --bin ablation_sampling`.

use exareq_apps::{Milc, MiniApp};
use exareq_bench::write_report;
use exareq_core::fit::{fit_single, FitConfig};
use exareq_core::measurement::Experiment;
use exareq_locality::{BurstSampler, BurstSchedule};

fn measure_sd(n: u64, schedule: BurstSchedule, use_mean: bool) -> Option<f64> {
    let mut s = BurstSampler::new(schedule);
    Milc.run_locality(n, &mut s);
    let g = &s.groups()[0]; // the staggered fermion field (SD ∝ n)
    if use_mean {
        g.mean_stack()
    } else {
        g.median_stack()
    }
}

fn main() {
    let ns: [u64; 5] = [64, 256, 1024, 4096, 16384];
    let schedules: [(&str, BurstSchedule); 3] = [
        ("exact (every access)", BurstSchedule::always()),
        (
            "1:8 duty cycle",
            BurstSchedule {
                burst: 512,
                gap: 7 * 512,
            },
        ),
        (
            "1:32 duty cycle",
            BurstSchedule {
                burst: 256,
                gap: 31 * 256,
            },
        ),
    ];

    let mut out = String::new();
    out.push_str("== Ablation A4: burst sampling and aggregation for locality ==\n\n");
    out.push_str("median stack distance of the MILC fermion field (truth: ∝ n):\n");
    out.push_str(&format!("{:<24}", "schedule"));
    for n in ns {
        out.push_str(&format!(" {:>10}", format!("n={n}")));
    }
    out.push_str("   fitted model\n");

    let cfg = FitConfig::default();
    for (label, schedule) in schedules {
        out.push_str(&format!("{label:<24}"));
        let mut exp = Experiment::new(vec!["n"]);
        let mut incomplete = false;
        for n in ns {
            match measure_sd(n, schedule, false) {
                Some(v) => {
                    out.push_str(&format!(" {v:>10.0}"));
                    exp.push(&[n as f64], v);
                }
                None => {
                    out.push_str(&format!(" {:>10}", "-"));
                    incomplete = true;
                }
            }
        }
        // Configurations whose groups fall under the ≥100-sample rule are
        // dropped (the paper's filter); the model is fitted on the rest.
        let _ = incomplete;
        if exp.points.len() < 3 {
            out.push_str("   (insufficient samples)\n");
        } else {
            match fit_single(&exp, &cfg) {
                Ok(m) => out.push_str(&format!("   {}\n", m.model)),
                Err(e) => out.push_str(&format!("   fit failed: {e}\n")),
            }
        }
    }

    // Median vs mean on the paper's motivating pattern (Section II-B): a
    // loop with good locality re-entered after long scans — "many memory
    // accesses can happen between different executions of the loop, leading
    // to higher stack distance when returning to the loop later on".
    out.push_str("\nmedian vs mean on a re-entered loop (window 64, scans between):\n");
    for scan_len in [1_000u64, 10_000, 100_000] {
        let mut s = BurstSampler::new(BurstSchedule::always());
        let g_loop = s.register_group("inner loop");
        let g_scan = s.register_group("between-loop scan");
        let mut scan_base = 1_000_000u64;
        for _outer in 0..60 {
            for _rep in 0..3 {
                for i in 0..64u64 {
                    s.access(g_loop, i);
                }
            }
            for j in 0..scan_len {
                s.access(g_scan, scan_base + j);
            }
            scan_base += scan_len;
        }
        let g = &s.groups()[g_loop];
        out.push_str(&format!(
            "  scan {scan_len:>7}: median {:>8.0}   mean {:>12.1}   (in-loop truth: 63)\n",
            g.median_stack().unwrap(),
            g.mean_stack().unwrap()
        ));
    }
    out.push_str(
        "\nReading: the burst schedules reproduce the exact medians (sampling\n\
         selects a subset of exact distances — the analyzer still observes\n\
         every access), so the paper's 8×-dilation compromise costs nothing\n\
         for the modeled statistic; it only thins the sample count, which the\n\
         ≥100-sample rule guards. The median matches the in-loop common case\n\
         the paper models, while the mean is pulled up by loop-boundary\n\
         outliers — the stated reason for modeling the median (Section II-B).\n",
    );
    print!("{out}");
    write_report("ablation_sampling.txt", &out);
}
