//! `exareq` — command-line front end for the requirements-engineering
//! workflow: survey an application on the simulator, generate its models,
//! and run the co-design analyses, all without writing Rust.
//!
//! ```text
//! exareq apps                               list the built-in twins
//! exareq survey <app> [-o FILE] [--p LIST] [--n LIST]
//! exareq model <survey.json> [--coarse] [--artifact FILE]  fit and print Table II-style models
//! exareq upgrades [<survey.json>]           Table V analysis (paper catalog by default)
//! exareq strawman [--network]               Table VII analysis (+E9 refinement)
//! ```

use exareq::apps::{
    all_apps_extended as all_apps, default_jobs, run_survey_parallel, AppGrid, RetryPolicy,
    SurveyRunError,
};
use exareq::chaos::{ChaosPlan, ChaosProxy};
use exareq::codesign::report::{render_requirements, render_strawman_block, render_upgrade_block};
use exareq::codesign::{
    analyze_strawmen, analyze_upgrade, analyze_with_network, baseline_expectation, catalog,
    default_network, table_six, AppRequirements, SystemSkeleton, Upgrade,
};
use exareq::core::cancel::{CancelToken, Deadline};
use exareq::core::collective::render_comm_rows;
use exareq::core::fsio;
use exareq::core::multiparam::MultiParamConfig;
use exareq::fleet::{run_fleet, FleetConfig};
use exareq::pipeline::model_requirements;
use exareq::profile::journal::{apply_entry, SurveyJournal, SurveyManifest};
use exareq::profile::Survey;
use exareq::router::{ProxyConfig, RouterConfig};
use exareq::serve::{registry::Fitter, ModelRegistry, ServeConfig};
use exareq::sim::FaultPlan;
use std::net::SocketAddr;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
exareq — lightweight requirements engineering for exascale co-design

USAGE:
    exareq apps
    exareq survey <app> [-o FILE] [--p 2,4,8,...] [--n 64,256,...]
                  [--faults seed=S,crash=R@OP,drop=P,dup=P,delay=P,corrupt=P]
                  [--journal FILE] [--resume] [--max-retries N]
                  [--config-budget-ms N] [--deadline-ms N] [--jobs N]
    exareq model <survey.json> [--coarse] [--artifact FILE]
    exareq fit <data.csv> [--coarse]
    exareq upgrades [<survey.json>]
    exareq strawman [--network]
    exareq report <survey.json> [-o FILE]
    exareq serve --model-dir DIR [--addr HOST:PORT] [--threads N]
                 [--queue-depth N] [--request-deadline-ms N]
                 [--drain-deadline-ms N] [--keep-alive-requests N]
                 [--idle-deadline-ms N] [--allow-measure]
                 [--refresh-min-points N] [--refresh-full-every N]
                 [--refresh-cv-drift X]
    exareq plan --artifact FILE --p 2,4,8,... --n 64,256,...
                [--metric FIELD] [--observations FILE] [--top K] [--json]
    exareq fleet <app> --workers HOST:PORT,... [-o FILE]
                 [--p 2,4,8,...] [--n 64,256,...] [--faults SPEC]
                 [--journal FILE] [--resume] [--max-retries N]
                 [--shard-size N] [--shard-deadline-ms N] [--hold-ms N]
                 [--fleet-report FILE] [--deadline-ms N]
    exareq router --replicas HOST:PORT,... --model-dir DIR
                  [--addr HOST:PORT] [--threads N] [--queue-depth N]
                  [--request-deadline-ms N] [--drain-deadline-ms N]
                  [--probe-interval-ms N] [--hedge-after-ms N]
    exareq chaos --listen HOST:PORT --upstream HOST:PORT
                 [--chaos-seed N] [--faults SPEC]

COMMANDS:
    apps       list the built-in behavioural twins
    survey     run the measurement grid for one twin, write a survey JSON
    model      generate requirement models from a survey JSON; --artifact
               additionally writes them as a requirements artifact that
               `exareq serve` loads without fitting (and can refresh)
    fit        fit one PMNF model to external CSV measurements
               (header row names the parameters; last column is the value)
    upgrades   Table V-style upgrade comparison (fitted models if a survey
               is given, the published Table II catalog otherwise)
    strawman   Table VII-style exascale mapping; --network adds the
               bandwidth-aware lower bounds (E9)
    report     full co-design dossier (models, plots, outlook, upgrades,
               straw-man verdict) as Markdown
    serve      long-running co-design query daemon over HTTP/1.1
    plan       adaptive sampling: rank unmeasured (p, n) configurations
               by how much measuring each would shrink a served model's
               prediction variance (leverage x LOO residual variance)
    fleet      shard a survey across serve workers, surviving their
               failure; merged artifacts are byte-identical to survey
    router     replica-aware front-end for a set of serve daemons:
               consistent-hash placement, failover, hedging, and a
               degraded-mode local fallback
    chaos      deterministic fault-injecting TCP proxy: put it between a
               client (router, fleet, curl) and an upstream daemon to
               soak the stack under seeded network faults

FAULT INJECTION (survey --faults):
    deterministic, seed-driven fault plan applied to every simulated run:
    seed=U64 PRNG seed, crash=RANK@OP (repeatable) kills a rank at its
    N-th communication op, drop/dup/delay/corrupt=P per-message
    probabilities in [0,1], corrupt_bytes=N flipped bytes per corruption.
    Degraded runs are flagged in the survey; later `exareq model` drops
    and reports the affected measurements.

RESUMABLE SURVEYS (survey --journal):
    --journal FILE          write-ahead journal: every completed (p, n)
                            configuration is fsynced to FILE before the
                            sweep moves on, so a crash or kill loses at
                            most the configuration in flight
    --resume                continue an interrupted sweep from FILE;
                            journaled configurations replay exactly and
                            are never re-measured (the journal must match
                            the app, grid and fault spec it was made for)
    --max-retries N         re-measure a failed or degraded configuration
                            up to N extra times, each under a fresh
                            deterministically derived fault seed
    --config-budget-ms N    wall-clock allowance per configuration before
                            its first retry (doubling per further retry);
                            exhausting it aborts the sweep like a killed
                            batch job — resume from the journal

PARALLEL SWEEPS (survey --jobs):
    --jobs N                measure up to N (p, n) configurations
                            concurrently. Results are committed to the
                            journal and the survey in canonical grid
                            order, so every artifact — survey JSON,
                            journal bytes, resume behaviour, exit codes —
                            is byte-identical to --jobs 1. The default is
                            the machine's available parallelism, capped
                            so N jobs x p rank threads do not
                            oversubscribe the cores.

PREEMPTION (survey):
    SIGINT (Ctrl-C) and SIGTERM (what batch schedulers send) cancel the
    sweep *cooperatively*: the configuration in flight is discarded, the
    journal keeps every completed configuration (each was fsynced before
    it counted), a partial survey artifact flagged \"incomplete\" is
    written when a journal is attached, and the exact resume command is
    printed. --deadline-ms N self-preempts the same way after N
    milliseconds of wall clock — set it just under the batch allocation
    so the sweep parks itself cleanly instead of being killed mid-write.

SERVING (serve):
    loads every survey / fitted-model artifact in --model-dir (parsed
    with the in-tree JSON codec, cached by content hash, hot-reloaded
    when bytes change) and answers co-design queries over HTTP/1.1:
    GET /healthz /models /metrics (Prometheus text), POST /predict
    /predict_batch /upgrade /strawman. A single poll(2) event loop
    answers fast queries inline; slow work (/measure, held predicts)
    goes to --threads N workers (default 4) behind a queue of
    --queue-depth (default 64); overflow is answered 503 +
    Retry-After. Connections are HTTP/1.1 keep-alive: up to
    --keep-alive-requests per connection (default 1000), idle
    connections reaped after --idle-deadline-ms (default 5000). Each
    request runs under --request-deadline-ms (default 2000); expiry
    answers 504 (408 while still reading). SIGINT/SIGTERM stops
    reading, answers what is buffered, drains in-flight requests
    within --drain-deadline-ms (default 5000), and exits 0 — a
    drained server has lost no work, so the interrupted code 5 is
    reserved for sweeps. --allow-measure additionally opts the daemon
    in as a fleet measurement worker (POST /measure); without it the
    endpoint answers 403.

ONLINE REFRESH (serve + plan):
    POST /observations feeds live measurements back into the served
    models: {\"model\":NAME,\"metric\":FIELD,\"p\":P,\"n\":N,\"value\":V}.
    Each observation is fsynced to the model's observation journal
    (<artifact>.obs.jsonl, same crash-consistent discipline as survey
    journals) before the 200, then a staleness policy decides: below
    --refresh-min-points (default 8) keep serving; otherwise refit the
    served hypothesis' coefficients incrementally (rank-1 QR over the
    journal); every --refresh-full-every observations (default 32), or
    when the incremental fit's cross-validated SMAPE drifts more than
    --refresh-cv-drift points past the last full fit's (default 5),
    re-run the whole PMNF hypothesis search. Refits republish the
    artifact atomically (a SIGKILL mid-refit leaves the old file) with a
    quality block — per-metric CV SMAPE, LOO 95% confidence interval,
    observation count — surfaced in GET /models, the ci95_rel member of
    POST /predict answers, and refresh_* Prometheus series.
    `exareq plan` reads the same artifact + journal offline and ranks
    candidate (p, n) configurations by expected variance reduction, so
    the next observation is spent where it tightens the model most.

FLEET SWEEPS (fleet):
    shards the pending (p, n) grid across `exareq serve --allow-measure`
    worker daemons (--workers, comma-separated) and merges the results
    into one journal and survey artifact **byte-identical to a
    single-process `exareq survey` run**. A background /healthz prober
    health-gates dispatch (healthy -> suspect -> dead, with hysteresis
    before a flapping worker is trusted again); shards from dead or
    timed-out workers are re-queued and stolen by healthy ones; a
    duplicate completion is dropped, never committed twice. If every
    worker dies — or a shard exhausts its re-dispatch budget — the
    coordinator measures the remaining shards in-process and flags the
    run in the --fleet-report artifact (default fleet_<app>.json): a
    degraded fleet completes, it never silently stalls.
    --shard-size N configs per shard (default 2); --shard-deadline-ms
    is the per-shard worker deadline (expiry answers 504 and the shard
    is re-dispatched); --hold-ms asks workers to pause before measuring
    (a chaos/testing hook); --journal/--resume/--max-retries/
    --deadline-ms behave exactly as under survey.

ROUTING (router):
    reverse-proxies POST /predict /upgrade /strawman and GET /models
    across --replicas (comma-separated `exareq serve` daemons). Model
    keys are consistent-hashed over the healthy replicas (bounded
    load), so repeat queries for one model hit the same warm registry
    and a replica death remaps only its own keys. A /healthz prober
    per replica drives the same healthy -> suspect -> dead hysteresis
    the fleet uses; request failures additionally trip a per-replica
    circuit breaker. A failed attempt fails over to the next ring
    replica after a jittered pause; a slow one is hedged once after a
    p99-derived delay (--hedge-after-ms until enough samples exist) —
    first byte-valid 200 wins. When no replica can answer, the router
    evaluates the query in-process against its own --model-dir and
    flags the response with `X-Exareq-Degraded: local` — every 200,
    on every path, is byte-identical to the direct library call.
    GET /healthz and /metrics (Prometheus text: router_failover_total,
    router_hedge_*_total, router_degraded_total, router_upstream_state)
    are answered by the router itself. SIGINT/SIGTERM drains like
    serve and exits 0.

NETWORK CHAOS (chaos):
    a deterministic fault-injecting TCP proxy. Every accepted connection
    draws its fault — or none — from a SplitMix64 stream derived from
    (--chaos-seed, connection index), so the same seed against the same
    request sequence injects byte-for-byte the same faults. --faults is
    a comma-separated spec (all probabilities in [0,1]):
        seed=U64            PRNG seed (--chaos-seed overrides it)
        latency=P@MS        delay the relay by ~MS before answering
        partition=P         black-hole: accept, deliver nothing
        reset=P             relay upstream, close the client mid-stream
                            with zero response bytes
        truncate=P          deliver head + a strict prefix of the body
        slowreq=P           drip the request upstream one byte at a time
        slowresp=P          drip the response back one byte at a time
        corrupt=P@N         flip up to N response-body bytes
        drip_ms=MS          interval between dripped bytes (default 80)
    e.g. --faults \"latency=0.2@150,reset=0.1,corrupt=0.05@4\". With no
    --faults the proxy relays transparently. SIGINT/SIGTERM stops the
    proxy and prints the per-class injected-fault counts; the hardened
    net client, router, and fleet are expected to absorb every class
    without a corrupted or hung answer.

EXIT CODES:
    0   success (for serve: including a signal-drained shutdown)
    2   usage error (unknown command/application, malformed flag)
    3   data error (unreadable input, failed parse/fit/write, serve
        bind failure)
    4   resumable abort (per-config wall-clock budget exhausted;
        journaled configurations are safe — re-run with --resume)
    5   interrupted (SIGINT/SIGTERM or --deadline-ms; journaled
        configurations are safe — re-run with --resume)
";

/// A failed invocation, classified for the documented exit-code contract
/// (see `EXIT CODES` in [`USAGE`]; asserted in `tests/cli.rs`):
/// 0 success · 2 usage · 3 data · 4 resumable abort · 5 interrupted.
/// Code 1 is deliberately unused — it is what a panicking process reports,
/// so a scheduler can tell a controlled failure from a crash.
#[derive(Debug)]
enum CliError {
    /// Malformed invocation: unknown command or application, bad flag.
    Usage(String),
    /// Unreadable or malformed input data, failed fit, failed write.
    Data(String),
    /// The sweep aborted (wall-clock budget) but the journal makes it
    /// resumable.
    Resumable(String),
    /// The sweep was cooperatively cancelled (signal or deadline).
    Interrupted(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    fn exit_code(&self) -> ExitCode {
        ExitCode::from(match self {
            CliError::Usage(_) => 2,
            CliError::Data(_) => 3,
            CliError::Resumable(_) => 4,
            CliError::Interrupted(_) => 5,
        })
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Data(m)
            | CliError::Resumable(m)
            | CliError::Interrupted(m) => m,
        }
    }
}

/// Unclassified `?`-propagated errors are data errors; usage errors are
/// wrapped explicitly at the argument-parsing sites.
impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Data(m)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "apps" => cmd_apps(),
        "survey" => cmd_survey(rest),
        "model" => cmd_model(rest),
        "fit" => cmd_fit(rest),
        "upgrades" => cmd_upgrades(rest),
        "strawman" => cmd_strawman(rest),
        "report" => cmd_report(rest),
        "serve" => cmd_serve(rest),
        "plan" => cmd_plan(rest),
        "fleet" => cmd_fleet(rest),
        "router" => cmd_router(rest),
        "chaos" => cmd_chaos(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            e.exit_code()
        }
    }
}

fn cmd_apps() -> Result<(), CliError> {
    println!("built-in behavioural twins (Table II study applications):");
    for app in all_apps() {
        println!("  {}", app.name());
    }
    Ok(())
}

fn parse_list<T: std::str::FromStr>(s: &str) -> Result<Vec<T>, String> {
    s.split(',')
        .map(|x| {
            x.trim()
                .parse::<T>()
                .map_err(|_| format!("cannot parse `{x}` in list `{s}`"))
        })
        .collect()
}

/// Extracts `--flag VALUE` from an argument list, returning the remainder.
fn take_opt(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Extracts a valueless `--flag` from an argument list.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn cmd_survey(rest: &[String]) -> Result<(), CliError> {
    let mut args: Vec<String> = rest.to_vec();
    let take = |args: &mut Vec<String>, flag| take_opt(args, flag).map_err(CliError::Usage);
    let out_file = take(&mut args, "-o")?;
    let p_list = take(&mut args, "--p")?;
    let n_list = take(&mut args, "--n")?;
    let fault_spec = take(&mut args, "--faults")?;
    let journal_path = take(&mut args, "--journal")?;
    let resume = take_flag(&mut args, "--resume");
    let max_retries = take(&mut args, "--max-retries")?;
    let budget_ms = take(&mut args, "--config-budget-ms")?;
    let deadline_ms = take(&mut args, "--deadline-ms")?;
    let jobs_opt = take(&mut args, "--jobs")?;
    if resume && journal_path.is_none() {
        return Err(CliError::usage("--resume requires --journal FILE"));
    }
    let Some(name) = args.first() else {
        return Err(CliError::usage(
            "survey requires an application name (see `exareq apps`)",
        ));
    };
    let apps = all_apps();
    let app = apps
        .iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            CliError::usage(format!("unknown application `{name}` (see `exareq apps`)"))
        })?;

    let mut grid = AppGrid::default();
    if let Some(p) = &p_list {
        grid.p_values = parse_list(p).map_err(CliError::Usage)?;
    }
    if let Some(n) = &n_list {
        grid.n_values = parse_list(n).map_err(CliError::Usage)?;
    }
    let faults = match &fault_spec {
        Some(spec) => {
            FaultPlan::parse(spec).map_err(|e| CliError::usage(format!("--faults {spec}: {e}")))?
        }
        None => FaultPlan::none(),
    };
    let mut retry = RetryPolicy::default();
    if let Some(r) = &max_retries {
        let extra: u32 = r.parse().map_err(|_| {
            CliError::usage(format!("--max-retries: cannot parse `{r}` as a count"))
        })?;
        retry.max_attempts = 1 + extra;
    }
    if let Some(ms) = &budget_ms {
        let ms: u64 = ms.parse().map_err(|_| {
            CliError::usage(format!(
                "--config-budget-ms: cannot parse `{ms}` as milliseconds"
            ))
        })?;
        retry.config_budget = Some(Duration::from_millis(ms));
    }
    let jobs = match &jobs_opt {
        Some(j) => {
            let j: usize = j
                .parse()
                .map_err(|_| CliError::usage(format!("--jobs: cannot parse `{j}` as a count")))?;
            if j == 0 {
                return Err(CliError::usage("--jobs must be at least 1"));
            }
            j
        }
        None => default_jobs(&grid),
    };

    // Cancellation: SIGINT/SIGTERM route to the token via the in-tree
    // sigaction binding; --deadline-ms arms a wall-clock deadline on the
    // same token. Both stop the sweep at its next checkpoint.
    let cancel = CancelToken::new();
    exareq::signal::install_termination_handlers(&cancel);
    let cancel = match &deadline_ms {
        Some(ms) => {
            let ms: u64 = ms.parse().map_err(|_| {
                CliError::usage(format!(
                    "--deadline-ms: cannot parse `{ms}` as milliseconds"
                ))
            })?;
            cancel.with_deadline(Deadline::after(Duration::from_millis(ms)))
        }
        None => cancel,
    };
    eprintln!(
        "surveying {} over p={:?}, n={:?} ({jobs} job(s)) ...",
        app.name(),
        grid.p_values,
        grid.n_values
    );
    if let Some(spec) = &fault_spec {
        eprintln!(
            "fault plan `{spec}` ({})",
            if faults.is_active() {
                "active"
            } else {
                "inert — no crash points or probabilities set"
            }
        );
    }
    let mut journal = match &journal_path {
        Some(jp) => {
            let manifest = SurveyManifest::new(
                app.name(),
                grid.p_values.iter().map(|&p| p as u64).collect(),
                grid.n_values.clone(),
                fault_spec.clone().unwrap_or_default(),
            );
            let j = if resume && Path::new(jp).exists() {
                let j = SurveyJournal::resume(jp, &manifest)
                    .map_err(|e| format!("resuming journal {jp}: {e}"))?;
                eprintln!(
                    "resuming from journal {jp}: {} configuration(s) already complete{}",
                    j.entries().len(),
                    if j.dropped_tail() {
                        " (torn tail line truncated)"
                    } else {
                        ""
                    }
                );
                j
            } else {
                if !resume && Path::new(jp).exists() {
                    return Err(CliError::Data(format!(
                        "journal {jp} already exists; pass --resume to continue that sweep \
                         or choose a fresh journal path"
                    )));
                }
                SurveyJournal::create(jp, manifest)
                    .map_err(|e| format!("creating journal {jp}: {e}"))?
            };
            Some(j)
        }
        None => None,
    };
    let artifact = out_file
        .clone()
        .unwrap_or_else(|| format!("survey_{}.json", name.to_lowercase()));
    // The exact invocation that continues this sweep after an abort.
    let resume_command = |jp: &str| {
        let mut c = format!("exareq survey {name}");
        for (flag, value) in [
            ("-o", &out_file),
            ("--p", &p_list),
            ("--n", &n_list),
            ("--faults", &fault_spec),
            ("--max-retries", &max_retries),
            ("--config-budget-ms", &budget_ms),
            ("--jobs", &jobs_opt),
        ] {
            if let Some(v) = value {
                c.push_str(&format!(" {flag} {v}"));
            }
        }
        c.push_str(&format!(" --journal {jp} --resume"));
        c
    };
    let survey = match run_survey_parallel(
        app.as_ref(),
        &grid,
        &faults,
        &retry,
        journal.as_mut(),
        &cancel,
        jobs,
    ) {
        Ok(s) => s,
        Err(e @ SurveyRunError::BudgetExhausted { .. }) => {
            return Err(match &journal_path {
                Some(jp) => CliError::Resumable(format!(
                    "{e}\nevery completed configuration is safe in {jp}; \
                     re-run with\n  {}\nto continue",
                    resume_command(jp)
                )),
                None => CliError::Resumable(format!(
                    "{e}\nno journal was attached, so completed configurations are lost; \
                     re-run with --journal FILE to make the sweep resumable"
                )),
            });
        }
        Err(SurveyRunError::Cancelled { reason }) => {
            // Graceful shutdown: the journal already holds every completed
            // configuration (each append was fsynced before it counted; the
            // config in flight was discarded, never recorded). Write a
            // partial artifact flagged `incomplete` and print the exact
            // resume command.
            return Err(match (&journal_path, journal.as_ref()) {
                (Some(jp), Some(j)) => {
                    let mut partial = Survey::new(app.name());
                    for entry in j.entries() {
                        apply_entry(&mut partial, entry);
                    }
                    partial.incomplete = true;
                    let json = partial
                        .try_to_json()
                        .map_err(|e| format!("serializing partial survey: {e}"))?;
                    fsio::write_atomic(&artifact, json).map_err(|e| e.to_string())?;
                    eprintln!(
                        "partial survey ({} of {} configurations, flagged incomplete) \
                         written to {artifact}",
                        j.entries().len(),
                        grid.p_values.len() * grid.n_values.len()
                    );
                    CliError::Interrupted(format!(
                        "survey cancelled: {reason}\nevery completed configuration is \
                         safe in {jp}; re-run with\n  {}\nto continue",
                        resume_command(jp)
                    ))
                }
                _ => CliError::Interrupted(format!(
                    "survey cancelled: {reason}\nno journal was attached, so completed \
                     configurations are lost; re-run with --journal FILE to make the \
                     sweep resumable"
                )),
            });
        }
        Err(e) => return Err(CliError::Data(e.to_string())),
    };
    let total = grid.p_values.len() * grid.n_values.len();
    let path = artifact;
    let json = survey
        .try_to_json()
        .map_err(|e| format!("serializing survey: {e}"))?;
    fsio::write_atomic(&path, json).map_err(|e| e.to_string())?;
    println!(
        "{} observations over {} configurations written to {path}",
        survey.observations.len(),
        survey.config_count()
    );
    println!(
        "survey complete: {}/{} configurations",
        survey.config_count() + survey.skipped.len(),
        total
    );
    let degraded = survey.degraded_configs();
    if !degraded.is_empty() {
        println!("degraded configurations (flagged in the survey):");
        for (p, n) in degraded {
            println!("  p={p} n={n}");
        }
    }
    if !survey.skipped.is_empty() {
        println!("skipped configurations (no usable measurement):");
        for s in &survey.skipped {
            println!("  p={} n={}: {}", s.p, s.n, s.reason);
        }
    }
    Ok(())
}

fn load_survey(path: &str) -> Result<Survey, String> {
    let text = fsio::read_to_string(path).map_err(|e| e.to_string())?;
    Survey::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn fit_survey(path: &str, coarse: bool) -> Result<AppRequirements, String> {
    let survey = load_survey(path)?;
    let cfg = if coarse {
        MultiParamConfig::coarse()
    } else {
        MultiParamConfig::default()
    };
    let modeled = model_requirements(&survey, &cfg).map_err(|e| format!("modeling: {e}"))?;
    println!("{}", render_requirements(&modeled.requirements));
    println!("communication by collective:");
    for row in render_comm_rows(&modeled.comm_symbolic) {
        println!("  {row}");
    }
    println!("\nquality:");
    for (label, fm) in &modeled.fitted {
        println!(
            "  {label:<32} cv-SMAPE {:>8.4}%   R² {:.5}",
            fm.cv_smape, fm.r2
        );
    }
    println!("\nin words:");
    for (label, m) in [
        ("memory footprint", &modeled.requirements.bytes_used),
        ("computation", &modeled.requirements.flops),
        ("communication", &modeled.requirements.comm_bytes),
        ("memory access", &modeled.requirements.loads_stores),
    ] {
        println!("  {label}: {}", exareq::core::describe::describe(m));
    }
    if !modeled.dropped.is_empty() {
        eprintln!(
            "\nwarning: {} measurement(s) excluded from the fits:",
            modeled.dropped.len()
        );
        for d in &modeled.dropped {
            eprintln!("  - {d}");
        }
    }
    Ok(modeled.requirements)
}

fn cmd_model(rest: &[String]) -> Result<(), CliError> {
    let mut args: Vec<String> = rest.to_vec();
    let coarse = if let Some(i) = args.iter().position(|a| a == "--coarse") {
        args.remove(i);
        true
    } else {
        false
    };
    let artifact_out = if let Some(i) = args.iter().position(|a| a == "--artifact") {
        args.remove(i);
        if i >= args.len() {
            return Err(CliError::usage("--artifact requires a file path"));
        }
        Some(args.remove(i))
    } else {
        None
    };
    let Some(path) = args.first() else {
        return Err(CliError::usage("model requires a survey JSON path"));
    };
    let app = fit_survey(path, coarse)?;
    if let Some(out) = artifact_out {
        // A requirements artifact (not a survey): the shape `exareq serve`
        // loads without fitting and — unlike a survey artifact — accepts
        // POST /observations refits against.
        fsio::write_atomic(&out, exareq::serve::artifact::requirements_to_string(&app))
            .map_err(|e| e.to_string())?;
        println!("requirements artifact written to {out}");
    }
    Ok(())
}

fn cmd_fit(rest: &[String]) -> Result<(), CliError> {
    let mut args: Vec<String> = rest.to_vec();
    let coarse = if let Some(i) = args.iter().position(|a| a == "--coarse") {
        args.remove(i);
        true
    } else {
        false
    };
    let Some(path) = args.first() else {
        return Err(CliError::usage("fit requires a CSV path"));
    };
    let text = fsio::read_to_string(path).map_err(|e| e.to_string())?;
    let exp = exareq::core::csv::experiment_from_csv(&text).map_err(|e| e.to_string())?;
    let cfg = if coarse {
        MultiParamConfig::coarse()
    } else {
        MultiParamConfig::default()
    };
    let fitted =
        exareq::core::multiparam::fit_multi(&exp, &cfg).map_err(|e| format!("fitting: {e}"))?;
    println!("model    : {}", fitted.model);
    println!(
        "quality  : cv-SMAPE {:.4}%   in-sample SMAPE {:.4}%   R² {:.6}",
        fitted.cv_smape, fitted.smape, fitted.r2
    );
    println!(
        "in words : {}",
        exareq::core::describe::describe(&fitted.model)
    );
    Ok(())
}

fn cmd_upgrades(rest: &[String]) -> Result<(), CliError> {
    let apps: Vec<AppRequirements> = if let Some(path) = rest.first() {
        vec![fit_survey(path, false)?]
    } else {
        catalog::paper_models()
    };
    let base = SystemSkeleton::reference_large();
    println!(
        "base skeleton: p = {:.0e}, {:.1e} B/process\n",
        base.processes, base.mem_per_process
    );
    for up in Upgrade::ALL {
        let mut outcomes = Vec::new();
        for app in &apps {
            match analyze_upgrade(app, &base, &up) {
                Ok(o) => outcomes.push(o),
                Err(e) => println!("note: {}: {e}", app.name),
            }
        }
        let baseline = baseline_expectation(&base, &up);
        println!(
            "{}",
            render_upgrade_block(
                &format!("{}: {}", up.name, up.description),
                &outcomes,
                &baseline
            )
        );
    }
    Ok(())
}

fn cmd_report(rest: &[String]) -> Result<(), CliError> {
    let mut args: Vec<String> = rest.to_vec();
    let out_file = take_opt(&mut args, "-o").map_err(CliError::Usage)?;
    let Some(path) = args.first() else {
        return Err(CliError::usage("report requires a survey JSON path"));
    };
    let survey = load_survey(path)?;
    let cfg = MultiParamConfig::default();
    let modeled = model_requirements(&survey, &cfg).map_err(|e| format!("modeling: {e}"))?;
    let r = &modeled.requirements;

    let mut md = String::new();
    md.push_str(&format!(
        "# Co-design dossier: {}

",
        survey.app
    ));
    md.push_str(&format!(
        "{} observations over {} configurations.

",
        survey.observations.len(),
        survey.config_count()
    ));

    md.push_str(
        "## Requirement models (per process)

```
",
    );
    md.push_str(&render_requirements(r));
    md.push_str(
        "```

Communication by collective:

```
",
    );
    for row in render_comm_rows(&modeled.comm_symbolic) {
        md.push_str(&format!(
            "{row}
"
        ));
    }
    md.push_str(
        "```

In words:

",
    );
    for (label, m) in [
        ("memory footprint", &r.bytes_used),
        ("computation", &r.flops),
        ("communication", &r.comm_bytes),
        ("memory access", &r.loads_stores),
    ] {
        md.push_str(&format!(
            "- {label}: {}
",
            exareq::core::describe::describe(m)
        ));
    }

    if !modeled.dropped.is_empty() {
        md.push_str(
            "
## Dropped measurements

",
        );
        for d in &modeled.dropped {
            md.push_str(&format!(
                "- {d}
"
            ));
        }
    }

    let warnings = r.warnings();
    md.push_str(
        "
## Scaling hazards

",
    );
    if warnings.is_empty() {
        md.push_str(
            "none detected.
",
        );
    } else {
        for w in &warnings {
            md.push_str(&format!(
                "- ⚠ {w}
"
            ));
        }
    }

    md.push_str(
        "
## Fit check (computation vs p, n at grid maximum)

```
",
    );
    let flops_exp = exareq::pipeline::experiment_from_triples(
        &survey.triples(exareq::profile::MetricKind::Flops),
    );
    md.push_str(&exareq::core::quality::render_fit_plot(
        &r.flops, &flops_exp, 0, 64, 14,
    ));
    md.push_str(
        "```
",
    );

    md.push_str(
        "
## Scaling outlook (1 GB per process)

```
",
    );
    let rows = exareq::codesign::scaling_outlook(r, &exareq::codesign::decade_schedule(), 1e9);
    md.push_str(&exareq::codesign::render_outlook(&survey.app, &rows));
    md.push_str(
        "```
",
    );

    md.push_str(
        "
## Upgrade response (Table III scenarios)

```
",
    );
    let base = SystemSkeleton::reference_large();
    for up in Upgrade::ALL {
        match analyze_upgrade(r, &base, &up) {
            Ok(o) => md.push_str(&format!(
                "{:<20} problem x{:.2}, overall x{:.2}, comp x{:.2}, comm x{:.2}, mem x{:.2}
",
                up.description,
                o.ratio_n,
                o.ratio_overall,
                o.ratio_rates[0],
                o.ratio_rates[1],
                o.ratio_rates[2]
            )),
            Err(e) => md.push_str(&format!(
                "{:<20} {e}
",
                up.description
            )),
        }
    }
    md.push_str(
        "```
",
    );

    md.push_str(
        "
## Exascale straw-man verdict

```
",
    );
    md.push_str(&render_strawman_block(&analyze_strawmen(r, &table_six())));
    let net = default_network(&table_six());
    if let Some(res) = analyze_with_network(r, &table_six(), &net) {
        for o in &res {
            md.push_str(&format!(
                "network-aware {:<20} T_flop {:.3}s  T_comm {:.3}s -> {} bound
",
                o.system,
                o.t_flop,
                o.t_comm,
                if o.network_bound {
                    "network"
                } else {
                    "compute"
                }
            ));
        }
    }
    md.push_str(
        "```
",
    );

    match out_file {
        Some(f) => {
            fsio::write_atomic(&f, &md).map_err(|e| e.to_string())?;
            println!("report written to {f}");
        }
        None => print!("{md}"),
    }
    Ok(())
}

fn cmd_strawman(rest: &[String]) -> Result<(), CliError> {
    let with_network = rest.iter().any(|a| a == "--network");
    let systems = table_six();
    for app in catalog::paper_models() {
        println!(
            "{}",
            render_strawman_block(&analyze_strawmen(&app, &systems))
        );
        if with_network {
            let net = default_network(&systems);
            match analyze_with_network(&app, &systems, &net) {
                Some(res) => {
                    for o in &res {
                        println!(
                            "    network-aware: {:<20} T_flop {:>10.3}s  T_comm {:>10.3}s  -> {} bound",
                            o.system,
                            o.t_flop,
                            o.t_comm,
                            if o.network_bound { "network" } else { "compute" }
                        );
                    }
                }
                None => println!("    network-aware: excluded"),
            }
            println!();
        }
    }
    Ok(())
}

/// Parses a positive count flag with a default, naming the flag in the
/// one-line usage error.
fn parse_count(value: Option<String>, flag: &str, default: usize) -> Result<usize, CliError> {
    let Some(v) = value else {
        return Ok(default);
    };
    let n: usize = v
        .parse()
        .map_err(|_| CliError::usage(format!("{flag}: cannot parse `{v}` as a count")))?;
    if n == 0 {
        return Err(CliError::usage(format!("{flag} must be at least 1")));
    }
    Ok(n)
}

/// Parses a milliseconds flag with a default (zero allowed — a zero
/// request deadline expires every request, which is how the 504 path is
/// driven deterministically in tests).
fn parse_ms(value: Option<String>, flag: &str, default: u64) -> Result<u64, CliError> {
    let Some(v) = value else {
        return Ok(default);
    };
    v.parse()
        .map_err(|_| CliError::usage(format!("{flag}: cannot parse `{v}` as milliseconds")))
}

fn cmd_serve(rest: &[String]) -> Result<(), CliError> {
    let mut args: Vec<String> = rest.to_vec();
    let take = |args: &mut Vec<String>, flag| take_opt(args, flag).map_err(CliError::Usage);
    let addr_raw = take(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:8462".to_string());
    let threads = parse_count(take(&mut args, "--threads")?, "--threads", 4)?;
    let queue_depth = parse_count(take(&mut args, "--queue-depth")?, "--queue-depth", 64)?;
    let request_deadline_ms = parse_ms(
        take(&mut args, "--request-deadline-ms")?,
        "--request-deadline-ms",
        2_000,
    )?;
    let drain_deadline_ms = parse_ms(
        take(&mut args, "--drain-deadline-ms")?,
        "--drain-deadline-ms",
        5_000,
    )?;
    let keep_alive_requests = parse_count(
        take(&mut args, "--keep-alive-requests")?,
        "--keep-alive-requests",
        1_000,
    )?;
    let idle_deadline_ms = parse_ms(
        take(&mut args, "--idle-deadline-ms")?,
        "--idle-deadline-ms",
        5_000,
    )?;
    let model_dir = take(&mut args, "--model-dir")?;
    let allow_measure = take_flag(&mut args, "--allow-measure");
    let default_policy = exareq::core::refresh::StalenessPolicy::default();
    let refresh_min_points = parse_count(
        take(&mut args, "--refresh-min-points")?,
        "--refresh-min-points",
        default_policy.min_points,
    )?;
    let refresh_full_every = parse_count(
        take(&mut args, "--refresh-full-every")?,
        "--refresh-full-every",
        usize::try_from(default_policy.full_refit_count).unwrap_or(32),
    )?;
    let refresh_cv_drift = match take(&mut args, "--refresh-cv-drift")? {
        None => default_policy.cv_drift,
        Some(v) => v.parse().map_err(|_| {
            CliError::usage(format!(
                "--refresh-cv-drift: cannot parse `{v}` as SMAPE percentage points"
            ))
        })?,
    };
    if let Some(stray) = args.first() {
        return Err(CliError::usage(format!(
            "serve: unexpected argument `{stray}`"
        )));
    }
    let addr: SocketAddr = addr_raw
        .parse()
        .map_err(|_| CliError::usage(format!("invalid --addr `{addr_raw}`: expected HOST:PORT")))?;
    let Some(model_dir) = model_dir else {
        return Err(CliError::usage("serve requires --model-dir DIR"));
    };
    let dir = std::path::PathBuf::from(&model_dir);
    if !dir.is_dir() {
        return Err(CliError::Data(format!(
            "read model dir {model_dir}: not a directory"
        )));
    }

    // Survey artifacts found in the model dir are fitted with the same
    // configuration `exareq model` uses, so the daemon serves the models
    // the batch CLI would print.
    let fit_cfg = MultiParamConfig::default();
    let fitter: Box<Fitter> = Box::new(move |s: &Survey| {
        model_requirements(s, &fit_cfg)
            .map(|m| m.requirements)
            .map_err(|e| format!("fit: {e}"))
    });
    let registry = std::sync::Arc::new(ModelRegistry::new(&dir, fitter));

    // SIGINT/SIGTERM cancel the accept loop; in-flight requests drain.
    let cancel = CancelToken::new();
    exareq::signal::install_termination_handlers(&cancel);

    let cfg = ServeConfig {
        addr,
        threads,
        queue_depth,
        request_deadline: Duration::from_millis(request_deadline_ms),
        drain_deadline: Duration::from_millis(drain_deadline_ms),
        model_dir: dir,
        allow_measure,
        keep_alive_requests,
        idle_deadline: Duration::from_millis(idle_deadline_ms),
        refresh: exareq::serve::RefreshSettings {
            policy: exareq::core::refresh::StalenessPolicy {
                min_points: refresh_min_points,
                full_refit_count: refresh_full_every as u64,
                cv_drift: refresh_cv_drift,
            },
            ..Default::default()
        },
    };
    let announce = std::sync::Arc::clone(&registry);
    let summary = exareq::serve::serve(&cfg, std::sync::Arc::clone(&registry), &cancel, |bound| {
        use std::io::Write;
        let snap = announce.snapshot();
        println!(
            "serving on {bound} ({} models, {} workers, queue depth {queue_depth})",
            snap.models.len(),
            threads
        );
        for (file, reason) in &snap.errors {
            eprintln!("warning: skipped {file}: {reason}");
        }
        let _ = std::io::stdout().flush();
    })
    .map_err(|e| CliError::Data(e.to_string()))?;
    println!(
        "serve: {}; {} requests handled, {} rejected",
        if summary.drained {
            "drained"
        } else {
            "drain deadline expired"
        },
        summary.requests,
        summary.rejected
    );
    Ok(())
}

/// `exareq plan`: offline adaptive sampling. Reads a fitted requirements
/// artifact plus its observation journal and ranks the not-yet-observed
/// candidate `(p, n)` configurations by expected variance reduction —
/// statistical leverage against the observed design times the LOO
/// residual variance — so the next measurement is spent where it
/// tightens the model most.
fn cmd_plan(rest: &[String]) -> Result<(), CliError> {
    use exareq::core::refresh::{rank_candidates, IncrementalFit};
    use exareq::profile::obslog::{ObsLine, ObservationLog};
    use exareq::serve::artifact;

    let mut args: Vec<String> = rest.to_vec();
    let take = |args: &mut Vec<String>, flag| take_opt(args, flag).map_err(CliError::Usage);
    let artifact_path = take(&mut args, "--artifact")?;
    let metric = take(&mut args, "--metric")?.unwrap_or_else(|| "flops".to_string());
    let p_raw = take(&mut args, "--p")?;
    let n_raw = take(&mut args, "--n")?;
    let obs_path = take(&mut args, "--observations")?;
    let top = parse_count(take(&mut args, "--top")?, "--top", 10)?;
    let json = take_flag(&mut args, "--json");
    if let Some(stray) = args.first() {
        return Err(CliError::usage(format!(
            "plan: unexpected argument `{stray}`"
        )));
    }
    let Some(artifact_path) = artifact_path else {
        return Err(CliError::usage(
            "plan requires --artifact FILE (a fitted requirements artifact)",
        ));
    };
    if !artifact::MODEL_FIELDS.contains(&metric.as_str()) {
        return Err(CliError::usage(format!(
            "--metric must be one of: {}",
            artifact::MODEL_FIELDS.join(", ")
        )));
    }
    let (Some(p_raw), Some(n_raw)) = (p_raw, n_raw) else {
        return Err(CliError::usage(
            "plan requires --p LIST and --n LIST (the candidate lattice)",
        ));
    };
    let p_values: Vec<f64> = parse_list(&p_raw).map_err(CliError::Usage)?;
    let n_values: Vec<f64> = parse_list(&n_raw).map_err(CliError::Usage)?;

    let text = fsio::read_to_string(Path::new(&artifact_path))
        .map_err(|e| CliError::Data(e.to_string()))?;
    let app = artifact::requirements_from_str(&text)
        .map_err(|e| CliError::Data(format!("{artifact_path}: {e}")))?;
    let model = match metric.as_str() {
        "bytes_used" => &app.bytes_used,
        "flops" => &app.flops,
        "comm_bytes" => &app.comm_bytes,
        "loads_stores" => &app.loads_stores,
        _ => &app.stack_distance,
    };
    if model.params.len() != 2 {
        return Err(CliError::Data(format!(
            "{artifact_path}: {metric} model has {} parameters; plan ranks (p, n) lattices",
            model.params.len()
        )));
    }

    // The journal: --observations wins; otherwise the artifact's sibling
    // `<stem>.obs.jsonl` (what `exareq serve` writes) when present.
    let default_journal = {
        let stem = artifact_path
            .strip_suffix(".json")
            .unwrap_or(&artifact_path);
        format!("{stem}.obs.jsonl")
    };
    let journal = obs_path.unwrap_or(default_journal);
    let points: Vec<(Vec<f64>, f64)> = if Path::new(&journal).is_file() {
        let (_, lines) = ObservationLog::load(&journal)
            .map_err(|e| CliError::Data(format!("{journal}: {e}")))?;
        lines
            .into_iter()
            .filter_map(|l| match l {
                ObsLine::Observation(e) if e.metric == metric => Some((e.coords, e.value)),
                _ => None,
            })
            .collect()
    } else {
        Vec::new()
    };

    let fit = IncrementalFit::new(model, &points).map_err(|e| {
        CliError::Data(format!(
            "cannot rank candidates for {metric}: {e} ({journal} holds {} observation(s) of it; \
             POST more to /observations first)",
            points.len()
        ))
    })?;

    // Candidate lattice minus what is already observed (exact coords).
    let observed: std::collections::BTreeSet<Vec<u64>> = points
        .iter()
        .map(|(c, _)| c.iter().map(|v| v.to_bits()).collect())
        .collect();
    let candidates: Vec<Vec<f64>> = p_values
        .iter()
        .flat_map(|&p| n_values.iter().map(move |&n| vec![p, n]))
        .filter(|c| !observed.contains(&c.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()))
        .collect();
    if candidates.is_empty() {
        return Err(CliError::Data(
            "every candidate configuration is already observed; widen --p/--n".to_string(),
        ));
    }
    let ranked = rank_candidates(&fit, &candidates)
        .map_err(|e| CliError::Data(format!("rank candidates: {e}")))?;
    let shown = ranked.iter().take(top.max(1));
    if json {
        for r in shown {
            println!(
                r#"{{"p":{},"n":{},"leverage":{},"score":{}}}"#,
                r.coords[0], r.coords[1], r.leverage, r.score
            );
        }
    } else {
        let cv = fit
            .loo()
            .map(|l| format!("{:.2}% CV SMAPE", l.cv_smape))
            .unwrap_or_else(|_| "CV unavailable".to_string());
        println!(
            "plan for {} / {metric}: {} observation(s), {cv}; top {} of {} candidates:",
            app.name,
            points.len(),
            top.min(ranked.len()),
            ranked.len()
        );
        for (i, r) in shown.enumerate() {
            println!(
                "  {:>2}. p={:<8} n={:<10} score {:.3e}  leverage {:.3}",
                i + 1,
                r.coords[0],
                r.coords[1],
                r.score,
                r.leverage
            );
        }
    }
    Ok(())
}

fn cmd_router(rest: &[String]) -> Result<(), CliError> {
    let mut args: Vec<String> = rest.to_vec();
    let take = |args: &mut Vec<String>, flag| take_opt(args, flag).map_err(CliError::Usage);
    let replicas_raw = take(&mut args, "--replicas")?;
    let model_dir = take(&mut args, "--model-dir")?;
    let addr_raw = take(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:8470".to_string());
    let threads = parse_count(take(&mut args, "--threads")?, "--threads", 4)?;
    let queue_depth = parse_count(take(&mut args, "--queue-depth")?, "--queue-depth", 64)?;
    let request_deadline_ms = parse_ms(
        take(&mut args, "--request-deadline-ms")?,
        "--request-deadline-ms",
        10_000,
    )?;
    let drain_deadline_ms = parse_ms(
        take(&mut args, "--drain-deadline-ms")?,
        "--drain-deadline-ms",
        5_000,
    )?;
    let probe_interval_ms = parse_ms(
        take(&mut args, "--probe-interval-ms")?,
        "--probe-interval-ms",
        200,
    )?;
    let hedge_after_ms = parse_ms(
        take(&mut args, "--hedge-after-ms")?,
        "--hedge-after-ms",
        150,
    )?;
    if let Some(stray) = args.first() {
        return Err(CliError::usage(format!(
            "router: unexpected argument `{stray}`"
        )));
    }
    let addr: SocketAddr = addr_raw
        .parse()
        .map_err(|_| CliError::usage(format!("invalid --addr `{addr_raw}`: expected HOST:PORT")))?;
    let Some(replicas_raw) = replicas_raw else {
        return Err(CliError::usage(
            "router requires --replicas HOST:PORT,... (the serve daemons to front)",
        ));
    };
    let replicas: Vec<String> = replicas_raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if replicas.is_empty() {
        return Err(CliError::usage("--replicas lists no addresses"));
    }
    for replica in &replicas {
        if replica.parse::<SocketAddr>().is_err() {
            return Err(CliError::usage(format!(
                "invalid replica address `{replica}`: expected HOST:PORT"
            )));
        }
    }
    let Some(model_dir) = model_dir else {
        return Err(CliError::usage(
            "router requires --model-dir DIR (the degraded-mode model source)",
        ));
    };
    let dir = std::path::PathBuf::from(&model_dir);
    if !dir.is_dir() {
        return Err(CliError::Data(format!(
            "read model dir {model_dir}: not a directory"
        )));
    }

    // The degraded-mode registry fits survey artifacts exactly like
    // `exareq serve` does, so a fallback answer is byte-identical to the
    // answer any replica over the same --model-dir would have given.
    let fit_cfg = MultiParamConfig::default();
    let fitter: Box<Fitter> = Box::new(move |s: &Survey| {
        model_requirements(s, &fit_cfg)
            .map(|m| m.requirements)
            .map_err(|e| format!("fit: {e}"))
    });
    let registry = std::sync::Arc::new(ModelRegistry::new(&dir, fitter));

    let cancel = CancelToken::new();
    exareq::signal::install_termination_handlers(&cancel);

    let mut proxy_cfg = ProxyConfig {
        request_deadline: Duration::from_millis(request_deadline_ms),
        hedge_after: Duration::from_millis(hedge_after_ms),
        ..ProxyConfig::default()
    };
    proxy_cfg.health.probe_interval = Duration::from_millis(probe_interval_ms);
    let cfg = RouterConfig {
        addr,
        threads,
        queue_depth,
        replicas: replicas.clone(),
        model_dir: dir,
        drain_deadline: Duration::from_millis(drain_deadline_ms),
        proxy: proxy_cfg,
    };
    let announce = std::sync::Arc::clone(&registry);
    let summary = exareq::router::route(&cfg, std::sync::Arc::clone(&registry), &cancel, |bound| {
        use std::io::Write;
        let snap = announce.snapshot();
        println!(
            "routing on {bound} ({} replicas, {} local models, {} workers, queue depth {queue_depth})",
            replicas.len(),
            snap.models.len(),
            threads
        );
        for (file, reason) in &snap.errors {
            eprintln!("warning: skipped {file}: {reason}");
        }
        let _ = std::io::stdout().flush();
    })
    .map_err(|e| CliError::Data(e.to_string()))?;
    println!(
        "router: {}; {} requests routed, {} failovers, {} hedges, {} degraded",
        if summary.drained {
            "drained"
        } else {
            "drain deadline expired"
        },
        summary.requests,
        summary.failovers,
        summary.hedges,
        summary.degraded
    );
    Ok(())
}

fn cmd_chaos(rest: &[String]) -> Result<(), CliError> {
    let mut args: Vec<String> = rest.to_vec();
    let take = |args: &mut Vec<String>, flag| take_opt(args, flag).map_err(CliError::Usage);
    let listen = take(&mut args, "--listen")?;
    let upstream = take(&mut args, "--upstream")?;
    let seed_raw = take(&mut args, "--chaos-seed")?;
    let faults_raw = take(&mut args, "--faults")?;
    if let Some(stray) = args.first() {
        return Err(CliError::usage(format!(
            "chaos: unexpected argument `{stray}`"
        )));
    }
    let Some(listen) = listen else {
        return Err(CliError::usage(
            "chaos requires --listen HOST:PORT (where clients connect)",
        ));
    };
    let Some(upstream) = upstream else {
        return Err(CliError::usage(
            "chaos requires --upstream HOST:PORT (the daemon to front)",
        ));
    };
    if listen.parse::<SocketAddr>().is_err() {
        return Err(CliError::usage(format!(
            "invalid --listen `{listen}`: expected HOST:PORT"
        )));
    }
    if upstream.parse::<SocketAddr>().is_err() {
        return Err(CliError::usage(format!(
            "invalid --upstream `{upstream}`: expected HOST:PORT"
        )));
    }
    let mut plan = match faults_raw {
        Some(spec) => ChaosPlan::parse(&spec)
            .map_err(|e| CliError::usage(format!("invalid --faults spec: {e}")))?,
        None => ChaosPlan::none(),
    };
    if let Some(raw) = seed_raw {
        plan.seed = raw
            .parse::<u64>()
            .map_err(|_| CliError::usage(format!("invalid --chaos-seed `{raw}`: expected u64")))?;
    }

    let cancel = CancelToken::new();
    exareq::signal::install_termination_handlers(&cancel);

    let seed = plan.seed;
    let proxy = ChaosProxy::start(&listen, &upstream, plan, &cancel)
        .map_err(|e| CliError::Data(format!("chaos proxy on {listen}: {e}")))?;
    {
        use std::io::Write;
        println!("chaos on {} -> {upstream} (seed {seed})", proxy.addr());
        let _ = std::io::stdout().flush();
    }
    while !cancel.is_cancelled() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let metrics = proxy.metrics();
    proxy.join();
    let breakdown: Vec<String> = metrics
        .counts()
        .iter()
        .filter(|(_, count)| *count > 0)
        .map(|(label, count)| format!("{label}={count}"))
        .collect();
    println!(
        "chaos: {} connections, {} faults injected{}{}",
        metrics.connections_total(),
        metrics.injected_total(),
        if breakdown.is_empty() { "" } else { ": " },
        breakdown.join(", ")
    );
    Ok(())
}

fn cmd_fleet(rest: &[String]) -> Result<(), CliError> {
    let mut args: Vec<String> = rest.to_vec();
    let take = |args: &mut Vec<String>, flag| take_opt(args, flag).map_err(CliError::Usage);
    let out_file = take(&mut args, "-o")?;
    let p_list = take(&mut args, "--p")?;
    let n_list = take(&mut args, "--n")?;
    let fault_spec = take(&mut args, "--faults")?;
    let journal_path = take(&mut args, "--journal")?;
    let resume = take_flag(&mut args, "--resume");
    let max_retries = take(&mut args, "--max-retries")?;
    let deadline_ms = take(&mut args, "--deadline-ms")?;
    let workers_raw = take(&mut args, "--workers")?;
    let shard_size_opt = take(&mut args, "--shard-size")?;
    let shard_deadline_ms = take(&mut args, "--shard-deadline-ms")?;
    let hold_ms_opt = take(&mut args, "--hold-ms")?;
    let report_file = take(&mut args, "--fleet-report")?;
    if resume && journal_path.is_none() {
        return Err(CliError::usage("--resume requires --journal FILE"));
    }
    let Some(name) = args.first() else {
        return Err(CliError::usage(
            "fleet requires an application name (see `exareq apps`)",
        ));
    };
    let apps = all_apps();
    let app = apps
        .iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            CliError::usage(format!("unknown application `{name}` (see `exareq apps`)"))
        })?;
    let Some(workers_raw) = workers_raw else {
        return Err(CliError::usage(
            "fleet requires --workers HOST:PORT[,HOST:PORT...]",
        ));
    };
    let workers: Vec<String> = workers_raw
        .split(',')
        .map(|w| w.trim().to_string())
        .filter(|w| !w.is_empty())
        .collect();
    if workers.is_empty() {
        return Err(CliError::usage(
            "--workers lists no addresses; expected HOST:PORT[,HOST:PORT...]",
        ));
    }
    for w in &workers {
        if !w.contains(':') {
            return Err(CliError::usage(format!(
                "--workers: `{w}` is not HOST:PORT"
            )));
        }
    }

    let mut grid = AppGrid::default();
    if let Some(p) = &p_list {
        grid.p_values = parse_list(p).map_err(CliError::Usage)?;
    }
    if let Some(n) = &n_list {
        grid.n_values = parse_list(n).map_err(CliError::Usage)?;
    }
    let fault_spec_str = fault_spec.clone().unwrap_or_default();
    let faults = match &fault_spec {
        Some(spec) => {
            FaultPlan::parse(spec).map_err(|e| CliError::usage(format!("--faults {spec}: {e}")))?
        }
        None => FaultPlan::none(),
    };
    let mut retry = RetryPolicy::default();
    if let Some(r) = &max_retries {
        let extra: u32 = r.parse().map_err(|_| {
            CliError::usage(format!("--max-retries: cannot parse `{r}` as a count"))
        })?;
        retry.max_attempts = 1 + extra;
    }
    let fleet_cfg = FleetConfig {
        workers: workers.clone(),
        shard_size: parse_count(shard_size_opt.clone(), "--shard-size", 2)?,
        shard_deadline: Duration::from_millis(parse_ms(
            shard_deadline_ms.clone(),
            "--shard-deadline-ms",
            30_000,
        )?),
        hold_ms: parse_ms(hold_ms_opt.clone(), "--hold-ms", 0)?,
        ..FleetConfig::default()
    };

    let cancel = CancelToken::new();
    exareq::signal::install_termination_handlers(&cancel);
    let cancel = match &deadline_ms {
        Some(ms) => {
            let ms: u64 = ms.parse().map_err(|_| {
                CliError::usage(format!(
                    "--deadline-ms: cannot parse `{ms}` as milliseconds"
                ))
            })?;
            cancel.with_deadline(Deadline::after(Duration::from_millis(ms)))
        }
        None => cancel,
    };
    eprintln!(
        "fleet-surveying {} over p={:?}, n={:?} across {} worker(s), shard size {} ...",
        app.name(),
        grid.p_values,
        grid.n_values,
        workers.len(),
        fleet_cfg.shard_size
    );
    let mut journal = match &journal_path {
        Some(jp) => {
            let manifest = SurveyManifest::new(
                app.name(),
                grid.p_values.iter().map(|&p| p as u64).collect(),
                grid.n_values.clone(),
                fault_spec_str.clone(),
            );
            let j = if resume && Path::new(jp).exists() {
                let j = SurveyJournal::resume(jp, &manifest)
                    .map_err(|e| format!("resuming journal {jp}: {e}"))?;
                eprintln!(
                    "resuming from journal {jp}: {} configuration(s) already complete{}",
                    j.entries().len(),
                    if j.dropped_tail() {
                        " (torn tail line truncated)"
                    } else {
                        ""
                    }
                );
                j
            } else {
                if !resume && Path::new(jp).exists() {
                    return Err(CliError::Data(format!(
                        "journal {jp} already exists; pass --resume to continue that sweep \
                         or choose a fresh journal path"
                    )));
                }
                SurveyJournal::create(jp, manifest)
                    .map_err(|e| format!("creating journal {jp}: {e}"))?
            };
            Some(j)
        }
        None => None,
    };
    let artifact = out_file
        .clone()
        .unwrap_or_else(|| format!("survey_{}.json", name.to_lowercase()));
    let report_path = report_file
        .clone()
        .unwrap_or_else(|| format!("fleet_{}.json", name.to_lowercase()));
    let resume_command = |jp: &str| {
        let mut c = format!("exareq fleet {name} --workers {workers_raw}");
        for (flag, value) in [
            ("-o", &out_file),
            ("--p", &p_list),
            ("--n", &n_list),
            ("--faults", &fault_spec),
            ("--max-retries", &max_retries),
            ("--shard-size", &shard_size_opt),
            ("--shard-deadline-ms", &shard_deadline_ms),
            ("--hold-ms", &hold_ms_opt),
            ("--fleet-report", &report_file),
        ] {
            if let Some(v) = value {
                c.push_str(&format!(" {flag} {v}"));
            }
        }
        c.push_str(&format!(" --journal {jp} --resume"));
        c
    };
    let (survey, report) = match run_fleet(
        app.as_ref(),
        &grid,
        &faults,
        &fault_spec_str,
        &retry,
        journal.as_mut(),
        &cancel,
        &fleet_cfg,
    ) {
        Ok(pair) => pair,
        Err(e @ SurveyRunError::BudgetExhausted { .. }) => {
            return Err(match &journal_path {
                Some(jp) => CliError::Resumable(format!(
                    "{e}\nevery completed configuration is safe in {jp}; \
                     re-run with\n  {}\nto continue",
                    resume_command(jp)
                )),
                None => CliError::Resumable(format!(
                    "{e}\nno journal was attached, so completed configurations are lost; \
                     re-run with --journal FILE to make the sweep resumable"
                )),
            });
        }
        Err(SurveyRunError::Cancelled { reason }) => {
            // The same graceful-shutdown contract as `exareq survey`: the
            // journal holds every committed configuration; write a partial
            // artifact flagged incomplete and print the resume command.
            return Err(match (&journal_path, journal.as_ref()) {
                (Some(jp), Some(j)) => {
                    let mut partial = Survey::new(app.name());
                    for entry in j.entries() {
                        apply_entry(&mut partial, entry);
                    }
                    partial.incomplete = true;
                    let json = partial
                        .try_to_json()
                        .map_err(|e| format!("serializing partial survey: {e}"))?;
                    fsio::write_atomic(&artifact, json).map_err(|e| e.to_string())?;
                    eprintln!(
                        "partial survey ({} of {} configurations, flagged incomplete) \
                         written to {artifact}",
                        j.entries().len(),
                        grid.p_values.len() * grid.n_values.len()
                    );
                    CliError::Interrupted(format!(
                        "fleet survey cancelled: {reason}\nevery completed configuration \
                         is safe in {jp}; re-run with\n  {}\nto continue",
                        resume_command(jp)
                    ))
                }
                _ => CliError::Interrupted(format!(
                    "fleet survey cancelled: {reason}\nno journal was attached, so \
                     completed configurations are lost; re-run with --journal FILE to \
                     make the sweep resumable"
                )),
            });
        }
        Err(e) => return Err(CliError::Data(e.to_string())),
    };
    let json = survey
        .try_to_json()
        .map_err(|e| format!("serializing survey: {e}"))?;
    fsio::write_atomic(&artifact, json).map_err(|e| e.to_string())?;
    let mut report_line = report.to_json_line();
    report_line.push('\n');
    fsio::write_atomic(&report_path, report_line).map_err(|e| e.to_string())?;
    println!(
        "{} observations over {} configurations written to {artifact}",
        survey.observations.len(),
        survey.config_count()
    );
    println!(
        "fleet: {} shard(s), {} re-dispatch(es), {} duplicate(s) dropped; report in {report_path}",
        report.shards_total, report.redispatches, report.duplicates_dropped
    );
    for w in &report.workers {
        match &w.last_error {
            Some(err) => println!(
                "  worker {}: {} ({} shard(s), last error: {err})",
                w.addr, w.state, w.shards
            ),
            None => println!("  worker {}: {} ({} shard(s))", w.addr, w.state, w.shards),
        }
    }
    if report.fallback {
        eprintln!(
            "warning: degraded mode — {} shard(s) were measured in-process because no \
             worker could deliver them; the run is flagged in {report_path} (artifact \
             bytes are still identical to a sequential run)",
            report.fallback_shards
        );
    }
    Ok(())
}
