//! Fleet-side failure-path counters in the Prometheus text exposition
//! format, mirroring `exareq-serve`'s metrics idiom: relaxed atomics,
//! rendered on demand, never torn.

use crate::health::HealthTable;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for the coordinator's failure paths; shared across the
/// dispatcher threads and the committer.
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// Shards re-queued after a dispatch failure or timeout.
    redispatch: AtomicU64,
    /// Completed shard results dropped because another path (a stolen
    /// re-dispatch or the local fallback) committed the shard first.
    duplicates_dropped: AtomicU64,
    /// Shards committed, by whichever path completed them first.
    shards_completed: AtomicU64,
    /// Shards the coordinator measured in-process because no worker was
    /// dispatchable or a shard exhausted its re-dispatch budget.
    fallback_shards: AtomicU64,
}

impl FleetMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        FleetMetrics::default()
    }

    /// Records one shard re-queued for another worker.
    pub fn record_redispatch(&self) {
        self.redispatch.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one duplicate shard completion dropped.
    pub fn record_duplicate_dropped(&self) {
        self.duplicates_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one shard committed.
    pub fn record_shard_completed(&self) {
        self.shards_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one shard measured in-process by the coordinator.
    pub fn record_fallback_shard(&self) {
        self.fallback_shards.fetch_add(1, Ordering::Relaxed);
    }

    /// Re-dispatch count so far.
    pub fn redispatches(&self) -> u64 {
        self.redispatch.load(Ordering::Relaxed)
    }

    /// Dropped duplicate completions so far.
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped.load(Ordering::Relaxed)
    }

    /// Committed shard count so far.
    pub fn shards_completed(&self) -> u64 {
        self.shards_completed.load(Ordering::Relaxed)
    }

    /// In-process fallback shard count so far.
    pub fn fallback_shards(&self) -> u64 {
        self.fallback_shards.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition; worker states come from
    /// the caller's [`HealthTable`] so the gauge reflects the same table
    /// dispatch decisions are made from.
    pub fn render(&self, health: &HealthTable) -> String {
        let mut out = String::with_capacity(1024);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        counter(
            &mut out,
            "fleet_redispatch_total",
            "Shards re-queued after a worker failure or timeout.",
            self.redispatches(),
        );
        counter(
            &mut out,
            "fleet_duplicates_dropped_total",
            "Duplicate shard completions dropped by first-wins commit.",
            self.duplicates_dropped(),
        );
        counter(
            &mut out,
            "fleet_shards_completed_total",
            "Shards committed to the merged journal.",
            self.shards_completed(),
        );
        counter(
            &mut out,
            "fleet_fallback_shards_total",
            "Shards the coordinator measured in-process.",
            self.fallback_shards(),
        );
        counter(
            &mut out,
            "fleet_worker_recovered_total",
            "Suspect/Dead workers promoted back to Healthy.",
            health.recoveries(),
        );
        let [healthy, suspect, dead] = health.counts();
        out.push_str(&format!(
            "# HELP fleet_worker_state Workers per liveness state.\n\
             # TYPE fleet_worker_state gauge\n\
             fleet_worker_state{{state=\"healthy\"}} {healthy}\n\
             fleet_worker_state{{state=\"suspect\"}} {suspect}\n\
             fleet_worker_state{{state=\"dead\"}} {dead}\n"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthPolicy;

    #[test]
    fn render_names_every_failure_path_metric() {
        let m = FleetMetrics::new();
        m.record_redispatch();
        m.record_redispatch();
        m.record_duplicate_dropped();
        m.record_shard_completed();
        m.record_fallback_shard();
        let health = HealthTable::new(3, HealthPolicy::default());
        health.record_failure(1); // suspect
        for _ in 0..3 {
            health.record_failure(2); // dead
        }
        let text = m.render(&health);
        assert!(text.contains("fleet_redispatch_total 2\n"), "{text}");
        assert!(
            text.contains("fleet_duplicates_dropped_total 1\n"),
            "{text}"
        );
        assert!(text.contains("fleet_shards_completed_total 1\n"), "{text}");
        assert!(text.contains("fleet_fallback_shards_total 1\n"), "{text}");
        assert!(text.contains("fleet_worker_recovered_total 0\n"), "{text}");
        assert!(
            text.contains("fleet_worker_state{state=\"healthy\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("fleet_worker_state{state=\"suspect\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("fleet_worker_state{state=\"dead\"} 1\n"),
            "{text}"
        );
    }
}
