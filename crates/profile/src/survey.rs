//! Requirement surveys: measured metric values over `(p, n)` configurations,
//! the hand-off format between the measurement substrate and the model
//! generator.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The requirement metrics of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// Memory footprint: resident bytes used per process.
    BytesUsed,
    /// Computation: floating-point operations per process.
    Flops,
    /// Network communication: bytes sent + received per process.
    CommBytes,
    /// Memory access volume: loads + stores per process.
    LoadsStores,
    /// Memory access locality: stack distance (median over samples).
    StackDistance,
    /// Storage I/O: bytes read + written per process (Section II-A:
    /// "handled analogously to the network communication requirement").
    IoBytes,
}

impl MetricKind {
    /// All metrics: the Table I set plus the analogous I/O metric.
    pub const ALL: [MetricKind; 6] = [
        MetricKind::BytesUsed,
        MetricKind::Flops,
        MetricKind::CommBytes,
        MetricKind::LoadsStores,
        MetricKind::StackDistance,
        MetricKind::IoBytes,
    ];

    /// Row label as printed in Table II.
    pub fn label(&self) -> &'static str {
        match self {
            MetricKind::BytesUsed => "#Bytes used",
            MetricKind::Flops => "#FLOP",
            MetricKind::CommBytes => "#Bytes sent & received",
            MetricKind::LoadsStores => "#Loads & stores",
            MetricKind::StackDistance => "Stack distance",
            MetricKind::IoBytes => "#Bytes read & written",
        }
    }
}

/// One measured value: a metric at a `(p, n)` configuration, optionally
/// scoped to a sub-channel (a collective class for `CommBytes`, an
/// instruction group for `StackDistance`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Number of processes of the run.
    pub p: u64,
    /// Problem size per process of the run.
    pub n: u64,
    /// Which requirement was measured.
    pub metric: MetricKind,
    /// Sub-channel: collective class name, instruction group id, …
    pub channel: Option<String>,
    /// Measured per-process value (averaged over ranks unless stated
    /// otherwise by the producer).
    pub value: f64,
    /// True when the run this value came from was degraded (rank crashes,
    /// injected message faults) — the fitting layer drops such points and
    /// reports them. Absent in pre-fault-layer JSON, hence the default.
    #[serde(default)]
    pub degraded: bool,
}

/// A `(p, n)` configuration whose run produced no usable measurement at
/// all (e.g. every rank crashed, or the run deadlocked and was aborted).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkippedConfig {
    /// Number of processes of the attempted run.
    pub p: u64,
    /// Problem size per process of the attempted run.
    pub n: u64,
    /// Why no measurement was recorded.
    pub reason: String,
}

/// A survey: all observations for one application across its measurement
/// grid. Serializable so bench binaries can cache expensive sweeps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Survey {
    /// Application name.
    pub app: String,
    /// All recorded observations.
    pub observations: Vec<Observation>,
    /// Configurations that produced no usable measurement (all ranks dead,
    /// deadlock abort). Absent in pre-fault-layer JSON, hence the default.
    #[serde(default)]
    pub skipped: Vec<SkippedConfig>,
}

impl Survey {
    /// Creates an empty survey for `app`.
    pub fn new(app: impl Into<String>) -> Self {
        Survey {
            app: app.into(),
            observations: Vec::new(),
            skipped: Vec::new(),
        }
    }

    /// Records one observation (verbatim; callers set the degraded flag).
    pub fn record(&mut self, obs: Observation) {
        self.observations.push(obs);
    }

    /// Records one observation.
    pub fn push(&mut self, p: u64, n: u64, metric: MetricKind, value: f64) {
        self.record(Observation {
            p,
            n,
            metric,
            channel: None,
            value,
            degraded: false,
        });
    }

    /// Records one observation from a degraded run.
    pub fn push_degraded(&mut self, p: u64, n: u64, metric: MetricKind, value: f64) {
        self.record(Observation {
            p,
            n,
            metric,
            channel: None,
            value,
            degraded: true,
        });
    }

    /// Records one observation scoped to a channel.
    pub fn push_channel(
        &mut self,
        p: u64,
        n: u64,
        metric: MetricKind,
        channel: impl Into<String>,
        value: f64,
    ) {
        self.record(Observation {
            p,
            n,
            metric,
            channel: Some(channel.into()),
            value,
            degraded: false,
        });
    }

    /// Records a configuration that produced no measurement at all.
    pub fn note_skipped(&mut self, p: u64, n: u64, reason: impl Into<String>) {
        self.skipped.push(SkippedConfig {
            p,
            n,
            reason: reason.into(),
        });
    }

    /// `(p, n, value)` triples for a metric (no channel).
    pub fn triples(&self, metric: MetricKind) -> Vec<(u64, u64, f64)> {
        self.observations
            .iter()
            .filter(|o| o.metric == metric && o.channel.is_none())
            .map(|o| (o.p, o.n, o.value))
            .collect()
    }

    /// `(p, n, value)` triples for a metric restricted to one channel.
    pub fn channel_triples(&self, metric: MetricKind, channel: &str) -> Vec<(u64, u64, f64)> {
        self.observations
            .iter()
            .filter(|o| o.metric == metric && o.channel.as_deref() == Some(channel))
            .map(|o| (o.p, o.n, o.value))
            .collect()
    }

    /// Distinct channels present for a metric, sorted.
    pub fn channels(&self, metric: MetricKind) -> Vec<String> {
        let mut set: BTreeMap<String, ()> = BTreeMap::new();
        for o in &self.observations {
            if o.metric == metric {
                if let Some(c) = &o.channel {
                    set.insert(c.clone(), ());
                }
            }
        }
        set.into_keys().collect()
    }

    /// Distinct `(p, n)` configurations whose observations are marked
    /// degraded, sorted.
    pub fn degraded_configs(&self) -> Vec<(u64, u64)> {
        let mut set: BTreeMap<(u64, u64), ()> = BTreeMap::new();
        for o in &self.observations {
            if o.degraded {
                set.insert((o.p, o.n), ());
            }
        }
        set.into_keys().collect()
    }

    /// Number of distinct `(p, n)` configurations covered.
    pub fn config_count(&self) -> usize {
        let mut set: BTreeMap<(u64, u64), ()> = BTreeMap::new();
        for o in &self.observations {
            set.insert((o.p, o.n), ());
        }
        set.len()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("survey serializes")
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query_triples() {
        let mut s = Survey::new("kripke");
        s.push(2, 100, MetricKind::Flops, 1e6);
        s.push(4, 100, MetricKind::Flops, 1e6);
        s.push(2, 100, MetricKind::BytesUsed, 5e4);
        let t = s.triples(MetricKind::Flops);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], (2, 100, 1e6));
    }

    #[test]
    fn channels_are_separate() {
        let mut s = Survey::new("milc");
        s.push_channel(2, 10, MetricKind::CommBytes, "Allreduce", 100.0);
        s.push_channel(2, 10, MetricKind::CommBytes, "Bcast", 50.0);
        s.push(2, 10, MetricKind::CommBytes, 150.0);
        assert_eq!(
            s.channels(MetricKind::CommBytes),
            vec!["Allreduce", "Bcast"]
        );
        assert_eq!(
            s.channel_triples(MetricKind::CommBytes, "Allreduce"),
            vec![(2, 10, 100.0)]
        );
        // Un-channelled triples exclude channelled rows.
        assert_eq!(s.triples(MetricKind::CommBytes), vec![(2, 10, 150.0)]);
    }

    #[test]
    fn config_count_dedups() {
        let mut s = Survey::new("x");
        s.push(2, 10, MetricKind::Flops, 1.0);
        s.push(2, 10, MetricKind::BytesUsed, 1.0);
        s.push(4, 10, MetricKind::Flops, 1.0);
        assert_eq!(s.config_count(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let mut s = Survey::new("app");
        s.push_channel(8, 64, MetricKind::StackDistance, "group-3", 42.0);
        let back = Survey::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn degraded_and_skipped_are_tracked() {
        let mut s = Survey::new("lulesh");
        s.push(2, 10, MetricKind::Flops, 1.0);
        s.push_degraded(4, 10, MetricKind::Flops, 0.7);
        s.push_degraded(4, 10, MetricKind::BytesUsed, 0.5);
        s.note_skipped(8, 10, "all 8 ranks failed");
        assert_eq!(s.degraded_configs(), vec![(4, 10)]);
        assert_eq!(s.skipped.len(), 1);
        assert_eq!(s.skipped[0].p, 8);
        let back = Survey::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pre_fault_layer_json_defaults_cleanly() {
        let json = r#"{
            "app": "old",
            "observations": [
                {"p": 2, "n": 10, "metric": "Flops", "channel": null, "value": 1.0}
            ]
        }"#;
        let s = Survey::from_json(json).unwrap();
        assert!(!s.observations[0].degraded);
        assert!(s.skipped.is_empty());
    }

    #[test]
    fn metric_labels_match_table_one() {
        assert_eq!(MetricKind::BytesUsed.label(), "#Bytes used");
        assert_eq!(MetricKind::IoBytes.label(), "#Bytes read & written");
        assert_eq!(MetricKind::ALL.len(), 6);
    }
}
