//! Scaling outlook: requirement projections over a schedule of machine
//! sizes — the "play with configurations" loop the paper's introduction
//! promises the system designer, tabulated.
//!
//! For each process count in the schedule the problem is inflated to fill
//! a fixed per-process memory (the heroic-run rule), and every rate
//! requirement is evaluated at the resulting `(p, n)` — showing at a
//! glance where each resource's demand bends away from the linear ideal.

use crate::inflate::{inflate_problem, Inflation};
use crate::requirements::{AppRequirements, RateMetric};
use crate::skeleton::SystemSkeleton;
use serde::{Deserialize, Serialize};

/// One row of the outlook: the configuration and its requirements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutlookRow {
    /// Process count.
    pub p: f64,
    /// Inflated problem size per process (`None` if the app cannot run).
    pub n: Option<f64>,
    /// Overall problem size `p·n`.
    pub overall: Option<f64>,
    /// Rate requirements at `(p, n)` in [`RateMetric::ALL`] order.
    pub rates: Option<[f64; 3]>,
}

/// Default schedule: decades from 10³ to 10⁹ processes.
pub fn decade_schedule() -> Vec<f64> {
    (3..=9).map(|e| 10f64.powi(e)).collect()
}

/// Projects an application's requirements over a schedule of process
/// counts at fixed memory per process.
pub fn scaling_outlook(
    app: &AppRequirements,
    schedule: &[f64],
    mem_per_process: f64,
) -> Vec<OutlookRow> {
    schedule
        .iter()
        .map(|&p| {
            let sys = SystemSkeleton::new(p, mem_per_process);
            match inflate_problem(&app.bytes_used, &sys) {
                Inflation::Fits(n) => {
                    let coords = [p, n];
                    let mut rates = [0.0; 3];
                    for (slot, m) in rates.iter_mut().zip(RateMetric::ALL) {
                        *slot = app.rate_model(m).eval(&coords);
                    }
                    OutlookRow {
                        p,
                        n: Some(n),
                        overall: Some(p * n),
                        rates: Some(rates),
                    }
                }
                _ => OutlookRow {
                    p,
                    n: None,
                    overall: None,
                    rates: None,
                },
            }
        })
        .collect()
}

/// Renders the outlook as a text table.
pub fn render_outlook(app_name: &str, rows: &[OutlookRow]) -> String {
    let mut out = format!("scaling outlook for {app_name} (memory-filled problems):\n");
    out.push_str(&format!(
        "  {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "p", "n/process", "overall N", "#FLOP/proc", "comm B/proc", "ld+st/proc"
    ));
    for r in rows {
        match (r.n, r.overall, r.rates) {
            (Some(n), Some(overall), Some(rates)) => out.push_str(&format!(
                "  {:>10.0e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}\n",
                r.p, n, overall, rates[0], rates[1], rates[2]
            )),
            _ => out.push_str(&format!(
                "  {:>10.0e} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
                r.p, "-", "does", "not", "fit", "-"
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn decade_schedule_spans_exascale() {
        let s = decade_schedule();
        assert_eq!(s.len(), 7);
        assert_eq!(s[0], 1e3);
        assert_eq!(s[6], 1e9);
    }

    #[test]
    fn kripke_outlook_is_flat_per_process() {
        // Kripke's p-independent footprint: n is the same at every scale;
        // flops/comm per process constant, loads grow with the n·p term.
        let rows = scaling_outlook(&catalog::kripke(), &decade_schedule(), 1e9);
        let n0 = rows[0].n.unwrap();
        for r in &rows {
            assert!((r.n.unwrap() - n0).abs() / n0 < 1e-9);
        }
        let f0 = rows[0].rates.unwrap()[0];
        let f6 = rows[6].rates.unwrap()[0];
        assert!((f6 / f0 - 1.0).abs() < 1e-9, "flops/proc must stay flat");
        let l0 = rows[0].rates.unwrap()[2];
        let l6 = rows[6].rates.unwrap()[2];
        assert!(l6 / l0 > 100.0, "the n·p loads term must explode");
    }

    #[test]
    fn icofoam_falls_off_the_schedule() {
        // With 100 MB per process, icoFoam's p·log p footprint exceeds
        // memory somewhere inside the schedule.
        let rows = scaling_outlook(&catalog::icofoam(), &decade_schedule(), 1e8);
        assert!(rows.first().unwrap().n.is_some());
        assert!(rows.last().unwrap().n.is_none());
        // Monotone: once it stops fitting it never fits again.
        let first_gap = rows.iter().position(|r| r.n.is_none()).unwrap();
        assert!(rows[first_gap..].iter().all(|r| r.n.is_none()));
    }

    #[test]
    fn render_handles_both_row_kinds() {
        let rows = scaling_outlook(&catalog::icofoam(), &decade_schedule(), 1e8);
        let s = render_outlook("icoFoam", &rows);
        assert!(s.contains("icoFoam"));
        assert!(s.contains("does"), "{s}");
        assert!(s.contains("e"), "{s}");
    }
}
