//! Deterministic network chaos for the exareq stack.
//!
//! A std-only, seeded fault-injecting TCP proxy in the spirit of
//! `crates/sim/src/fault.rs`, one layer down: instead of perturbing
//! simulated collectives it perturbs the real sockets between `crates/net`
//! clients and `exareq serve` replicas. Each accepted connection draws its
//! fate — added latency, a black-hole partition, a mid-stream reset, byte
//! truncation, a slow-loris drip on either path, or payload corruption —
//! from a SplitMix64 stream that is a pure function of `(seed, connection
//! index)`, so a fault schedule is replayable from `--chaos-seed` alone.
//!
//! The proxy exists to *prove* the hardening in `crates/net`, `crates/
//! router`, and `crates/fleet`: every injected fault must surface as a typed
//! client error, a failover, or a redispatch — never as a divergent 200.

pub mod metrics;
pub mod plan;
pub mod proxy;

pub use metrics::ChaosMetrics;
pub use plan::{ChaosPlan, FaultClass, CLASSES};
pub use proxy::ChaosProxy;
