//! Behavioural twin of **Kripke** — LLNL's 3D Sn deterministic particle
//! transport proxy (asynchronous MPI parallel sweep).
//!
//! Target per-process requirement signature (Table II):
//!
//! | metric          | model                  |
//! |-----------------|------------------------|
//! | #Bytes used     | `c · n`                |
//! | #FLOP           | `c · n`                |
//! | #Bytes sent/rcv | `c · n`                |
//! | #Loads & stores | `c₁ · n + c₂ · n · p` ⚠ |
//! | Stack distance  | constant               |
//!
//! Structure: a zone-local sweep kernel (linear in the per-process zone
//! count), face halo exchanges proportional to the zone count, and a sweep
//! *pipeline* stage loop whose buffer reshuffling touches the angular flux
//! once per pipeline stage — the `n · p` memory-access term the paper flags
//! as Kripke's one scaling hazard.

use crate::shapes::{ops, ring_exchange, Arena};
use crate::MiniApp;
use exareq_locality::BurstSampler;
use exareq_profile::ProcessProfile;
use exareq_sim::Rank;

/// Angular quadrature directions per zone (reduced from production Kripke).
const ANGLES: usize = 4;
/// Sweep source iterations.
const ITERS: usize = 2;

/// The Kripke behavioural twin.
#[derive(Debug, Clone, Copy, Default)]
pub struct Kripke;

impl MiniApp for Kripke {
    fn name(&self) -> &'static str {
        "Kripke"
    }

    fn run_rank(&self, rank: &mut Rank, n: u64, prof: &mut ProcessProfile) {
        let p = rank.size();
        let zones = n as usize;

        // Working set: angular flux ψ (ANGLES per zone), cross sections σ,
        // scalar flux φ — all linear in the per-process zone count.
        let mut psi = Arena::new(ANGLES * zones);
        let mut sigma = Arena::new(zones);
        let mut phi = Arena::new(zones);
        prof.footprint.alloc(psi.bytes());
        prof.footprint.alloc(sigma.bytes());
        prof.footprint.alloc(phi.bytes());

        let face = vec![0u8; ops(2.0 * n as f64) as usize];

        for _ in 0..ITERS {
            // Zone-local sweep: ψ ← ψ·σ + q for each angle and zone.
            prof.callpath.enter("sweep");
            psi.compute(ops(8.0 * n as f64), prof.callpath.counters());
            sigma.stream(ops(4.0 * n as f64), prof.callpath.counters());
            phi.stream(ops(8.0 * n as f64), prof.callpath.counters());
            prof.callpath.exit();

            // Pipeline fill/drain: the angular flux block is re-staged once
            // per sweep pipeline stage (one stage per process column) —
            // Kripke's n·p loads/stores hazard.
            prof.callpath.enter("pipeline");
            for _stage in 0..p {
                psi.stream(ops(n as f64), prof.callpath.counters());
            }
            prof.callpath.exit();

            // Downwind/upwind face exchange: 2n bytes each way per iteration.
            prof.callpath.enter("face_exchange");
            let before = rank.stats().total();
            ring_exchange(rank, 100, &face, &face);
            prof.callpath.add_comm_bytes(rank.stats().total() - before);
            prof.callpath.exit();
        }
    }

    fn run_locality(&self, _n: u64, sampler: &mut BurstSampler) {
        // Sweep order visits zones block by block with a fixed-size angular
        // working set — locality independent of the problem size.
        let g_psi = sampler.register_group("psi sweep window");
        let g_sig = sampler.register_group("sigma table");
        const WINDOW: u64 = 96;
        const SIG_WINDOW: u64 = 24;
        for _pass in 0..4 {
            for i in 0..WINDOW {
                sampler.access(g_psi, 0x1000 + i);
            }
            for i in 0..SIG_WINDOW {
                sampler.access(g_sig, 0x9000 + i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measure, MiniApp};

    #[test]
    fn flops_scale_linearly_in_n_only() {
        let a = measure(&Kripke, 4, 512);
        let b = measure(&Kripke, 4, 1024);
        let c = measure(&Kripke, 8, 512);
        let r_n = b.flops / a.flops;
        assert!((r_n - 2.0).abs() < 0.05, "n-scaling {r_n}");
        let r_p = c.flops / a.flops;
        assert!((r_p - 1.0).abs() < 0.05, "p-scaling {r_p}");
    }

    #[test]
    fn footprint_linear_in_n() {
        let a = measure(&Kripke, 2, 512);
        let b = measure(&Kripke, 2, 2048);
        let r = b.bytes_used / a.bytes_used;
        assert!((r - 4.0).abs() < 0.1, "{r}");
    }

    #[test]
    fn comm_linear_in_n_per_process() {
        let a = measure(&Kripke, 8, 512);
        let b = measure(&Kripke, 8, 1024);
        let r = b.comm_total / a.comm_total;
        assert!((r - 2.0).abs() < 0.1, "{r}");
    }

    #[test]
    fn loads_stores_have_np_term() {
        // L(p, n) = c1·n + c2·n·p → L(2p)/L(p) > 1 and grows with p.
        let a = measure(&Kripke, 2, 1024);
        let b = measure(&Kripke, 16, 1024);
        let r = b.loads_stores / a.loads_stores;
        assert!(r > 1.2, "expected visible n·p term, ratio {r}");
        // And it is linear in p at the margin: (L(16)−L(2))/14 = ITERS·n.
        let c2n = (b.loads_stores - a.loads_stores) / 14.0;
        assert!((c2n - 2.0 * 1024.0).abs() / 2048.0 < 0.1, "c2·n = {c2n}");
    }

    #[test]
    fn stack_distance_constant_in_n() {
        let mut s1 = exareq_locality::BurstSampler::new(exareq_locality::BurstSchedule::always());
        Kripke.run_locality(256, &mut s1);
        let mut s2 = exareq_locality::BurstSampler::new(exareq_locality::BurstSchedule::always());
        Kripke.run_locality(4096, &mut s2);
        let m1 = s1.groups()[0].median_stack().unwrap();
        let m2 = s2.groups()[0].median_stack().unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn deterministic_measurements() {
        let a = measure(&Kripke, 4, 256);
        let b = measure(&Kripke, 4, 256);
        assert_eq!(a.flops, b.flops);
        assert_eq!(a.comm_total, b.comm_total);
        assert_eq!(a.loads_stores, b.loads_stores);
    }
}
