//! Model-quality statistics: SMAPE, R², relative errors and the Figure-3
//! error histogram.

use crate::measurement::Experiment;
use crate::pmnf::Model;
use serde::{Deserialize, Serialize};

/// Symmetric mean absolute percentage error (in percent, range 0..200).
///
/// Extra-P's selection criterion for competing hypotheses; symmetric so
/// over- and under-prediction are penalized alike.
pub fn smape(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    if pred.is_empty() {
        return 0.0;
    }
    let s: f64 = pred
        .iter()
        .zip(actual)
        .map(|(&p, &a)| {
            let denom = p.abs() + a.abs();
            if denom == 0.0 {
                0.0
            } else {
                2.0 * (p - a).abs() / denom
            }
        })
        .sum();
    100.0 * s / pred.len() as f64
}

/// Coefficient of determination R² of predictions against observations.
pub fn r_squared(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len());
    let n = actual.len() as f64;
    if actual.is_empty() {
        return 1.0;
    }
    let mean = actual.iter().sum::<f64>() / n;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = pred
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Adjusted R² penalizing model size (`k` fitted coefficients incl. the
/// constant).
pub fn adjusted_r_squared(pred: &[f64], actual: &[f64], k: usize) -> f64 {
    let n = actual.len();
    if n <= k + 1 {
        return f64::NEG_INFINITY;
    }
    let r2 = r_squared(pred, actual);
    1.0 - (1.0 - r2) * ((n - 1) as f64 / (n - k - 1) as f64)
}

/// Relative error `|pred − actual| / |actual|` per point (∞ when actual = 0
/// and pred ≠ 0).
pub fn relative_errors(pred: &[f64], actual: &[f64]) -> Vec<f64> {
    pred.iter()
        .zip(actual)
        .map(|(&p, &a)| {
            if a == 0.0 {
                if p == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (p - a).abs() / a.abs()
            }
        })
        .collect()
}

/// Evaluates a fitted model against an experiment and returns the per-point
/// relative errors.
pub fn model_relative_errors(model: &Model, exp: &Experiment) -> Vec<f64> {
    let pred: Vec<f64> = exp.points.iter().map(|m| model.eval(&m.coords)).collect();
    let actual: Vec<f64> = exp.points.iter().map(|m| m.value).collect();
    relative_errors(&pred, &actual)
}

/// The Figure-3 histogram: measurements classified by percentile relative
/// error of the model that explains them.
///
/// Buckets match the paper's figure: `<5%`, `5–10%`, `10–15%`, `15–20%`,
/// `≥20%`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorHistogram {
    /// Counts per bucket, in the order listed above.
    pub buckets: [usize; 5],
}

impl ErrorHistogram {
    /// Bucket labels aligned with [`ErrorHistogram::buckets`].
    pub const LABELS: [&'static str; 5] = ["<5%", "5-10%", "10-15%", "15-20%", ">=20%"];

    /// Adds one relative error (fraction, e.g. 0.03 for 3%).
    pub fn add(&mut self, rel_err: f64) {
        let pct = rel_err * 100.0;
        let idx = if pct < 5.0 {
            0
        } else if pct < 10.0 {
            1
        } else if pct < 15.0 {
            2
        } else if pct < 20.0 {
            3
        } else {
            4
        };
        self.buckets[idx] += 1;
    }

    /// Adds every error of a slice.
    pub fn extend(&mut self, errs: &[f64]) {
        for &e in errs {
            self.add(e);
        }
    }

    /// Total number of classified measurements.
    pub fn total(&self) -> usize {
        self.buckets.iter().sum()
    }

    /// Fraction of measurements in each bucket (empty histogram → zeros).
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total();
        if t == 0 {
            return [0.0; 5];
        }
        let mut out = [0.0; 5];
        for (o, &b) in out.iter_mut().zip(&self.buckets) {
            *o = b as f64 / t as f64;
        }
        out
    }

    /// Fraction of measurements with relative error below 5% — the paper
    /// reports 88% for its study.
    pub fn frac_below_5pct(&self) -> f64 {
        self.fractions()[0]
    }

    /// Renders an ASCII bar chart resembling Figure 3.
    pub fn render(&self) -> String {
        let fr = self.fractions();
        let mut s = String::new();
        for (label, f) in Self::LABELS.iter().zip(fr) {
            let bar = "#".repeat((f * 50.0).round() as usize);
            s.push_str(&format!("{label:>7} | {bar} {:.1}%\n", f * 100.0));
        }
        s
    }
}

/// Renders an ASCII scatter of measurements (`×`) against the model curve
/// (`·`) along one parameter, holding the others at the experiment's
/// maximum — a quick visual fit check for terminals and reports.
///
/// Both axes are log-scaled; `width`/`height` bound the plot area.
pub fn render_fit_plot(
    model: &Model,
    exp: &Experiment,
    param: usize,
    width: usize,
    height: usize,
) -> String {
    let width = width.clamp(16, 160);
    let height = height.clamp(6, 48);
    // Fix the other coordinates at their maxima; collect the points on
    // that slice.
    let maxes: Vec<f64> = (0..exp.arity())
        .map(|k| exp.axis_values(k).last().copied().unwrap_or(1.0))
        .collect();
    let pts: Vec<(f64, f64)> = exp
        .points
        .iter()
        .filter(|m| {
            m.coords
                .iter()
                .enumerate()
                .all(|(k, &v)| k == param || v == maxes[k])
        })
        .map(|m| (m.coords[param], m.value))
        .collect();
    if pts.is_empty() {
        return "(no points on the plotting slice)\n".to_string();
    }
    let (x_lo, x_hi) = pts
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &(x, _)| {
            (lo.min(x), hi.max(x))
        });
    let mut y_lo = f64::INFINITY;
    let mut y_hi = 0.0f64;
    for &(_, y) in &pts {
        y_lo = y_lo.min(y.max(1e-300));
        y_hi = y_hi.max(y);
    }
    // Include the model curve's range.
    for col in 0..width {
        let x = log_interp(x_lo, x_hi, col as f64 / (width - 1) as f64);
        let mut coords = maxes.clone();
        coords[param] = x;
        let y = model.eval(&coords).max(1e-300);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if y_hi <= y_lo {
        y_hi = y_lo * 10.0;
    }

    let col_of = |x: f64| {
        (((x.max(1e-300).ln() - x_lo.ln()) / (x_hi.ln() - x_lo.ln()).max(1e-300))
            * (width - 1) as f64)
            .round()
            .clamp(0.0, (width - 1) as f64) as usize
    };
    let row_of = |y: f64| {
        let t = (y.max(1e-300).ln() - y_lo.ln()) / (y_hi.ln() - y_lo.ln()).max(1e-300);
        ((1.0 - t) * (height - 1) as f64)
            .round()
            .clamp(0.0, (height - 1) as f64) as usize
    };

    let mut canvas = vec![vec![' '; width]; height];
    #[allow(clippy::needless_range_loop)]
    for col in 0..width {
        let x = log_interp(x_lo, x_hi, col as f64 / (width - 1) as f64);
        let mut coords = maxes.clone();
        coords[param] = x;
        canvas[row_of(model.eval(&coords))][col] = '·';
    }
    for &(x, y) in &pts {
        canvas[row_of(y)][col_of(x)] = '×';
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{:>10.3e} ┐  (× measured, · model; {} vs value, log-log)\n",
        y_hi, exp.params[param]
    ));
    for row in canvas {
        out.push_str("           │");
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>10.3e} └{}\n            {:<10.3e}{:>w$.3e}\n",
        y_lo,
        "─".repeat(width),
        x_lo,
        x_hi,
        w = width - 10
    ));
    out
}

fn log_interp(lo: f64, hi: f64, t: f64) -> f64 {
    (lo.ln() + (hi.ln() - lo.ln()) * t).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smape_zero_for_exact() {
        assert_eq!(smape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn smape_symmetric() {
        let a = smape(&[2.0], &[1.0]);
        let b = smape(&[1.0], &[2.0]);
        assert_eq!(a, b);
        assert!((a - 100.0 * 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn smape_handles_double_zero() {
        assert_eq!(smape(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn smape_empty_is_zero() {
        assert_eq!(smape(&[], &[]), 0.0);
    }

    #[test]
    fn r2_perfect_fit() {
        assert_eq!(r_squared(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn r2_mean_model_is_zero() {
        let actual = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&pred, &actual).abs() < 1e-12);
    }

    #[test]
    fn adjusted_r2_penalizes_terms() {
        let actual = [1.0, 2.1, 2.9, 4.2, 5.0, 6.1];
        let pred = [1.1, 2.0, 3.0, 4.0, 5.1, 6.0];
        let a1 = adjusted_r_squared(&pred, &actual, 1);
        let a3 = adjusted_r_squared(&pred, &actual, 3);
        assert!(a1 > a3);
    }

    #[test]
    fn adjusted_r2_degenerate_sample_count() {
        assert_eq!(
            adjusted_r_squared(&[1.0, 2.0], &[1.0, 2.0], 2),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn relative_error_cases() {
        let e = relative_errors(&[11.0, 0.0, 5.0], &[10.0, 0.0, 0.0]);
        assert!((e[0] - 0.1).abs() < 1e-12);
        assert_eq!(e[1], 0.0);
        assert_eq!(e[2], f64::INFINITY);
    }

    #[test]
    fn histogram_bucket_edges() {
        let mut h = ErrorHistogram::default();
        h.extend(&[0.0, 0.049, 0.05, 0.099, 0.10, 0.149, 0.15, 0.199, 0.2, 5.0]);
        assert_eq!(h.buckets, [2, 2, 2, 2, 2]);
        assert_eq!(h.total(), 10);
        assert!((h.frac_below_5pct() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn histogram_render_contains_labels() {
        let mut h = ErrorHistogram::default();
        h.add(0.01);
        let s = h.render();
        assert!(s.contains("<5%"));
        assert!(s.contains("100.0%"));
    }

    #[test]
    fn empty_histogram_fractions() {
        let h = ErrorHistogram::default();
        assert_eq!(h.fractions(), [0.0; 5]);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn fit_plot_renders_points_and_curve() {
        use crate::pmnf::{Exponents, Term};
        let exp = Experiment::from_fn(vec!["p"], &[&[2.0, 8.0, 32.0, 128.0]], |c| 3.0 * c[0]);
        let model = Model::new(
            0.0,
            vec![Term::new(3.0, vec![Exponents::new(1.0, 0.0)])],
            vec!["p".into()],
        );
        let s = render_fit_plot(&model, &exp, 0, 40, 10);
        assert!(s.contains('×'), "{s}");
        assert!(s.contains('·'), "{s}");
        assert!(s.contains("log-log"), "{s}");
        // Bounds are shown.
        assert!(s.contains("└"), "{s}");
    }

    #[test]
    fn fit_plot_two_params_slices_at_max() {
        use crate::pmnf::{Exponents, Term};
        let exp = Experiment::from_fn(vec!["p", "n"], &[&[2.0, 8.0], &[16.0, 64.0]], |c| {
            c[0] * c[1]
        });
        let model = Model::new(
            0.0,
            vec![Term::new(
                1.0,
                vec![Exponents::new(1.0, 0.0), Exponents::new(1.0, 0.0)],
            )],
            vec!["p".into(), "n".into()],
        );
        // Plot along p: slice fixes n at its max (64) → 2 points (plus the
        // legend's own × in the header line).
        let s = render_fit_plot(&model, &exp, 0, 30, 8);
        let body = s.split_once('\n').unwrap().1;
        assert_eq!(body.matches('×').count(), 2, "{s}");
    }

    #[test]
    fn fit_plot_empty_slice() {
        let model = Model::constant(1.0, vec!["p".into()]);
        let exp = Experiment::new(vec!["p"]);
        let s = render_fit_plot(&model, &exp, 0, 30, 8);
        assert!(s.contains("no points"), "{s}");
    }
}
