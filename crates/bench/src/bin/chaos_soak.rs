//! Network-chaos soak: every fault class the `exareq chaos` proxy can
//! inject, driven through a real router → replica stack at a fixed seed,
//! plus a chaos-proxied fleet sweep, emitted machine-readably as
//! `BENCH_chaos.json`.
//!
//! Each router round starts two in-process `exareq serve` replicas, puts
//! a seeded [`ChaosProxy`] in front of *each*, and drives a sequential
//! `/predict` burst through a router that only knows the proxy
//! addresses. The hardened net client turns every injected fault —
//! black-hole, mid-stream reset, truncation, slow-loris drip, payload
//! corruption — into a typed error; the router turns the error into
//! failover. The round gate: every 200 body byte-identical to the direct
//! [`exareq_serve::api::predict_body`] call, zero hung requests, zero
//! degraded answers.
//!
//! Every round runs **twice with the same seed** against fresh replicas
//! and fresh proxies; the per-class injected-fault counts must match
//! exactly — the chaos layer's determinism contract, asserted end to end
//! rather than just on [`ChaosPlan::schedule`].
//!
//! The fleet round shards a small survey across one chaos-fronted worker
//! and one clean worker and requires the merged artifact to be
//! byte-identical to the in-process sequential survey. `--tiny` shrinks
//! everything for CI smoke use.

use exareq::chaos::{ChaosPlan, ChaosProxy, CLASSES};
use exareq::fleet::{run_fleet, FleetConfig};
use exareq_apps::{all_apps_extended, run_survey_parallel, AppGrid, RetryPolicy};
use exareq_bench::{num, obj, write_report, LatencySummary};
use exareq_codesign::catalog;
use exareq_core::cancel::{CancelReason, CancelToken};
use exareq_profile::minijson::Json;
use exareq_router::{ProxyConfig, RouterConfig};
use exareq_serve::registry::Fitter;
use exareq_serve::{api, artifact, ModelRegistry, ServeConfig};
use exareq_sim::FaultPlan;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// The fixed seed every round draws from; change it and the report's
/// `injected` numbers change with it — identically on every machine.
const SEED: u64 = 42;

/// One raw HTTP/1.1 exchange; returns `(status, body)`.
fn http(addr: SocketAddr, request: &str, read_timeout: Duration) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to in-process router");
    stream
        .set_read_timeout(Some(read_timeout))
        .expect("read timeout");
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    let head = String::from_utf8(raw[..head_end].to_vec()).expect("response head is ASCII");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code in status line");
    (status, raw[head_end + 4..].to_vec())
}

fn http_post(addr: SocketAddr, target: &str, body: &str) -> (u16, Vec<u8>) {
    http(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
        Duration::from_secs(60),
    )
}

/// Reads one counter from the router's `/metrics` exposition.
fn metric(addr: SocketAddr, name: &str) -> f64 {
    let (status, body) = http(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: b\r\n\r\n",
        Duration::from_secs(10),
    );
    assert_eq!(status, 200, "metrics scrape");
    let text = String::from_utf8(body).expect("UTF-8 metrics");
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

/// Sums every sample of a labelled counter family from `/metrics`.
fn metric_family_sum(addr: SocketAddr, prefix: &str) -> f64 {
    let (status, body) = http(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: b\r\n\r\n",
        Duration::from_secs(10),
    );
    assert_eq!(status, 200, "metrics scrape");
    let text = String::from_utf8(body).expect("UTF-8 metrics");
    text.lines()
        .filter(|l| l.starts_with(prefix) && l.as_bytes().get(prefix.len()) == Some(&b'{'))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

/// One in-process serve engine and the token that stops it.
struct Replica {
    addr: SocketAddr,
    cancel: CancelToken,
    thread: std::thread::JoinHandle<exareq_serve::ServeSummary>,
}

fn start_replica(dir: &Path, allow_measure: bool, request_deadline: Duration) -> Replica {
    let no_fit: Box<Fitter> = Box::new(|_| Err("bench serves fitted artifacts only".to_string()));
    let registry = Arc::new(ModelRegistry::new(dir, no_fit));
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".parse().expect("loopback addr"),
        // Enough workers that a slow-loris drip pinning one (until the
        // serve-side header deadline cuts it) never queues a clean
        // attempt past the client's attempt deadline — otherwise wall
        // clock couples back into the connection sequence and the
        // per-class injected counts drift between passes.
        threads: 8,
        queue_depth: 64,
        request_deadline,
        drain_deadline: Duration::from_secs(2),
        model_dir: dir.to_path_buf(),
        allow_measure,
        keep_alive_requests: 1000,
        idle_deadline: Duration::from_secs(5),
        refresh: Default::default(),
    };
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let thread = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            exareq_serve::serve(&cfg, registry, &cancel, move |addr| {
                tx.send(addr).expect("announce bound address");
            })
            .expect("replica engine runs")
        })
    };
    let addr = rx.recv().expect("replica ready");
    Replica {
        addr,
        cancel,
        thread,
    }
}

fn stop_replica(replica: Replica) {
    replica.cancel.cancel(CancelReason::Interrupt);
    let _ = replica.thread.join();
}

/// One fault-class round description: the label in the report and the
/// plan the two proxies share.
struct ClassRound {
    label: &'static str,
    plan: ChaosPlan,
    /// Whether the class kills the attempt it lands on (and therefore
    /// must produce at least one failover at a 0.45 rate).
    kills_attempt: bool,
}

fn class_rounds(drip_ms: u64) -> Vec<ClassRound> {
    vec![
        ClassRound {
            label: "latency",
            // Probability 1 but the delay fits inside the attempt
            // deadline: every exchange is slowed, none is lost.
            plan: ChaosPlan::with_seed(SEED).latency(1.0, 120),
            kills_attempt: false,
        },
        ClassRound {
            label: "partition",
            plan: ChaosPlan::with_seed(SEED).partition(0.45),
            kills_attempt: true,
        },
        ClassRound {
            label: "reset",
            plan: ChaosPlan::with_seed(SEED).reset(0.45),
            kills_attempt: true,
        },
        ClassRound {
            label: "truncate",
            plan: ChaosPlan::with_seed(SEED).truncate(0.45),
            kills_attempt: true,
        },
        ClassRound {
            label: "slow_loris_request",
            plan: ChaosPlan::with_seed(SEED)
                .slow_request(0.45)
                .drip_interval_ms(drip_ms),
            kills_attempt: true,
        },
        ClassRound {
            label: "slow_loris_response",
            plan: ChaosPlan::with_seed(SEED)
                .slow_response(0.45)
                .drip_interval_ms(drip_ms),
            kills_attempt: true,
        },
        ClassRound {
            label: "corrupt",
            plan: ChaosPlan::with_seed(SEED).corrupt(0.45, 4),
            kills_attempt: true,
        },
        ClassRound {
            label: "mixed",
            plan: ChaosPlan::with_seed(SEED)
                .latency(0.15, 120)
                .partition(0.08)
                .reset(0.08)
                .truncate(0.08)
                .slow_request(0.06)
                .slow_response(0.06)
                .corrupt(0.08, 4)
                .drip_interval_ms(drip_ms),
            kills_attempt: true,
        },
    ]
}

/// What one pass of one round measured.
struct PassOutcome {
    requests: usize,
    seconds: f64,
    errors: u64,
    hung: u64,
    identical: bool,
    failovers: f64,
    degraded: f64,
    phase_timeouts: f64,
    injected: BTreeMap<&'static str, u64>,
    injected_total: u64,
    latency: LatencySummary,
}

/// Drives `requests` sequential `/predict` calls through a fresh
/// router → chaos → replica stack under `plan`.
fn run_pass(
    dir: &Path,
    plan: &ChaosPlan,
    requests: usize,
    attempt_deadline: Duration,
    request_deadline: Duration,
    expected: &[u8],
) -> PassOutcome {
    let chaos_cancel = CancelToken::new();
    // A 2s serve-side request deadline keeps slow-loris drips from
    // pinning the replica's two workers for the whole MAX_HOLD: the
    // header-read deadline 408s the drip fast and frees the worker, so
    // queue contention can't cascade into wall-clock-truncated attempt
    // chains that would perturb the per-class injected counts.
    let replicas: Vec<Replica> = (0..2)
        .map(|_| start_replica(dir, false, Duration::from_secs(2)))
        .collect();
    let proxies: Vec<ChaosProxy> = replicas
        .iter()
        .map(|r| {
            ChaosProxy::start(
                "127.0.0.1:0",
                &r.addr.to_string(),
                plan.clone(),
                &chaos_cancel,
            )
            .expect("chaos proxy starts")
        })
        .collect();
    let proxy_addrs: Vec<String> = proxies.iter().map(|p| p.addr().to_string()).collect();

    let mut proxy_cfg = ProxyConfig {
        request_deadline,
        attempt_deadline,
        // Far above anything an attempt can take before the sample
        // window fills: the pass stays hedge-free, so the connection
        // sequence each proxy sees is a pure function of the request
        // sequence and the seed.
        hedge_after: Duration::from_secs(30),
        backoff_base: Duration::from_millis(5),
        // A tripped breaker re-admits its trial on the very next
        // request instead of idling through a wall-clock cooldown the
        // two passes could disagree about.
        breaker_cooldown: Duration::from_millis(1),
        ..ProxyConfig::default()
    };
    // One probe per replica at startup, then silence: probes draw from
    // the same per-connection fault stream as requests, so an unbounded
    // cadence would make the injected counts depend on wall clock.
    proxy_cfg.health.probe_interval = Duration::from_secs(3600);
    proxy_cfg.health.suspect_after = 1_000_000;
    proxy_cfg.health.dead_after = 1_000_000;
    let router_cfg = RouterConfig {
        addr: "127.0.0.1:0".parse().expect("loopback addr"),
        threads: 2,
        queue_depth: 64,
        replicas: proxy_addrs,
        model_dir: dir.to_path_buf(),
        drain_deadline: Duration::from_secs(5),
        proxy: proxy_cfg,
    };
    let no_fit: Box<Fitter> = Box::new(|_| Err("bench serves fitted artifacts only".to_string()));
    let router_registry = Arc::new(ModelRegistry::new(dir, no_fit));
    let router_cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let router_thread = {
        let cancel = router_cancel.clone();
        std::thread::spawn(move || {
            exareq_router::route(&router_cfg, router_registry, &cancel, move |addr| {
                tx.send(addr).expect("announce bound address");
            })
            .expect("router engine runs")
        })
    };
    let router_addr = rx.recv().expect("router ready");
    // Let the two startup probes claim connection 0 on each proxy
    // before the request sequence starts claiming indices.
    std::thread::sleep(Duration::from_millis(300));

    let request_body = r#"{"model":"Kripke","p":1e6,"n":4096}"#;
    let hang_cap = request_deadline + Duration::from_secs(3);
    let started = Instant::now();
    let mut latencies = Vec::with_capacity(requests);
    let (mut errors, mut hung, mut identical) = (0u64, 0u64, true);
    for _ in 0..requests {
        let t0 = Instant::now();
        let (status, body) = http_post(router_addr, "/predict", request_body);
        let took = t0.elapsed();
        latencies.push(took.as_secs_f64() * 1e3);
        if took > hang_cap {
            hung += 1;
        }
        if status == 200 {
            identical &= body == expected;
        } else {
            errors += 1;
        }
    }
    let seconds = started.elapsed().as_secs_f64();

    let failovers = metric(router_addr, "router_failover_total");
    let degraded = metric(router_addr, "router_degraded_total");
    let phase_timeouts = metric_family_sum(router_addr, "net_request_phase_timeouts_total");

    router_cancel.cancel(CancelReason::Interrupt);
    let summary = router_thread.join().expect("router thread");
    assert!(summary.drained, "router must drain between passes");

    chaos_cancel.cancel(CancelReason::Interrupt);
    let mut injected: BTreeMap<&'static str, u64> =
        CLASSES.iter().map(|c| (c.label(), 0u64)).collect();
    let mut injected_total = 0u64;
    for proxy in proxies {
        for (label, count) in proxy.metrics().counts() {
            *injected.entry(label).or_insert(0) += count;
            injected_total += count;
        }
        proxy.join();
    }
    for replica in replicas {
        stop_replica(replica);
    }

    PassOutcome {
        requests,
        seconds,
        errors,
        hung,
        identical,
        failovers,
        degraded,
        phase_timeouts,
        injected,
        injected_total,
        latency: LatencySummary::from_samples(&latencies),
    }
}

/// The fleet stage: a 4-config survey sharded across one chaos-fronted
/// worker and one clean worker, merged artifact compared byte-for-byte
/// against the sequential in-process survey.
fn run_fleet_stage(dir: &Path) -> (bool, bool, f64, u64) {
    let fault_spec = "seed=7,drop=0.01";
    let faults = FaultPlan::parse(fault_spec).expect("fault spec");
    let grid = AppGrid {
        p_values: vec![2, 4],
        n_values: vec![64, 256],
    };
    let retry = RetryPolicy {
        max_attempts: 1,
        ..RetryPolicy::default()
    };
    let apps = all_apps_extended();
    let app = apps
        .iter()
        .find(|a| a.name() == "Relearn")
        .expect("Relearn twin");

    let baseline = run_survey_parallel(
        app.as_ref(),
        &grid,
        &faults,
        &retry,
        None,
        &CancelToken::new(),
        1,
    )
    .expect("sequential baseline");
    let baseline_json = baseline.try_to_json().expect("baseline JSON");

    let chaos_cancel = CancelToken::new();
    let workers: Vec<Replica> = (0..2)
        .map(|_| start_replica(dir, true, Duration::from_secs(30)))
        .collect();
    // Every dispatch and probe toward worker 0 is answered with a
    // mid-stream reset; the coordinator must route around it.
    let proxy = ChaosProxy::start(
        "127.0.0.1:0",
        &workers[0].addr.to_string(),
        ChaosPlan::with_seed(SEED).reset(1.0),
        &chaos_cancel,
    )
    .expect("chaos proxy starts");

    let cfg = FleetConfig {
        workers: vec![proxy.addr().to_string(), workers[1].addr.to_string()],
        shard_size: 1,
        shard_deadline: Duration::from_secs(10),
        jitter_seed: SEED,
        ..FleetConfig::default()
    };
    let (survey, report) = run_fleet(
        app.as_ref(),
        &grid,
        &faults,
        fault_spec,
        &retry,
        None,
        &CancelToken::new(),
        &cfg,
    )
    .expect("fleet run");
    let fleet_json = survey.try_to_json().expect("fleet JSON");

    chaos_cancel.cancel(CancelReason::Interrupt);
    let injected = proxy.metrics().injected_total();
    proxy.join();
    for worker in workers {
        stop_replica(worker);
    }
    (
        fleet_json == baseline_json,
        report.fallback,
        report.redispatches as f64,
        injected,
    )
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let (requests, attempt_deadline, request_deadline) = if tiny {
        (8usize, Duration::from_millis(500), Duration::from_secs(8))
    } else {
        (20, Duration::from_millis(700), Duration::from_secs(12))
    };
    let drip_ms = 40;

    let dir = std::env::temp_dir().join(format!("exareq_chaos_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("model dir");
    for app in catalog::paper_models() {
        std::fs::write(
            dir.join(format!("{}.json", app.name.to_lowercase())),
            artifact::requirements_to_string(&app),
        )
        .expect("write artifact");
    }
    let expected = api::predict_body(&catalog::kripke(), 1e6, 4096.0);

    eprintln!(
        "chaos soak: seed {SEED}, {requests} requests/round x 2 passes, attempt deadline {:?}",
        attempt_deadline
    );
    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut all_reproducible = true;
    let mut any_hung = 0u64;
    let mut any_degraded = 0.0;
    let mut kills_failed_over = true;
    for round in class_rounds(drip_ms) {
        let first = run_pass(
            &dir,
            &round.plan,
            requests,
            attempt_deadline,
            request_deadline,
            expected.as_bytes(),
        );
        let second = run_pass(
            &dir,
            &round.plan,
            requests,
            attempt_deadline,
            request_deadline,
            expected.as_bytes(),
        );
        let reproducible = first.injected == second.injected;
        all_identical &= first.identical && second.identical;
        all_reproducible &= reproducible;
        any_hung += first.hung + second.hung;
        any_degraded += first.degraded + second.degraded;
        if round.kills_attempt {
            kills_failed_over &= first.failovers > 0.0 && second.failovers > 0.0;
        }
        eprintln!(
            "  {:<20} {} injected ({} classes), {} failovers, {} phase timeouts, \
             p50 {:.1} ms, p99 {:.1} ms, errors {}{}{}",
            round.label,
            first.injected_total,
            first.injected.values().filter(|&&c| c > 0).count(),
            first.failovers,
            first.phase_timeouts,
            first.latency.p50_ms,
            first.latency.p99_ms,
            first.errors,
            if first.identical && second.identical {
                ""
            } else {
                ", NOT IDENTICAL"
            },
            if reproducible {
                ""
            } else {
                ", NOT REPRODUCIBLE"
            }
        );
        let injected_members: Vec<(&str, Json)> = first
            .injected
            .iter()
            .map(|(&label, &count)| (label, num(count as f64)))
            .collect();
        let mut members = vec![
            ("class", Json::Str(round.label.to_string())),
            ("requests", num(first.requests as f64)),
            ("seconds", num(first.seconds)),
            ("errors", num((first.errors + second.errors) as f64)),
            ("hung", num((first.hung + second.hung) as f64)),
            ("identical", Json::Bool(first.identical && second.identical)),
            ("reproducible", Json::Bool(reproducible)),
            ("failover_total", num(first.failovers)),
            ("degraded_total", num(first.degraded)),
            ("net_phase_timeouts", num(first.phase_timeouts)),
            ("injected_total", num(first.injected_total as f64)),
            ("injected", obj(injected_members)),
        ];
        members.extend(first.latency.to_members());
        rows.push(obj(members));
    }

    eprintln!("  fleet stage: sharded survey through an always-reset proxy");
    let (fleet_identical, fleet_fallback, fleet_redispatches, fleet_injected) =
        run_fleet_stage(&dir);
    all_identical &= fleet_identical;
    eprintln!(
        "  fleet: identical={fleet_identical}, fallback={fleet_fallback}, \
         {fleet_redispatches} redispatches, {fleet_injected} resets injected"
    );

    let report = obj(vec![
        ("schema", num(1.0)),
        ("seed", num(SEED as f64)),
        ("model", Json::Str("Kripke".to_string())),
        ("requests_per_round", num(requests as f64)),
        ("rounds", Json::Arr(rows)),
        (
            "fleet",
            obj(vec![
                ("identical", Json::Bool(fleet_identical)),
                ("fallback", Json::Bool(fleet_fallback)),
                ("redispatch_total", num(fleet_redispatches)),
                ("injected_total", num(fleet_injected as f64)),
            ]),
        ),
    ]);
    write_report("BENCH_chaos.json", &report.to_line());
    let _ = std::fs::remove_dir_all(&dir);

    if !all_identical {
        eprintln!("error: an answer served under chaos diverged from the direct library call");
        std::process::exit(1);
    }
    if !all_reproducible {
        eprintln!("error: the same seed injected different fault counts across passes");
        std::process::exit(1);
    }
    if any_hung > 0 {
        eprintln!("error: {any_hung} requests hung past the deadline cap");
        std::process::exit(1);
    }
    if any_degraded > 0.0 {
        eprintln!("error: chaos pushed the router into degraded mode with healthy replicas");
        std::process::exit(1);
    }
    if !kills_failed_over {
        eprintln!("error: an attempt-killing fault class produced no failover");
        std::process::exit(1);
    }
    if fleet_fallback {
        eprintln!("error: the fleet fell back in-process with a healthy worker available");
        std::process::exit(1);
    }
}
