//! Parallel survey execution: a bounded worker pool in front of a
//! canonical-order sequencer.
//!
//! The measurement grid of a survey is embarrassingly parallel: every
//! `(p, n)` configuration derives its fault seeds purely from
//! `(plan seed, p, n, attempt)` ([`exareq_sim::derive_attempt_seed`]), so
//! configurations can be measured in any order — or concurrently — and
//! still produce bit-identical results. What is *not* order-free is the
//! observable trail: the in-memory [`Survey`] folds observations in grid
//! order, and the write-ahead journal's crash-consistency story (PRs 2–3)
//! assumes the file is a canonical-order prefix of completed configs.
//!
//! [`run_survey_parallel`] therefore splits the sequential driver in two:
//!
//! - **workers** (up to `jobs` OS threads) claim pending configurations in
//!   canonical grid order from a shared counter and measure them under the
//!   same retry policy as the sequential driver
//!   ([`crate::resilient::measure_config_resilient`] — literally the same
//!   function);
//! - a **sequencer/reorder buffer** hands each finished result to the
//!   committer in canonical order. The committer (the calling thread)
//!   journals, folds into the survey, and charges the probe budget —
//!   exactly the sequential driver's commit sequence, so journal bytes,
//!   survey artifacts, resume behaviour, and budget-deterministic
//!   preemption are all byte-identical to `--jobs 1`.
//!
//! Cancellation (`SIGINT`/`SIGTERM`/`--deadline-ms`) drains rather than
//! tears: in-flight measurements observe the shared token at their rank
//! chokepoints and wind down discarded, workers stop claiming, and the
//! committer stops committing at its canonical cursor — the journal keeps
//! only whole completed configurations, in canonical order, just like a
//! sequential preemption.

use crate::resilient::{measure_config_resilient, run_survey_cancellable};
use crate::{AppGrid, MiniApp, RetryPolicy, SurveyRunError};
use exareq_core::cancel::CancelToken;
use exareq_profile::journal::{apply_entry, JournalEntry, SurveyJournal};
use exareq_profile::Survey;
use exareq_sim::FaultPlan;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Reorder buffer between the worker pool and the committer: workers
/// deposit results under any interleaving; the committer takes them in
/// canonical index order, blocking until the next one is in.
struct Sequencer {
    slots: Mutex<Vec<Option<Result<JournalEntry, SurveyRunError>>>>,
    ready: Condvar,
}

impl Sequencer {
    fn new(len: usize) -> Self {
        Sequencer {
            slots: Mutex::new((0..len).map(|_| None).collect()),
            ready: Condvar::new(),
        }
    }

    fn put(&self, idx: usize, result: Result<JournalEntry, SurveyRunError>) {
        let mut slots = self.slots.lock().expect("sequencer lock");
        slots[idx] = Some(result);
        self.ready.notify_all();
    }

    /// Blocks until slot `idx` is filled, then takes it. Only ever called
    /// for indices some worker is guaranteed to fill (claims advance in
    /// index order and a claimed slot is always deposited, even on error).
    fn take(&self, idx: usize) -> Result<JournalEntry, SurveyRunError> {
        let mut slots = self.slots.lock().expect("sequencer lock");
        loop {
            if let Some(result) = slots[idx].take() {
                return result;
            }
            slots = self.ready.wait(slots).expect("sequencer lock");
        }
    }
}

/// Picks the default worker count for a sweep of `grid`: the machine's
/// available parallelism, capped so that `jobs × max(p)` rank threads stay
/// within a small multiple of the cores.
///
/// Rank threads spend most of their life blocked on channels, so modest
/// oversubscription (the cap allows `2 × cores` rank threads in flight) is
/// free; unbounded oversubscription is not — hundreds of runnable threads
/// thrash the scheduler and, at the extreme, can starve a run long enough
/// for its hang watchdog to misfire. Returns at least 1.
pub fn default_jobs(grid: &AppGrid) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_p = grid.p_values.iter().copied().max().unwrap_or(1).max(1);
    (2 * cores / max_p).clamp(1, cores)
}

/// Runs an application survey with up to `jobs` configurations measured
/// concurrently, preserving every guarantee of the sequential driver.
///
/// Semantics are **byte-identical** to
/// [`run_survey_cancellable`](crate::run_survey_cancellable) for any
/// `jobs`:
///
/// - per-config measurements are order-independent (seeds derive from
///   `(plan, p, n, attempt)` only), and the committer folds results into
///   the [`Survey`] in canonical grid order;
/// - journal appends happen on the committer, in canonical order, each
///   fsynced before the next — an interrupted parallel sweep leaves the
///   same canonical-order prefix of whole configs a sequential one would,
///   and resuming it (with any job count) completes to the same bytes;
/// - the probe budget ([`CancelToken::with_budget`]) is charged by the
///   committer after each committed config, so `with_budget(k)` journals
///   exactly `k` configurations — the deterministic preemption lever the
///   tests rely on — regardless of `jobs`;
/// - cancellation drains: workers stop claiming, in-flight measurements
///   wind down via their rank-chokepoint probes and are discarded, and the
///   committer returns [`SurveyRunError::Cancelled`] without journaling
///   anything past its canonical cursor. Results already measured beyond
///   that cursor are deliberately dropped (journaling them would make the
///   file diverge from the sequential prefix shape).
///
/// `jobs <= 1` (or a grid of at most one pending config) delegates to the
/// sequential driver outright.
///
/// # Errors
/// Exactly [`run_survey_cancellable`](crate::run_survey_cancellable)'s:
/// journal I/O failures, per-config wall-clock budget exhaustion (reported
/// at its canonical grid position), and cancellation.
pub fn run_survey_parallel(
    app: &dyn MiniApp,
    grid: &AppGrid,
    faults: &FaultPlan,
    retry: &RetryPolicy,
    mut journal: Option<&mut SurveyJournal>,
    cancel: &CancelToken,
    jobs: usize,
) -> Result<Survey, SurveyRunError> {
    let configs: Vec<(usize, u64)> = grid
        .p_values
        .iter()
        .flat_map(|&p| grid.n_values.iter().map(move |&n| (p, n)))
        .collect();
    // Resolve journal replays up front (the pool never touches the
    // journal; only the committer holds its mutable borrow).
    let replayed: Vec<Option<JournalEntry>> = configs
        .iter()
        .map(|&(p, n)| journal.as_deref().and_then(|j| j.get(p as u64, n)).cloned())
        .collect();
    let pending: Vec<usize> = (0..configs.len())
        .filter(|&i| replayed[i].is_none())
        .collect();
    if jobs <= 1 || pending.len() <= 1 {
        return run_survey_cancellable(app, grid, faults, retry, journal, cancel);
    }

    let seq = Sequencer::new(configs.len());
    let next_claim = AtomicUsize::new(0);
    // Raised on the first error (cancellation, budget exhaustion, journal
    // failure): workers finish the config they are measuring — earlier
    // canonical slots must still fill — but claim nothing new.
    let abort = AtomicBool::new(false);

    let mut survey = Survey::new(app.name());
    let mut outcome = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(pending.len()) {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let claim = next_claim.fetch_add(1, Ordering::Relaxed);
                let Some(&idx) = pending.get(claim) else {
                    break;
                };
                let (p, n) = configs[idx];
                // The same probe the sequential driver runs before each
                // measurement; a cancelled claim still deposits, so the
                // committer never waits on an abandoned slot.
                let result = match cancel.checkpoint() {
                    Err(c) => Err(SurveyRunError::Cancelled { reason: c.reason }),
                    Ok(()) => measure_config_resilient(app, p, n, faults, retry, cancel),
                };
                if result.is_err() {
                    abort.store(true, Ordering::Relaxed);
                }
                seq.put(idx, result);
            });
        }

        // The committer: canonical order, sequential commit sequence.
        for (idx, entry) in replayed.iter().enumerate() {
            if let Some(entry) = entry {
                apply_entry(&mut survey, entry);
                continue;
            }
            if let Err(c) = cancel.checkpoint() {
                outcome = Err(SurveyRunError::Cancelled { reason: c.reason });
                break;
            }
            match seq.take(idx) {
                Ok(entry) => {
                    if let Some(j) = journal.as_deref_mut() {
                        if let Err(e) = j.append(&entry) {
                            outcome = Err(e.into());
                            break;
                        }
                    }
                    apply_entry(&mut survey, &entry);
                    cancel.consume(1);
                }
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        if outcome.is_err() {
            abort.store(true, Ordering::Relaxed);
        }
    });
    outcome.map(|()| survey)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{survey_app_resilient, Relearn};
    use exareq_core::cancel::CancelReason;
    use exareq_profile::journal::SurveyManifest;

    fn grid() -> AppGrid {
        AppGrid {
            p_values: vec![2, 4],
            n_values: vec![64, 256],
        }
    }

    fn manifest() -> SurveyManifest {
        SurveyManifest::new(
            "Relearn",
            grid().p_values.iter().map(|&p| p as u64).collect(),
            grid().n_values.clone(),
            "seed=7,drop=0.01",
        )
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("exareq_parallel_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn parallel_survey_equals_sequential() {
        let plan = FaultPlan::with_seed(7).drop(0.01);
        let retry = RetryPolicy::retries(1);
        let sequential = survey_app_resilient(&Relearn, &grid(), &plan, &retry);
        for jobs in [2, 4, 8] {
            let parallel = run_survey_parallel(
                &Relearn,
                &grid(),
                &plan,
                &retry,
                None,
                &CancelToken::new(),
                jobs,
            )
            .unwrap();
            assert_eq!(parallel, sequential, "jobs = {jobs}");
        }
    }

    #[test]
    fn default_jobs_is_at_least_one_and_caps_oversubscription() {
        let jobs = default_jobs(&grid());
        assert!(jobs >= 1);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(jobs <= cores);
        // A huge p caps the pool down to a single in-flight config.
        let wide = AppGrid {
            p_values: vec![4096],
            n_values: vec![64],
        };
        assert_eq!(default_jobs(&wide), 1);
    }

    #[test]
    fn probe_budget_commits_exactly_k_under_parallelism() {
        let plan = FaultPlan::with_seed(7).drop(0.01);
        let retry = RetryPolicy::retries(1);
        let path = tmp("budget.jsonl");
        let mut j = SurveyJournal::create(&path, manifest()).unwrap();
        let token = CancelToken::with_budget(2);
        let err = run_survey_parallel(&Relearn, &grid(), &plan, &retry, Some(&mut j), &token, 4)
            .unwrap_err();
        assert!(matches!(
            err,
            SurveyRunError::Cancelled {
                reason: CancelReason::Budget
            }
        ));
        drop(j);
        let j = SurveyJournal::resume(&path, &manifest()).unwrap();
        assert_eq!(j.entries().len(), 2, "budget k must journal exactly k");
        // The prefix is canonical: the first two grid configs, in order.
        assert_eq!(
            j.entries().iter().map(|e| (e.p, e.n)).collect::<Vec<_>>(),
            vec![(2, 64), (2, 256)]
        );
    }

    #[test]
    fn pre_cancelled_token_measures_nothing_in_parallel() {
        let token = CancelToken::new();
        token.cancel(CancelReason::Interrupt);
        let err = run_survey_parallel(
            &Relearn,
            &grid(),
            &FaultPlan::none(),
            &RetryPolicy::default(),
            None,
            &token,
            4,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SurveyRunError::Cancelled {
                reason: CancelReason::Interrupt
            }
        ));
    }

    #[test]
    fn fully_journaled_sweep_replays_without_workers() {
        let plan = FaultPlan::with_seed(7).drop(0.01);
        let retry = RetryPolicy::retries(1);
        let full = survey_app_resilient(&Relearn, &grid(), &plan, &retry);
        let path = tmp("replay.jsonl");
        let mut j = SurveyJournal::create(&path, manifest()).unwrap();
        run_survey_parallel(
            &Relearn,
            &grid(),
            &plan,
            &retry,
            Some(&mut j),
            &CancelToken::new(),
            4,
        )
        .unwrap();
        drop(j);
        let mut j = SurveyJournal::resume(&path, &manifest()).unwrap();
        assert_eq!(j.entries().len(), 4);
        let replayed = run_survey_parallel(
            &Relearn,
            &grid(),
            &plan,
            &retry,
            Some(&mut j),
            &CancelToken::new(),
            4,
        )
        .unwrap();
        assert_eq!(replayed, full);
    }
}
