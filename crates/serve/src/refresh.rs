//! The online refresher behind `POST /observations`: journal first, then
//! decide, then (maybe) refit and atomically republish.
//!
//! Every accepted observation is durably appended to the model's
//! observation journal (`<artifact>.obs.jsonl`, same fsync discipline as
//! the survey journal) **before** the daemon acknowledges it — a crash
//! after the 200 loses nothing. The [`StalenessPolicy`] then picks one of
//! three moves:
//!
//! - **skip** — too few observations; keep serving the current model;
//! - **incremental** — refit the served hypothesis' coefficients to the
//!   full observation set through rank-1 QR updates
//!   ([`IncrementalFit`]) and republish;
//! - **full** — re-run the PMNF hypothesis search
//!   ([`full_refit`]) when the incremental fit's cross-validated SMAPE
//!   drifted past tolerance or enough observations piled up.
//!
//! Republishing is an atomic artifact swap: the refitted
//! [`AppRequirements`] — now carrying a [`ArtifactQuality`] block with
//! per-metric CV SMAPE and LOO confidence intervals — is written with
//! `fsio::write_atomic` over the *same* artifact file, and the registry
//! rescan picks it up as a normal hot reload (generation bump). Readers
//! never see a torn artifact; a `SIGKILL` mid-refit leaves the old file.
//!
//! One mutex serializes refresh decisions. That is deliberate: refits for
//! the same model must not race each other's artifact swaps, and the
//! observation rates this daemon is built for (hand-fed or CI-fed
//! measurements) are nowhere near the lock's throughput.

use crate::api::{ObservationOutcome, ObservationQuery};
use crate::artifact::{self, MetricQuality};
use crate::metrics::Metrics;
use crate::registry::{ArtifactKind, ModelEntry, ModelRegistry};
use exareq_codesign::AppRequirements;
use exareq_core::fit::FitConfig;
use exareq_core::fsio;
use exareq_core::pmnf::Model;
use exareq_core::refresh::{full_refit, IncrementalFit, RefitDecision, StalenessPolicy};
use exareq_profile::journal::JournalError;
use exareq_profile::obslog::{ObsEntry, ObsLine, ObsManifest, ObservationLog};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

/// Knobs for the refresh subsystem, set from `exareq serve --refresh-*`.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshSettings {
    /// When to skip / refit incrementally / re-search.
    pub policy: StalenessPolicy,
    /// Fit configuration for full re-searches. Defaults to the coarse
    /// space — a refresh refit answers inside a request deadline; the
    /// thorough space belongs to offline `exareq models` runs.
    pub fit: FitConfig,
}

impl Default for RefreshSettings {
    fn default() -> Self {
        RefreshSettings {
            policy: StalenessPolicy::default(),
            fit: FitConfig::coarse(),
        }
    }
}

/// Why an observation was not accepted (or a refit not published).
#[derive(Debug)]
pub enum ObserveError {
    /// No model of that name is served — 404.
    UnknownModel,
    /// The model exists but cannot be refreshed — 409 with the reason.
    NotRefreshable(String),
    /// The journal could not be opened or appended — 500; the observation
    /// must be considered unrecorded.
    Journal(JournalError),
    /// The refitted artifact could not be swapped in — 500. The
    /// observation *was* journaled; a later observation retries the refit.
    Publish(exareq_core::fsio::ExareqIoError),
}

impl core::fmt::Display for ObserveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ObserveError::UnknownModel => write!(f, "unknown model"),
            ObserveError::NotRefreshable(reason) => write!(f, "{reason}"),
            ObserveError::Journal(e) => write!(f, "observation journal: {e}"),
            ObserveError::Publish(e) => write!(f, "publish refit: {e}"),
        }
    }
}

impl std::error::Error for ObserveError {}

/// Per-model refresh state: the open journal plus the CV-SMAPE baselines
/// established by each metric's last full re-search (drift is measured
/// against these; they reset to "unknown" on restart, which only delays
/// the drift trigger — the count trigger still bounds staleness).
struct ModelState {
    log: ObservationLog,
    baseline_cv: BTreeMap<String, f64>,
}

/// The refresh engine: owns the observation journals for every model that
/// has received observations, applies the staleness policy, performs
/// refits, and swaps artifacts. Shared across workers behind an `Arc`.
pub struct Refresher {
    dir: PathBuf,
    settings: RefreshSettings,
    states: Mutex<BTreeMap<String, ModelState>>,
}

/// The journal path for an artifact file: `a.json` → `a.obs.jsonl`.
/// The `.jsonl` extension keeps it invisible to the registry's `.json`
/// directory scan.
fn journal_path(dir: &std::path::Path, source: &str) -> PathBuf {
    let stem = source.strip_suffix(".json").unwrap_or(source);
    dir.join(format!("{stem}.obs.jsonl"))
}

/// `app` with the model behind `metric` replaced.
fn with_metric_model(app: &AppRequirements, metric: &str, model: Model) -> AppRequirements {
    let mut out = app.clone();
    match metric {
        "bytes_used" => out.bytes_used = model,
        "flops" => out.flops = model,
        "comm_bytes" => out.comm_bytes = model,
        "loads_stores" => out.loads_stores = model,
        "stack_distance" => out.stack_distance = model,
        other => unreachable!("parse_observation admits only model fields, got {other}"),
    }
    out
}

/// The served model behind `metric`.
fn metric_model<'a>(app: &'a AppRequirements, metric: &str) -> &'a Model {
    match metric {
        "bytes_used" => &app.bytes_used,
        "flops" => &app.flops,
        "comm_bytes" => &app.comm_bytes,
        "loads_stores" => &app.loads_stores,
        "stack_distance" => &app.stack_distance,
        other => unreachable!("parse_observation admits only model fields, got {other}"),
    }
}

impl Refresher {
    /// A refresher over the registry's model directory. Existing
    /// observation journals in `dir` are re-opened (resuming their
    /// torn-tail recovery), so staleness gauges survive a daemon restart.
    pub fn new(dir: impl Into<PathBuf>, settings: RefreshSettings) -> Self {
        let dir = dir.into();
        let mut states = BTreeMap::new();
        if let Ok(rd) = std::fs::read_dir(&dir) {
            for entry in rd.flatten() {
                let path = entry.path();
                let is_log = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".obs.jsonl"));
                if !is_log {
                    continue;
                }
                // Resume against the journal's own manifest; a mismatch
                // with the served artifact surfaces on the next observe.
                if let Ok((manifest, _)) = ObservationLog::load(&path) {
                    if let Ok(log) = ObservationLog::resume(&path, &manifest) {
                        states.insert(
                            manifest.model.clone(),
                            ModelState {
                                log,
                                baseline_cv: BTreeMap::new(),
                            },
                        );
                    }
                }
            }
        }
        Refresher {
            dir,
            settings,
            states: Mutex::new(states),
        }
    }

    /// The settings in force.
    pub fn settings(&self) -> &RefreshSettings {
        &self.settings
    }

    /// Accepts one observation: journals it durably, applies the staleness
    /// policy, performs and publishes any refit it calls for, and reports
    /// what happened. `registry` is rescanned after a publish so the swap
    /// is visible to the very next request.
    ///
    /// # Errors
    /// [`ObserveError`]; the observation is on disk for every outcome
    /// except `UnknownModel`, `NotRefreshable`, and `Journal`.
    pub fn observe(
        &self,
        registry: &ModelRegistry,
        metrics: &Metrics,
        q: &ObservationQuery,
    ) -> Result<ObservationOutcome, ObserveError> {
        registry.refresh();
        let entry = registry.entry(&q.model).ok_or(ObserveError::UnknownModel)?;
        if entry.kind != ArtifactKind::Requirements {
            return Err(ObserveError::NotRefreshable(
                "model is served from a survey artifact; refresh needs a requirements \
                 artifact (republish with `exareq model <survey> --artifact FILE`)"
                    .to_string(),
            ));
        }
        let model = metric_model(&entry.requirements, &q.metric);
        if model.params.len() != 2 {
            return Err(ObserveError::NotRefreshable(format!(
                "model has {} parameters; POST /observations carries (p, n)",
                model.params.len()
            )));
        }
        let coords = vec![q.p, q.n];

        let mut states = self.states.lock().unwrap_or_else(|e| e.into_inner());
        if !states.contains_key(&q.model) {
            let manifest = ObsManifest::new(q.model.clone(), model.params.clone());
            let log = ObservationLog::open(journal_path(&self.dir, &entry.source), manifest)
                .map_err(ObserveError::Journal)?;
            states.insert(
                q.model.clone(),
                ModelState {
                    log,
                    baseline_cv: BTreeMap::new(),
                },
            );
        }
        let state = states.get_mut(&q.model).expect("state just ensured");

        // 1. Journal first. After this returns the observation is durable
        //    and the request must answer 200 even if the refit fails.
        state
            .log
            .append(&ObsLine::Observation(ObsEntry {
                coords: coords.clone(),
                metric: q.metric.clone(),
                value: q.value,
            }))
            .map_err(ObserveError::Journal)?;
        metrics.record_observation();

        // 2. Fit the served hypothesis to the metric's full observation
        //    set. A degenerate or under-determined fit is not an error —
        //    the observation is recorded, the refit waits for more data.
        let points = state.log.metric_points(&q.metric);
        let since_full = state.log.since_full_refit(&q.metric);
        let fit = IncrementalFit::new(model, &points).ok();
        let loo = fit.as_ref().and_then(|f| f.loo().ok());

        // 3. Decide.
        let decision = self.settings.policy.decide(
            points.len(),
            since_full,
            state.baseline_cv.get(&q.metric).copied(),
            loo.as_ref().map(|l| l.cv_smape),
        );

        let mut outcome = ObservationOutcome {
            model: q.model.clone(),
            metric: q.metric.clone(),
            observations: points.len() as u64,
            since_full_refit: since_full,
            refit: "none",
            generation: registry.generation(),
            cv_smape: loo.as_ref().map(|l| l.cv_smape),
            ci95_rel: loo.as_ref().map(|l| l.ci95_rel),
        };

        match decision {
            RefitDecision::Skip => {}
            RefitDecision::Incremental => {
                if let (Some(fit), Some(loo)) = (&fit, &loo) {
                    self.publish(
                        registry,
                        state,
                        &entry,
                        q,
                        fit.model().clone(),
                        loo.cv_smape,
                        loo.ci95_rel,
                        points.len() as u64,
                        false,
                    )?;
                    metrics.record_refit(false);
                    outcome.refit = "incremental";
                    outcome.generation = registry.generation();
                }
            }
            RefitDecision::Full => {
                let exp = {
                    let mut exp = exareq_core::measurement::Experiment::new(model.params.clone());
                    for (c, v) in &points {
                        exp.push(c, *v);
                    }
                    exp
                };
                match full_refit(&exp, &self.settings.fit) {
                    Ok(fitted) => {
                        // Confidence interval for the fresh hypothesis,
                        // from its own LOO residuals.
                        let ci = IncrementalFit::new(&fitted.model, &points)
                            .ok()
                            .and_then(|f| f.loo().ok());
                        let ci95 = ci.as_ref().map_or(f64::NAN, |l| l.ci95_rel);
                        self.publish(
                            registry,
                            state,
                            &entry,
                            q,
                            fitted.model.clone(),
                            fitted.cv_smape,
                            ci95,
                            points.len() as u64,
                            true,
                        )?;
                        metrics.record_refit(true);
                        state.baseline_cv.insert(q.metric.clone(), fitted.cv_smape);
                        outcome.refit = "full";
                        outcome.generation = registry.generation();
                        outcome.since_full_refit = 0;
                        outcome.cv_smape = Some(fitted.cv_smape);
                        outcome.ci95_rel = ci.map(|l| l.ci95_rel);
                    }
                    Err(_) if fit.is_some() && loo.is_some() => {
                        // The search failed on this observation set; fall
                        // back to the incremental path and try the search
                        // again next time.
                        let (fit, loo) = (fit.as_ref().unwrap(), loo.as_ref().unwrap());
                        self.publish(
                            registry,
                            state,
                            &entry,
                            q,
                            fit.model().clone(),
                            loo.cv_smape,
                            loo.ci95_rel,
                            points.len() as u64,
                            false,
                        )?;
                        metrics.record_refit(false);
                        outcome.refit = "incremental";
                        outcome.generation = registry.generation();
                    }
                    Err(_) => {}
                }
            }
        }
        Ok(outcome)
    }

    /// Swaps the refitted model in: atomic artifact rewrite (with the
    /// updated quality block), durable refit mark in the journal, registry
    /// rescan.
    #[allow(clippy::too_many_arguments)]
    fn publish(
        &self,
        registry: &ModelRegistry,
        state: &mut ModelState,
        entry: &ModelEntry,
        q: &ObservationQuery,
        model: Model,
        cv_smape: f64,
        ci95_rel: f64,
        observations: u64,
        full: bool,
    ) -> Result<(), ObserveError> {
        let app = with_metric_model(&entry.requirements, &q.metric, model);
        let mut quality = entry
            .quality
            .clone()
            .unwrap_or_default();
        quality.refit_generation = registry.generation() + 1;
        quality.metrics.insert(
            q.metric.clone(),
            MetricQuality {
                cv_smape,
                ci95_rel,
                observations,
            },
        );
        fsio::write_atomic(
            self.dir.join(&entry.source),
            artifact::requirements_to_string_with_quality(&app, Some(&quality)),
        )
        .map_err(ObserveError::Publish)?;
        state
            .log
            .append(&ObsLine::RefitMark {
                metric: q.metric.clone(),
                kind: if full { "full" } else { "incremental" }.to_string(),
            })
            .map_err(ObserveError::Journal)?;
        registry.refresh();
        Ok(())
    }

    /// One `(model, journaled observations, observations since the last
    /// full refit)` row per tracked model, sorted by name — the `/models`
    /// staleness view. "Since last full refit" is the maximum over the
    /// model's metrics (the stalest metric dominates).
    pub fn observed(&self) -> Vec<(String, u64, u64)> {
        let states = self.states.lock().unwrap_or_else(|e| e.into_inner());
        states
            .iter()
            .map(|(name, s)| {
                let since = artifact::MODEL_FIELDS
                    .iter()
                    .map(|m| s.log.since_full_refit(m))
                    .max()
                    .unwrap_or(0);
                (name.clone(), s.log.observations(), since)
            })
            .collect()
    }

    /// The `(model, observations since last full refit)` gauge rows for
    /// `/metrics`.
    pub fn staleness(&self) -> Vec<(String, u64)> {
        self.observed()
            .into_iter()
            .map(|(name, _, since)| (name, since))
            .collect()
    }
}

impl core::fmt::Debug for Refresher {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Refresher")
            .field("dir", &self.dir)
            .field("settings", &self.settings)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::parse_observation;
    use crate::registry::Fitter;
    use exareq_codesign::catalog;
    use exareq_profile::Survey;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exareq_refresh_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn no_fit() -> Box<Fitter> {
        Box::new(|_s: &Survey| Err("no fitting in this test".to_string()))
    }

    fn setup(tag: &str) -> (PathBuf, Arc<ModelRegistry>, Refresher, Metrics, String) {
        let dir = temp_dir(tag);
        let app = catalog::paper_models().remove(0);
        std::fs::write(
            dir.join("model.json"),
            artifact::requirements_to_string(&app),
        )
        .unwrap();
        let registry = Arc::new(ModelRegistry::new(&dir, no_fit()));
        registry.refresh();
        let settings = RefreshSettings {
            policy: StalenessPolicy {
                min_points: 6,
                full_refit_count: 10,
                cv_drift: 5.0,
            },
            fit: FitConfig::coarse(),
        };
        let refresher = Refresher::new(&dir, settings);
        (dir, registry, refresher, Metrics::new(), app.name)
    }

    fn observation(model: &str, p: f64, n: f64, value: f64) -> crate::api::ObservationQuery {
        parse_observation(&format!(
            r#"{{"model":"{model}","metric":"flops","p":{p},"n":{n},"value":{value}}}"#
        ))
        .expect("valid observation")
    }

    #[test]
    fn observations_journal_then_refit_then_swap() {
        let (dir, registry, refresher, metrics, name) = setup("swap");
        let app = registry.get(&name).unwrap();
        let truth = |p: f64, n: f64| app.flops.eval(&[p, n]) * 1.25;

        let mut last = None;
        let mut i = 0;
        for &p in &[2.0, 4.0, 8.0, 16.0] {
            for &n in &[64.0, 128.0, 256.0] {
                i += 1;
                let q = observation(&name, p, n, truth(p, n));
                let out = refresher
                    .observe(&registry, &metrics, &q)
                    .expect("accepted");
                assert_eq!(out.observations, i);
                last = Some(out);
            }
        }
        let last = last.unwrap();
        // With min_points 6 the later observations refit and republish.
        assert_ne!(last.refit, "none", "{last:?}");
        assert!(metrics.observations() == 12);
        assert!(metrics.refits().0 + metrics.refits().1 >= 1);
        // The swap is visible: the served flops model moved toward truth.
        let served = registry.get(&name).unwrap();
        let before = app.flops.eval(&[32.0, 512.0]);
        let after = served.flops.eval(&[32.0, 512.0]);
        let target = truth(32.0, 512.0);
        assert!(
            (after - target).abs() < (before - target).abs(),
            "served {after} vs old {before}, target {target}"
        );
        // The artifact on disk carries the quality block.
        let entry = registry.entry(&name).unwrap();
        let q = entry.quality.expect("quality block");
        assert!(q.metrics.contains_key("flops"));
        assert_eq!(q.metrics["flops"].observations, 12);
        // The journal exists next to the artifact, invisible to the
        // registry scan.
        assert!(journal_path(&dir, "model.json").exists());
        assert!(registry.snapshot().errors.is_empty());
    }

    #[test]
    fn unknown_and_survey_models_are_rejected() {
        let (_dir, registry, refresher, metrics, name) = setup("reject");
        let q = observation("NoSuchModel", 2.0, 64.0, 1.0e9);
        assert!(matches!(
            refresher.observe(&registry, &metrics, &q),
            Err(ObserveError::UnknownModel)
        ));
        // A valid model still works after the rejection.
        let q = observation(&name, 2.0, 64.0, 1.0e9);
        refresher
            .observe(&registry, &metrics, &q)
            .expect("accepted");
        assert_eq!(metrics.observations(), 1);
    }

    #[test]
    fn staleness_counters_survive_restart() {
        let (dir, registry, refresher, metrics, name) = setup("restart");
        for (i, &(p, n)) in [(2.0, 64.0), (2.0, 128.0), (4.0, 64.0)].iter().enumerate() {
            let q = observation(&name, p, n, 1.0e9 + i as f64);
            let out = refresher.observe(&registry, &metrics, &q).unwrap();
            assert_eq!(out.refit, "none");
        }
        assert_eq!(refresher.observed(), vec![(name.clone(), 3, 3)]);
        assert_eq!(refresher.staleness(), vec![(name.clone(), 3)]);

        // A fresh refresher (daemon restart) resumes the journal.
        drop(refresher);
        let again = Refresher::new(&dir, RefreshSettings::default());
        assert_eq!(again.observed(), vec![(name, 3, 3)]);
    }

    #[test]
    fn full_refit_resets_the_staleness_counter() {
        let dir = temp_dir("full");
        let app = catalog::paper_models().remove(0);
        std::fs::write(
            dir.join("model.json"),
            artifact::requirements_to_string(&app),
        )
        .unwrap();
        let registry = Arc::new(ModelRegistry::new(&dir, no_fit()));
        registry.refresh();
        // Count trigger at 9 observations, exactly when the two axis
        // sweeps below complete (the multi-parameter search needs ≥5
        // points per axis slice).
        let refresher = Refresher::new(
            &dir,
            RefreshSettings {
                policy: StalenessPolicy {
                    min_points: 6,
                    full_refit_count: 9,
                    cv_drift: 5.0,
                },
                fit: FitConfig::coarse(),
            },
        );
        let metrics = Metrics::new();
        let name = app.name.clone();
        let truth = |p: f64, n: f64| app.flops.eval(&[p, n]).max(1.0);

        // p sweep at the base n, then the n sweep at the base p.
        let mut configs: Vec<(f64, f64)> = [2.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&p| (p, 64.0))
            .collect();
        configs.extend([128.0, 256.0, 512.0, 1024.0].iter().map(|&n| (2.0, n)));
        let mut last = None;
        for &(p, n) in &configs {
            let out = refresher
                .observe(&registry, &metrics, &observation(&name, p, n, truth(p, n)))
                .expect("accepted");
            last = Some(out);
        }
        let last = last.unwrap();
        assert_eq!(last.refit, "full", "{last:?}");
        assert_eq!(last.since_full_refit, 0);
        assert!(metrics.refits().1 >= 1);
        let (_, total, since) = refresher
            .observed()
            .into_iter()
            .find(|(m, _, _)| *m == name)
            .unwrap();
        assert_eq!((total, since), (9, 0));
        // The re-searched model still predicts the (linear-in-n) truth.
        let served = registry.get(&name).unwrap();
        let got = served.flops.eval(&[8.0, 2048.0]);
        let want = truth(8.0, 2048.0);
        assert!(
            (got - want).abs() / want < 0.05,
            "refit predicts {got}, truth {want}"
        );
    }
}
