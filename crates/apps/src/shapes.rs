//! Shared machinery for behavioural twins.
//!
//! A twin reproduces a study application's *requirement signature* (the
//! per-process growth of each Table II metric in `p` and `n`) while running
//! real code: loop bounds are derived from the target scaling, but every
//! counted FLOP corresponds to arithmetic actually executed on a real array,
//! every counted load/store to a real array access, and every counted
//! communication byte to a message actually delivered by the simulator. The
//! model generator downstream sees only the counters — it is never told the
//! formulas.
//!
//! Coefficients are scaled down from the paper's (10⁵–10¹¹) so a full
//! 25-configuration survey runs in seconds; the reproduction targets the
//! *exponents*, which is what every co-design conclusion in the paper rests
//! on (Table IV explicitly drops coefficients for relative upgrades).

use exareq_profile::counters::Counters;
use exareq_sim::Rank;

/// Bidirectional ring halo exchange: sends `to_next` to rank+1 and
/// `to_prev` to rank−1 (mod p) and receives the matching messages.
///
/// Every rank has exactly two partners for any `p ≥ 2`, so the per-process
/// message *count* is independent of `p` and the communication requirement
/// carries only the shaped message-size dependence — matching the paper's
/// per-process models, which fold topology into the coefficient. (A
/// Cartesian decomposition's varying neighbor count would contaminate the
/// fitted exponents with grid-shape artifacts.)
pub fn ring_exchange(rank: &mut Rank, tag: u64, to_next: &[u8], to_prev: &[u8]) {
    let p = rank.size();
    if p < 2 {
        return;
    }
    let me = rank.rank();
    let next = (me + 1) % p;
    let prev = (me + p - 1) % p;
    rank.send(next, tag, to_next);
    rank.send(prev, tag + 1, to_prev);
    let _ = rank.recv(prev, tag);
    let _ = rank.recv(next, tag + 1);
}

/// `log2(max(x, 1))` as f64 — safe for `n = 1`, `p = 1`.
pub fn log2f(x: u64) -> f64 {
    (x.max(1) as f64).log2()
}

/// `x^e` as f64.
pub fn powf(x: u64, e: f64) -> f64 {
    (x as f64).powf(e)
}

/// Rounds a shaped work amount to a whole count (≥ 0).
pub fn ops(x: f64) -> u64 {
    x.max(0.0).round() as u64
}

/// A real working array that compute/stream loops run over with wraparound
/// indexing, so shaped op counts translate into actually executed work.
#[derive(Debug, Clone)]
pub struct Arena {
    data: Vec<f64>,
    cursor: usize,
}

impl Arena {
    /// Allocates an arena of `len` doubles, initialized deterministically.
    pub fn new(len: usize) -> Self {
        let len = len.max(1);
        Arena {
            data: (0..len).map(|i| 1.0 + (i % 97) as f64 * 1e-6).collect(),
            cursor: 0,
        }
    }

    /// Backing length in doubles.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the arena holds no useful capacity (never — min length 1).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes occupied by the backing buffer.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f64>()) as u64
    }

    /// Executes exactly `flops` floating-point operations (fused
    /// multiply-adds, 2 FLOPs each, plus one trailing add if odd) over the
    /// arena and counts them. Loads/stores are *not* counted here — compute
    /// phases model register-resident kernels; use [`Arena::stream`] for
    /// memory-traffic phases.
    pub fn compute(&mut self, flops: u64, counters: &mut Counters) {
        let len = self.data.len();
        let fmas = flops / 2;
        let mut i = self.cursor;
        for _ in 0..fmas {
            // Keep values bounded: contraction towards 1.
            self.data[i] = self.data[i].mul_add(0.999_999, 1e-6);
            i += 1;
            if i == len {
                i = 0;
            }
        }
        if flops % 2 == 1 {
            self.data[i] += 1e-9;
        }
        self.cursor = i;
        counters.add_flops(flops);
    }

    /// Executes exactly `moves` memory operations — alternating loads and
    /// stores over the arena — and counts them (`⌈moves/2⌉` loads,
    /// `⌊moves/2⌋` stores). No FLOPs are counted: the copy models a data
    /// relabeling / buffer-shuffle phase.
    pub fn stream(&mut self, moves: u64, counters: &mut Counters) {
        let len = self.data.len();
        let pairs = moves / 2;
        let mut i = self.cursor;
        let mut carry = 0.0f64;
        for _ in 0..pairs {
            carry = self.data[i]; // load
            let j = if i + 1 == len { 0 } else { i + 1 };
            self.data[j] = carry; // store
            i = j;
        }
        let (mut loads, stores) = (pairs, pairs);
        if moves % 2 == 1 {
            carry = self.data[i];
            loads += 1;
        }
        // Keep `carry` observable so the loop cannot be optimized away.
        if carry.is_nan() {
            unreachable!("arena values stay finite");
        }
        self.cursor = i;
        counters.add_loads(loads);
        counters.add_stores(stores);
    }

    /// A checksum over the arena (keeps results observable in examples).
    pub fn checksum(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2f_handles_small_values() {
        assert_eq!(log2f(0), 0.0);
        assert_eq!(log2f(1), 0.0);
        assert_eq!(log2f(8), 3.0);
    }

    #[test]
    fn ops_rounds() {
        assert_eq!(ops(2.4), 2);
        assert_eq!(ops(2.6), 3);
        assert_eq!(ops(-1.0), 0);
    }

    #[test]
    fn compute_counts_exactly() {
        let mut a = Arena::new(128);
        let mut c = Counters::default();
        a.compute(1001, &mut c);
        assert_eq!(c.flops, 1001);
        assert_eq!(c.loads_stores(), 0);
    }

    #[test]
    fn stream_counts_exactly() {
        let mut a = Arena::new(16);
        let mut c = Counters::default();
        a.stream(11, &mut c);
        assert_eq!(c.loads, 6);
        assert_eq!(c.stores, 5);
        assert_eq!(c.flops, 0);
    }

    #[test]
    fn arena_values_stay_finite() {
        let mut a = Arena::new(8);
        let mut c = Counters::default();
        a.compute(100_000, &mut c);
        assert!(a.checksum().is_finite());
    }

    #[test]
    fn zero_ops_are_noops() {
        let mut a = Arena::new(4);
        let before = a.checksum();
        let mut c = Counters::default();
        a.compute(0, &mut c);
        a.stream(0, &mut c);
        assert_eq!(a.checksum(), before);
        assert_eq!(c, Counters::default());
    }

    #[test]
    fn tiny_arena_wraps() {
        let mut a = Arena::new(1);
        let mut c = Counters::default();
        a.compute(10, &mut c);
        a.stream(10, &mut c);
        assert_eq!(c.flops, 10);
        assert_eq!(c.loads_stores(), 10);
    }
}
