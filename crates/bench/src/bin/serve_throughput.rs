//! Serve-throughput study: request rate and latency percentiles of the
//! `exareq serve` engine under increasing concurrent client counts,
//! emitted machine-readably as `BENCH_serve.json`.
//!
//! The daemon's whole value proposition is that model evaluation is
//! microseconds while learning is hours — so the engine itself must stay
//! out of the way. This binary starts the server in-process on a loopback
//! ephemeral port, fans out raw-TCP clients, and records req/s with
//! p50/p95/p99 latency per round, plus error and 503 counts.
//!
//! Every 200 body is compared byte-for-byte against the direct
//! [`exareq_serve::api::predict_body`] call — a daemon that drifted from
//! the library would be reported as `"identical": false` and the process
//! exits nonzero. `--tiny` shrinks the rounds for CI smoke use.

use exareq_bench::{num, obj, write_report, LatencySummary};
use exareq_codesign::catalog;
use exareq_core::cancel::{CancelReason, CancelToken};
use exareq_profile::minijson::Json;
use exareq_serve::registry::Fitter;
use exareq_serve::{api, artifact, ModelRegistry, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One raw HTTP/1.1 exchange; returns `(status, body)`.
fn http_post(addr: SocketAddr, target: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to in-process server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let request = format!(
        "POST {target} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    let head = std::str::from_utf8(&raw[..head_end]).expect("response head is ASCII");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code in status line");
    (status, raw[head_end + 4..].to_vec())
}

struct Round {
    clients: usize,
    requests_per_client: usize,
    seconds: f64,
    errors: u64,
    rejected_503: u64,
    identical: bool,
    latency: LatencySummary,
}

/// One load round: `clients` threads, each issuing `per_client` sequential
/// `/predict` calls, every 200 body checked against the library answer.
fn run_round(addr: SocketAddr, clients: usize, per_client: usize, expected: &str) -> Round {
    let expected = expected.as_bytes().to_vec();
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                let (mut errors, mut rejected, mut mismatched) = (0u64, 0u64, false);
                for _ in 0..per_client {
                    let t0 = Instant::now();
                    let (status, body) =
                        http_post(addr, "/predict", r#"{"model":"Kripke","p":1e6,"n":4096}"#);
                    latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                    match status {
                        200 => mismatched |= body != expected,
                        503 => rejected += 1,
                        _ => errors += 1,
                    }
                }
                (latencies, errors, rejected, mismatched)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let (mut errors, mut rejected, mut identical) = (0, 0, true);
    for h in handles {
        let (lat, e, r, mismatched) = h.join().expect("client thread");
        latencies.extend(lat);
        errors += e;
        rejected += r;
        identical &= !mismatched;
    }
    Round {
        clients,
        requests_per_client: per_client,
        seconds: started.elapsed().as_secs_f64(),
        errors,
        rejected_503: rejected,
        identical,
        latency: LatencySummary::from_samples(&latencies),
    }
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let (client_counts, per_client): (Vec<usize>, usize) = if tiny {
        (vec![1, 2], 10)
    } else {
        (vec![1, 2, 4, 8], 50)
    };

    // Model dir: the published Table II catalog as requirements artifacts,
    // so no fitting happens and the engine itself is what gets timed.
    let dir = std::env::temp_dir().join(format!("exareq_serve_throughput_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("model dir");
    for app in catalog::paper_models() {
        std::fs::write(
            dir.join(format!("{}.json", app.name.to_lowercase())),
            artifact::requirements_to_string(&app),
        )
        .expect("write artifact");
    }
    let no_fit: Box<Fitter> = Box::new(|_| Err("bench serves fitted artifacts only".to_string()));
    let registry = Arc::new(ModelRegistry::new(&dir, no_fit));

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".parse().expect("loopback addr"),
        threads: 4,
        queue_depth: 64,
        request_deadline: Duration::from_secs(10),
        drain_deadline: Duration::from_secs(10),
        model_dir: dir.clone(),
        allow_measure: false,
    };
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel();
    let server = {
        let cfg = cfg.clone();
        let registry = Arc::clone(&registry);
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            exareq_serve::serve(&cfg, registry, &cancel, move |addr| {
                tx.send(addr).expect("announce bound address");
            })
            .expect("engine runs")
        })
    };
    let addr = rx.recv().expect("server ready");
    let expected = api::predict_body(&catalog::kripke(), 1e6, 4096.0);
    eprintln!(
        "serve throughput: {addr}, {} workers, rounds {client_counts:?} x {per_client} requests",
        cfg.threads
    );

    // Warm-up outside every timing.
    let _ = run_round(addr, 1, 5, &expected);

    let mut rows = Vec::new();
    let mut all_identical = true;
    for &clients in &client_counts {
        let round = run_round(addr, clients, per_client, &expected);
        let total = (round.clients * round.requests_per_client) as f64;
        let rate = total / round.seconds;
        all_identical &= round.identical;
        eprintln!(
            "  clients={clients}: {rate:.0} req/s, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, \
             {} errors, {} x 503{}",
            round.latency.p50_ms,
            round.latency.p95_ms,
            round.latency.p99_ms,
            round.errors,
            round.rejected_503,
            if round.identical {
                ""
            } else {
                ", NOT IDENTICAL"
            }
        );
        let mut members = vec![
            ("clients", num(clients as f64)),
            ("requests", num(total)),
            ("seconds", num(round.seconds)),
            ("req_per_sec", num(rate)),
            ("errors", num(round.errors as f64)),
            ("rejected_503", num(round.rejected_503 as f64)),
            ("identical", Json::Bool(round.identical)),
        ];
        members.extend(round.latency.to_members());
        rows.push(obj(members));
    }

    cancel.cancel(CancelReason::Interrupt);
    let summary = server.join().expect("server thread");

    let report = obj(vec![
        ("schema", num(1.0)),
        ("model", Json::Str("Kripke".to_string())),
        ("threads", num(cfg.threads as f64)),
        ("queue_depth", num(cfg.queue_depth as f64)),
        ("rounds", Json::Arr(rows)),
        ("total_requests", num(summary.requests as f64)),
        ("total_rejected", num(summary.rejected as f64)),
        ("drained", Json::Bool(summary.drained)),
    ]);
    write_report("BENCH_serve.json", &report.to_line());
    let _ = std::fs::remove_dir_all(&dir);

    if !all_identical {
        eprintln!("error: a daemon answer diverged from the direct library call");
        std::process::exit(1);
    }
    if !summary.drained {
        eprintln!("error: the engine failed to drain at shutdown");
        std::process::exit(1);
    }
}
