//! # exareq-core — empirical requirements-model generation
//!
//! A from-scratch reimplementation of the Extra-P empirical performance
//! modeling method as used by *"Lightweight Requirements Engineering for
//! Exascale Co-design"* (CLUSTER 2018): given small-scale measurements of a
//! requirement metric over a grid of process counts `p` and per-process
//! problem sizes `n`, generate human-readable models in the performance
//! model normal form (PMNF)
//!
//! ```text
//! f(x₁..x_m) = c₀ + Σ_k c_k · Π_l x_l^{i_kl} · log2^{j_kl}(x_l)
//! ```
//!
//! that extrapolate the requirement to machine scales that cannot be
//! measured (the exascale co-design setting).
//!
//! ## Quickstart
//!
//! ```
//! use exareq_core::measurement::Experiment;
//! use exareq_core::multiparam::{fit_multi, MultiParamConfig};
//!
//! // Measure a metric on a 5×5 grid of (p, n) — here a synthetic stand-in.
//! let exp = Experiment::from_fn(
//!     vec!["p", "n"],
//!     &[&[2.0, 4.0, 8.0, 16.0, 32.0], &[64.0, 128.0, 256.0, 512.0, 1024.0]],
//!     |c| 1e5 * c[1] * c[1].log2() * c[0].log2(),
//! );
//! let fitted = fit_multi(&exp, &MultiParamConfig::coarse()).unwrap();
//! // The generator re-discovers the n·log2(n)·log2(p) shape …
//! assert!(fitted.model.has_multiplicative_interaction());
//! // … and extrapolates far beyond the measured range.
//! let at_exascale = fitted.model.eval(&[1e8, 1e6]);
//! assert!(at_exascale > 0.0);
//! ```
//!
//! ## Module map
//!
//! - [`pmnf`] — model representation (Eq. 1/2), evaluation, display.
//! - [`compiled`] — flat-table lowering for batch evaluation hot paths.
//! - [`measurement`] — experiment containers, grids, aggregation.
//! - [`hypothesis`] — the exponent search space of Section III.
//! - [`linalg`] — small dense QR least squares.
//! - [`fit`] — single-parameter generation with cross-validated selection.
//! - [`multiparam`] — the CLUSTER'16 multi-parameter algorithm.
//! - [`collective`] — symbolic `Allreduce(p)`-style communication models.
//! - [`baseline`] — the Carrington et al. simple-regression baseline.
//! - [`quality`] — SMAPE/R², relative errors, the Figure-3 histogram.
//! - [`refresh`] — online refits, staleness policy, adaptive sampling.
//! - [`describe`] — paper-style English growth statements.
//! - [`fsio`] — typed, atomic filesystem I/O for artifacts.
//! - [`cancel`] — cooperative cancellation tokens, deadlines, checkpoints.

#![warn(missing_docs)]

pub mod baseline;
pub mod cancel;
pub mod collective;
pub mod compiled;
pub mod csv;
pub mod describe;
pub mod fit;
pub mod fsio;
pub mod hypothesis;
pub mod linalg;
pub mod measurement;
pub mod multiparam;
pub mod pmnf;
pub mod quality;
pub mod refresh;
pub mod stability;

pub use cancel::{CancelReason, CancelToken, Cancelled, Deadline};
pub use compiled::{
    model_content_hash, CompiledArena, CompiledFactor, CompiledModel, CompiledTerm,
};
pub use fit::{
    fit_single, fit_single_cancellable, fit_single_robust, FitConfig, FitError, FittedModel,
    RobustFit,
};
pub use fsio::{ExareqIoError, IoOp};
pub use measurement::{Aggregation, Experiment, Measurement};
pub use multiparam::{fit_multi, fit_multi_cancellable, fit_multi_robust, MultiParamConfig};
pub use pmnf::{Exponents, Model, Term};
pub use refresh::{
    rank_candidates, IncrementalFit, LooSummary, RankedCandidate, RefitDecision, RefreshError,
    StalenessPolicy,
};
