//! Per-rank communication byte accounting.
//!
//! The paper's communication requirement is "#bytes sent / received" at the
//! application–hardware interface, attributed per collective class so that
//! models can be expressed symbolically (`Allreduce(p)` etc., Table II).

use serde::{Deserialize, Serialize};

/// Operation classes used for byte attribution.
///
/// Mirrors `exareq_core::collective::CollectiveKind`; the two crates are
/// deliberately decoupled (the simulator is a substrate, the modeler a
/// consumer) and an integration test asserts the mapping stays in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Point-to-point messages, including halo exchanges.
    P2p,
    /// Broadcast.
    Bcast,
    /// All-reduce.
    Allreduce,
    /// All-gather.
    Allgather,
    /// All-to-all.
    Alltoall,
}

impl OpClass {
    /// All classes in a fixed order (index with [`OpClass::index`]).
    pub const ALL: [OpClass; 5] = [
        OpClass::P2p,
        OpClass::Bcast,
        OpClass::Allreduce,
        OpClass::Allgather,
        OpClass::Alltoall,
    ];

    /// Stable index of this class inside [`OpClass::ALL`].
    pub fn index(&self) -> usize {
        match self {
            OpClass::P2p => 0,
            OpClass::Bcast => 1,
            OpClass::Allreduce => 2,
            OpClass::Allgather => 3,
            OpClass::Alltoall => 4,
        }
    }
}

/// Sent/received byte counters for one class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassBytes {
    /// Bytes this rank injected into the network for this class.
    pub sent: u64,
    /// Bytes this rank received from the network for this class.
    pub recv: u64,
}

impl ClassBytes {
    /// Sent + received.
    pub fn total(&self) -> u64 {
        self.sent + self.recv
    }
}

/// Communication statistics of one rank.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Byte counters per operation class, indexed by [`OpClass::index`].
    pub by_class: [ClassBytes; 5],
    /// Number of messages sent (all classes).
    pub messages_sent: u64,
    /// Number of messages received (all classes).
    pub messages_recv: u64,
}

impl CommStats {
    /// Counter for one class.
    pub fn class(&self, c: OpClass) -> ClassBytes {
        self.by_class[c.index()]
    }

    /// Total bytes sent across all classes.
    pub fn total_sent(&self) -> u64 {
        self.by_class.iter().map(|c| c.sent).sum()
    }

    /// Total bytes received across all classes.
    pub fn total_recv(&self) -> u64 {
        self.by_class.iter().map(|c| c.recv).sum()
    }

    /// Total bytes sent + received — the Table I "#Bytes sent / received"
    /// metric for this rank.
    pub fn total(&self) -> u64 {
        self.total_sent() + self.total_recv()
    }

    pub(crate) fn record_send(&mut self, class: OpClass, bytes: usize) {
        self.by_class[class.index()].sent += bytes as u64;
        self.messages_sent += 1;
    }

    pub(crate) fn record_recv(&mut self, class: OpClass, bytes: usize) {
        self.by_class[class.index()].recv += bytes as u64;
        self.messages_recv += 1;
    }

    /// Element-wise sum of two stat blocks (aggregation across ranks).
    pub fn merged(&self, other: &CommStats) -> CommStats {
        let mut out = self.clone();
        for (a, b) in out.by_class.iter_mut().zip(&other.by_class) {
            a.sent += b.sent;
            a.recv += b.recv;
        }
        out.messages_sent += other.messages_sent;
        out.messages_recv += other.messages_recv;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn record_and_totals() {
        let mut s = CommStats::default();
        s.record_send(OpClass::P2p, 100);
        s.record_recv(OpClass::P2p, 40);
        s.record_send(OpClass::Allreduce, 8);
        assert_eq!(s.class(OpClass::P2p).sent, 100);
        assert_eq!(s.class(OpClass::P2p).recv, 40);
        assert_eq!(s.total_sent(), 108);
        assert_eq!(s.total_recv(), 40);
        assert_eq!(s.total(), 148);
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.messages_recv, 1);
    }

    #[test]
    fn merge_sums_classes() {
        let mut a = CommStats::default();
        a.record_send(OpClass::Bcast, 10);
        let mut b = CommStats::default();
        b.record_send(OpClass::Bcast, 5);
        b.record_recv(OpClass::Alltoall, 7);
        let m = a.merged(&b);
        assert_eq!(m.class(OpClass::Bcast).sent, 15);
        assert_eq!(m.class(OpClass::Alltoall).recv, 7);
        assert_eq!(m.messages_sent, 2);
    }
}
