//! Kill-and-resume integration tests: a survey interrupted at *any* point
//! and resumed from its journal must produce exactly the survey an
//! uninterrupted run produces — through the library driver and through the
//! `exareq` CLI.

use exareq::apps::{run_survey_resilient, survey_app_resilient, AppGrid, Relearn, RetryPolicy};
use exareq::profile::journal::{SurveyJournal, SurveyManifest};
use exareq::sim::FaultPlan;
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("exareq_resume_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn grid() -> AppGrid {
    AppGrid {
        p_values: vec![2, 4],
        n_values: vec![64, 256],
    }
}

fn manifest(spec: &str) -> SurveyManifest {
    SurveyManifest::new(
        "Relearn",
        grid().p_values.iter().map(|&p| p as u64).collect(),
        grid().n_values.clone(),
        spec,
    )
}

/// Interrupting after every possible number of completed configurations
/// and resuming yields the identical survey — including under retries and
/// probabilistic faults.
#[test]
fn replay_from_any_interruption_point_is_exact() {
    let plan = FaultPlan::with_seed(7).drop(0.01);
    let retry = RetryPolicy::retries(1);
    let full = survey_app_resilient(&Relearn, &grid(), &plan, &retry);

    // A complete journaled sweep, to harvest the journal text.
    let path = tmp("full.jsonl");
    let mut j = SurveyJournal::create(&path, manifest("spec")).unwrap();
    let journaled = run_survey_resilient(&Relearn, &grid(), &plan, &retry, Some(&mut j)).unwrap();
    drop(j);
    assert_eq!(journaled, full, "journaling must not change the survey");

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let entry_count = lines.len() - 1;
    assert_eq!(entry_count, 4, "one journal line per configuration");

    for k in 0..=entry_count {
        // A journal interrupted after k completed configurations...
        let partial = tmp(&format!("partial_{k}.jsonl"));
        let mut contents: String = lines[..=k].join("\n");
        contents.push('\n');
        std::fs::write(&partial, contents).unwrap();

        // ...resumes and finishes to the identical survey.
        let mut j = SurveyJournal::resume(&partial, &manifest("spec")).unwrap();
        assert_eq!(j.entries().len(), k);
        let resumed = run_survey_resilient(&Relearn, &grid(), &plan, &retry, Some(&mut j)).unwrap();
        assert_eq!(resumed, full, "divergence when resuming after {k} configs");
    }
}

/// A crash mid-append (torn, unterminated tail line) loses only the config
/// being written; resumption still converges on the identical survey.
#[test]
fn torn_tail_resume_is_exact() {
    let plan = FaultPlan::with_seed(7).drop(0.01);
    let retry = RetryPolicy::retries(1);
    let full = survey_app_resilient(&Relearn, &grid(), &plan, &retry);

    let path = tmp("torn.jsonl");
    let mut j = SurveyJournal::create(&path, manifest("spec")).unwrap();
    run_survey_resilient(&Relearn, &grid(), &plan, &retry, Some(&mut j)).unwrap();
    drop(j);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // Keep the header + first entry, then half of the second entry.
    let torn = format!(
        "{}\n{}\n{}",
        lines[0],
        lines[1],
        &lines[2][..lines[2].len() / 2]
    );
    std::fs::write(&path, torn).unwrap();

    let mut j = SurveyJournal::resume(&path, &manifest("spec")).unwrap();
    assert!(j.dropped_tail());
    assert_eq!(j.entries().len(), 1);
    let resumed = run_survey_resilient(&Relearn, &grid(), &plan, &retry, Some(&mut j)).unwrap();
    assert_eq!(resumed, full);
}

fn exareq(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_exareq"))
        .args(args)
        .output()
        .expect("spawn exareq");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

/// End-to-end through the CLI: a zero-budget retry sweep aborts like a
/// scheduler-killed job once the deterministic crash starts degrading
/// configs, the journal keeps the completed prefix, and `--resume`
/// finishes the survey.
#[test]
fn cli_kill_and_resume_completes_the_survey() {
    let journal = tmp("cli.jsonl");
    let journal_s = journal.to_str().unwrap();
    let out = tmp("cli_survey.json");
    let out_s = out.to_str().unwrap();
    let base = [
        "survey",
        "relearn",
        "--p",
        "2,4",
        "--n",
        "64,256",
        "--faults",
        "seed=7,crash=3@1",
        "--journal",
        journal_s,
        "-o",
        out_s,
    ];

    // Rank 3 only exists at p=4: both p=2 configs complete cleanly and are
    // journaled; the first p=4 config degrades, wants a retry, and the
    // zero wall-clock budget kills the sweep.
    let mut killed: Vec<&str> = base.to_vec();
    killed.extend(["--max-retries", "2", "--config-budget-ms", "0"]);
    let (ok, _, err) = exareq(&killed);
    assert!(!ok, "zero-budget sweep must abort: {err}");
    assert!(err.contains("exhausted its wall-clock budget"), "{err}");
    assert!(
        err.contains("--resume"),
        "abort must point at resume: {err}"
    );
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(
        journal_text.lines().count(),
        3,
        "header + both completed p=2 configs: {journal_text}"
    );

    // Without --resume the journal must not be clobbered.
    let (ok, _, err) = exareq(&base);
    assert!(!ok);
    assert!(err.contains("already exists"), "{err}");

    // Resumed without a budget: the p=4 configs are measured (staying
    // degraded — the crash is deterministic) and the survey completes.
    let mut resumed: Vec<&str> = base.to_vec();
    resumed.extend(["--max-retries", "2", "--resume"]);
    let (ok, stdout, err) = exareq(&resumed);
    assert!(ok, "stdout: {stdout}\nstderr: {err}");
    assert!(err.contains("2 configuration(s) already complete"), "{err}");
    assert!(
        stdout.contains("survey complete: 4/4 configurations"),
        "{stdout}"
    );
    // The deterministic crash keeps the p=4 configs damaged: they end up
    // flagged (survivor averages) or skipped (all ranks lost), never clean.
    assert!(
        stdout.contains("degraded configurations") || stdout.contains("skipped configurations"),
        "{stdout}"
    );
    assert!(out.exists(), "survey JSON must be written on completion");

    // Resuming against a different plan is rejected loudly.
    let mut wrong: Vec<&str> = base.to_vec();
    wrong[7] = "seed=8,crash=3@1";
    wrong.push("--resume");
    let (ok, _, err) = exareq(&wrong);
    assert!(!ok);
    assert!(err.contains("different survey plan"), "{err}");
}

/// Preemption-identity, end to end through a real signal: SIGTERM a
/// journaled sweep subprocess mid-run, verify the documented interrupted
/// exit code, a valid (non-torn) journal and an `incomplete`-flagged
/// partial artifact, then resume — the finished artifact must be
/// *byte-identical* to one from an uninterrupted run of the same seed.
#[test]
#[cfg(target_os = "linux")]
fn sigterm_mid_sweep_then_resume_is_byte_identical() {
    use exareq::signal::{send_signal, SIGTERM};
    use std::time::{Duration, Instant};

    let journal = tmp("sigterm.jsonl");
    let journal_s = journal.to_str().unwrap();
    let artifact = tmp("sigterm_survey.json");
    let artifact_s = artifact.to_str().unwrap();
    let baseline = tmp("sigterm_baseline.json");
    let baseline_s = baseline.to_str().unwrap();

    // A 25-config sweep (seconds of work): ample time to deliver the
    // signal after the first few configs are journaled.
    let grid_args = [
        "survey",
        "relearn",
        "--p",
        "2,4,8,16,32",
        "--n",
        "64,256,1024,4096,16384",
        "--faults",
        "seed=7,drop=0.002",
    ];

    let mut killed: Vec<&str> = grid_args.to_vec();
    killed.extend(["--journal", journal_s, "-o", artifact_s]);
    let child = Command::new(env!("CARGO_BIN_EXE_exareq"))
        .args(&killed)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn exareq");

    // Deliver SIGTERM once at least two configs are durably journaled.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "journal never grew");
        let lines = std::fs::read_to_string(&journal)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(send_signal(child.id(), SIGTERM), "kill(2) failed");
    let out = child.wait_with_output().expect("wait for exareq");
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();

    // Documented exit code 5, resume hint on stderr.
    assert_eq!(out.status.code(), Some(5), "stderr: {stderr}");
    assert!(stderr.contains("survey cancelled: interrupted"), "{stderr}");
    assert!(stderr.contains("--resume"), "{stderr}");

    // The journal is valid and non-torn: every line is a completed config.
    let m = SurveyManifest::new(
        "Relearn",
        vec![2, 4, 8, 16, 32],
        vec![64, 256, 1024, 4096, 16384],
        "seed=7,drop=0.002",
    );
    let j = SurveyJournal::resume(&journal, &m).unwrap();
    assert!(!j.dropped_tail(), "cancellation must not tear the journal");
    let completed = j.entries().len();
    assert!(
        (2..25).contains(&completed),
        "expected a strict prefix, got {completed} configs"
    );
    drop(j);

    // The partial artifact exists and is flagged incomplete. (A stub
    // JSON serializer emits empty artifacts; content is only asserted
    // when a real serializer produced output.)
    let partial = std::fs::read_to_string(&artifact).unwrap();
    assert!(
        partial.is_empty() || partial.contains("\"incomplete\": true"),
        "{partial}"
    );

    // Resume to completion …
    let mut resumed: Vec<&str> = grid_args.to_vec();
    resumed.extend(["--journal", journal_s, "-o", artifact_s, "--resume"]);
    let (ok, stdout, err) = exareq(&resumed);
    assert!(ok, "stdout: {stdout}\nstderr: {err}");
    assert!(
        stdout.contains("survey complete: 25/25 configurations"),
        "{stdout}"
    );

    // … and compare against an uninterrupted run of the same seed.
    let mut uninterrupted: Vec<&str> = grid_args.to_vec();
    uninterrupted.extend(["-o", baseline_s]);
    let (ok, _, err) = exareq(&uninterrupted);
    assert!(ok, "{err}");
    let resumed_bytes = std::fs::read(&artifact).unwrap();
    let baseline_bytes = std::fs::read(&baseline).unwrap();
    assert!(
        resumed_bytes == baseline_bytes,
        "preemption-identity violated: resumed artifact differs from \
         uninterrupted baseline"
    );
}
