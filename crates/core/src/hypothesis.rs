//! The PMNF hypothesis search space.
//!
//! Section III of the paper fixes the exponent grids: polynomial exponents
//! take values in `[0, 3]` including all fractions `i/8` and `i/3`;
//! logarithmic exponents come from `{0, 0.5, 1, 1.5, 2}`.

use crate::pmnf::Exponents;
use serde::{Deserialize, Serialize};

/// Configuration of the exponent search space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Allowed polynomial exponents (sorted, deduplicated).
    pub poly_exponents: Vec<f64>,
    /// Allowed logarithm exponents (sorted, deduplicated).
    pub log_exponents: Vec<f64>,
    /// Whether negative-growth terms (poly < 0) are permitted. The paper's
    /// requirements are monotone in both parameters, so the default is
    /// `false`.
    pub allow_negative_poly: bool,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace::paper()
    }
}

impl SearchSpace {
    /// The exact search space used in the paper's evaluation (Section III):
    /// polynomial exponents 0..3 in steps of 1/8 and 1/3, log exponents
    /// {0, 0.5, 1, 1.5, 2}.
    pub fn paper() -> Self {
        let mut poly: Vec<f64> = Vec::new();
        for i in 0..=24 {
            poly.push(i as f64 / 8.0);
        }
        for i in 0..=9 {
            poly.push(i as f64 / 3.0);
        }
        poly.sort_by(|a, b| a.partial_cmp(b).unwrap());
        poly.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        SearchSpace {
            poly_exponents: poly,
            log_exponents: vec![0.0, 0.5, 1.0, 1.5, 2.0],
            allow_negative_poly: false,
        }
    }

    /// A reduced space (integer and half-integer polynomial exponents,
    /// log ∈ {0, 1}) for fast unit tests and coarse scans.
    pub fn coarse() -> Self {
        SearchSpace {
            poly_exponents: vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
            log_exponents: vec![0.0, 1.0],
            allow_negative_poly: false,
        }
    }

    /// All candidate single-factor exponent pairs, excluding the constant
    /// pair `(0, 0)` (the constant is always part of every hypothesis).
    pub fn factor_candidates(&self) -> Vec<Exponents> {
        let mut out = Vec::with_capacity(self.poly_exponents.len() * self.log_exponents.len());
        for &i in &self.poly_exponents {
            if i < 0.0 && !self.allow_negative_poly {
                continue;
            }
            for &j in &self.log_exponents {
                if i == 0.0 && j == 0.0 {
                    continue;
                }
                out.push(Exponents::new(i, j));
            }
        }
        out
    }

    /// Snaps an arbitrary exponent pair to the nearest grid point; useful
    /// when importing externally produced models.
    pub fn snap(&self, e: Exponents) -> Exponents {
        let near = |grid: &[f64], v: f64| {
            grid.iter()
                .copied()
                .min_by(|a, b| (a - v).abs().partial_cmp(&(b - v).abs()).unwrap())
                .unwrap_or(v)
        };
        Exponents::new(
            near(&self.poly_exponents, e.poly),
            near(&self.log_exponents, e.log),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_contains_the_published_grid() {
        let s = SearchSpace::paper();
        // Fractions of type i/8 and i/3 in [0, 3].
        for v in [0.0, 0.125, 0.25, 0.375, 1.0 / 3.0, 2.0 / 3.0, 1.5, 3.0] {
            assert!(
                s.poly_exponents.iter().any(|&p| (p - v).abs() < 1e-9),
                "missing poly exponent {v}"
            );
        }
        assert_eq!(s.log_exponents, vec![0.0, 0.5, 1.0, 1.5, 2.0]);
        // 25 eighths + 10 thirds − duplicates {0, 1, 2, 3} and 1.5? (12/8=1.5,
        // thirds don't contain 1.5) → duplicates are 0,1,2,3 → 31 values.
        assert_eq!(s.poly_exponents.len(), 31);
    }

    #[test]
    fn candidates_exclude_constant_pair() {
        let s = SearchSpace::coarse();
        let c = s.factor_candidates();
        assert!(!c.iter().any(|e| e.poly == 0.0 && e.log == 0.0));
        // 7 poly × 2 log − 1 = 13
        assert_eq!(c.len(), 13);
    }

    #[test]
    fn paper_candidate_count() {
        let s = SearchSpace::paper();
        assert_eq!(s.factor_candidates().len(), 31 * 5 - 1);
    }

    #[test]
    fn snap_to_grid() {
        let s = SearchSpace::paper();
        let snapped = s.snap(Exponents::new(0.3, 0.9));
        assert!((snapped.poly - 0.3333333).abs() < 1e-3 || (snapped.poly - 0.25).abs() < 1e-9);
        assert_eq!(snapped.log, 1.0);
        // 0.3 is closer to 1/3 (0.0333) than to 0.25 (0.05).
        assert!((snapped.poly - 1.0 / 3.0).abs() < 1e-9);
    }
}
