//! Determinism suite for the parallel survey engine: a `--jobs N` sweep
//! must be indistinguishable — survey artifact, journal bytes, resume
//! behaviour, preemption semantics — from a `--jobs 1` sweep.

use exareq::apps::{
    run_survey_cancellable, run_survey_parallel, survey_app_resilient, AppGrid, Relearn,
    RetryPolicy, SurveyRunError,
};
use exareq::core::cancel::{CancelReason, CancelToken};
use exareq::profile::journal::{SurveyJournal, SurveyManifest};
use exareq::sim::FaultPlan;
use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("exareq_parallel_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn grid() -> AppGrid {
    AppGrid {
        p_values: vec![2, 4],
        n_values: vec![64, 256],
    }
}

fn manifest(spec: &str) -> SurveyManifest {
    SurveyManifest::new(
        "Relearn",
        grid().p_values.iter().map(|&p| p as u64).collect(),
        grid().n_values.clone(),
        spec,
    )
}

/// The journal a parallel sweep writes is byte-for-byte the journal a
/// sequential sweep writes — same entries, same order, same lines.
#[test]
fn journal_bytes_identical_across_job_counts() {
    let plan = FaultPlan::with_seed(7).drop(0.01);
    let retry = RetryPolicy::retries(1);

    let seq_path = tmp("seq.jsonl");
    let mut j = SurveyJournal::create(&seq_path, manifest("spec")).unwrap();
    let sequential = run_survey_cancellable(
        &Relearn,
        &grid(),
        &plan,
        &retry,
        Some(&mut j),
        &CancelToken::new(),
    )
    .unwrap();
    drop(j);
    let seq_bytes = std::fs::read(&seq_path).unwrap();

    for jobs in [2, 4, 8] {
        let par_path = tmp(&format!("par_{jobs}.jsonl"));
        let mut j = SurveyJournal::create(&par_path, manifest("spec")).unwrap();
        let parallel = run_survey_parallel(
            &Relearn,
            &grid(),
            &plan,
            &retry,
            Some(&mut j),
            &CancelToken::new(),
            jobs,
        )
        .unwrap();
        drop(j);
        assert_eq!(parallel, sequential, "survey divergence at jobs={jobs}");
        let par_bytes = std::fs::read(&par_path).unwrap();
        assert!(
            par_bytes == seq_bytes,
            "journal bytes diverge at jobs={jobs}"
        );
    }
}

/// Deterministic preemption under parallelism: a probe budget of k commits
/// exactly the same k-entry journal prefix a sequential run commits, and
/// resuming under `--jobs 4` finishes to the sequential survey and the
/// sequential journal bytes.
#[test]
fn budget_kill_and_resume_under_jobs4_matches_sequential() {
    let plan = FaultPlan::with_seed(7).drop(0.01);
    let retry = RetryPolicy::retries(1);
    let full = survey_app_resilient(&Relearn, &grid(), &plan, &retry);

    // Sequential baseline: full journal bytes and the k=2 prefix bytes.
    let seq_path = tmp("seq_budget.jsonl");
    let mut j = SurveyJournal::create(&seq_path, manifest("spec")).unwrap();
    run_survey_cancellable(
        &Relearn,
        &grid(),
        &plan,
        &retry,
        Some(&mut j),
        &CancelToken::new(),
    )
    .unwrap();
    drop(j);
    let seq_bytes = std::fs::read(&seq_path).unwrap();
    let seq_text = String::from_utf8(seq_bytes.clone()).unwrap();
    let seq_prefix: String = seq_text
        .lines()
        .take(3) // header + 2 entries
        .map(|l| format!("{l}\n"))
        .collect();

    // Parallel run preempted after exactly 2 committed configs.
    let par_path = tmp("par_budget.jsonl");
    let mut j = SurveyJournal::create(&par_path, manifest("spec")).unwrap();
    let token = CancelToken::with_budget(2);
    let err =
        run_survey_parallel(&Relearn, &grid(), &plan, &retry, Some(&mut j), &token, 4).unwrap_err();
    drop(j);
    assert!(matches!(
        err,
        SurveyRunError::Cancelled {
            reason: CancelReason::Budget
        }
    ));
    let preempted = std::fs::read_to_string(&par_path).unwrap();
    assert!(
        preempted == seq_prefix,
        "preempted parallel journal is not the sequential 2-entry prefix:\
         \n--- parallel ---\n{preempted}\n--- sequential prefix ---\n{seq_prefix}"
    );

    // Resume under jobs=4: survey equals the uninterrupted one and the
    // finished journal equals the sequential bytes.
    let mut j = SurveyJournal::resume(&par_path, &manifest("spec")).unwrap();
    assert_eq!(j.entries().len(), 2);
    let resumed = run_survey_parallel(
        &Relearn,
        &grid(),
        &plan,
        &retry,
        Some(&mut j),
        &CancelToken::new(),
        4,
    )
    .unwrap();
    drop(j);
    assert_eq!(resumed, full);
    let resumed_bytes = std::fs::read(&par_path).unwrap();
    assert!(
        resumed_bytes == seq_bytes,
        "resumed parallel journal diverges from sequential bytes"
    );
}

fn exareq(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_exareq"))
        .args(args)
        .output()
        .expect("spawn exareq");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

/// End to end through the CLI: `--jobs 4` writes the same survey artifact
/// and the same journal bytes as `--jobs 1`.
#[test]
fn cli_jobs_artifacts_byte_identical_to_sequential() {
    let j1 = tmp("cli_j1.jsonl");
    let j4 = tmp("cli_j4.jsonl");
    let a1 = tmp("cli_a1.json");
    let a4 = tmp("cli_a4.json");
    let base = [
        "survey",
        "relearn",
        "--p",
        "2,4",
        "--n",
        "64,256",
        "--faults",
        "seed=7,drop=0.01",
        "--max-retries",
        "1",
    ];
    for (jobs, jp, ap) in [("1", &j1, &a1), ("4", &j4, &a4)] {
        let mut args: Vec<&str> = base.to_vec();
        let jp = jp.to_str().unwrap();
        let ap = ap.to_str().unwrap();
        args.extend(["--jobs", jobs, "--journal", jp, "-o", ap]);
        let (code, stdout, stderr) = exareq(&args);
        assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {stderr}");
        assert!(
            stdout.contains("survey complete: 4/4 configurations"),
            "{stdout}"
        );
    }
    assert!(
        std::fs::read(&a4).unwrap() == std::fs::read(&a1).unwrap(),
        "survey artifact differs between --jobs 4 and --jobs 1"
    );
    assert!(
        std::fs::read(&j4).unwrap() == std::fs::read(&j1).unwrap(),
        "journal differs between --jobs 4 and --jobs 1"
    );
}

/// `--deadline-ms 0` under `--jobs 4` parks the sweep at the very first
/// commit checkpoint: exit 5, header-only journal, resume hint.
#[test]
fn cli_deadline_zero_under_jobs4_parks_cleanly() {
    let journal = tmp("deadline_j4.jsonl");
    let journal_s = journal.to_str().unwrap();
    let artifact = tmp("deadline_j4.json");
    let (code, _, stderr) = exareq(&[
        "survey",
        "relearn",
        "--p",
        "2,4",
        "--n",
        "64,256",
        "--jobs",
        "4",
        "--journal",
        journal_s,
        "--deadline-ms",
        "0",
        "-o",
        artifact.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(5), "{stderr}");
    assert!(stderr.contains("survey cancelled: deadline"), "{stderr}");
    assert!(
        stderr.contains("--jobs 4"),
        "resume hint keeps the flag: {stderr}"
    );
    let text = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(
        text.lines().count(),
        1,
        "deadline 0 must journal nothing past the header: {text}"
    );
}

/// Preemption-identity under parallelism, through a real signal: SIGTERM a
/// `--jobs 4` sweep mid-run; it must exit 5, leave a canonical-order
/// whole-config journal prefix, and the printed `--resume` path must
/// finish to an artifact byte-identical to an uninterrupted sequential
/// baseline.
#[test]
#[cfg(target_os = "linux")]
fn sigterm_under_jobs4_then_resume_is_byte_identical() {
    use exareq::signal::{send_signal, SIGTERM};
    use std::time::{Duration, Instant};

    let journal = tmp("sigterm_j4.jsonl");
    let journal_s = journal.to_str().unwrap();
    let artifact = tmp("sigterm_j4.json");
    let artifact_s = artifact.to_str().unwrap();
    let baseline = tmp("sigterm_j4_baseline.json");
    let baseline_s = baseline.to_str().unwrap();

    // A 25-config sweep (seconds of work): ample time to deliver the
    // signal while several configs are still in flight.
    let p_values = [2usize, 4, 8, 16, 32];
    let n_values = [64u64, 256, 1024, 4096, 16384];
    let grid_args = [
        "survey",
        "relearn",
        "--p",
        "2,4,8,16,32",
        "--n",
        "64,256,1024,4096,16384",
        "--faults",
        "seed=7,drop=0.002",
    ];

    let mut killed: Vec<&str> = grid_args.to_vec();
    killed.extend(["--jobs", "4", "--journal", journal_s, "-o", artifact_s]);
    let child = Command::new(env!("CARGO_BIN_EXE_exareq"))
        .args(&killed)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn exareq");

    // Deliver SIGTERM once at least two configs are durably journaled.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "journal never grew");
        let lines = std::fs::read_to_string(&journal)
            .map(|t| t.lines().count())
            .unwrap_or(0);
        if lines >= 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(send_signal(child.id(), SIGTERM), "kill(2) failed");
    let out = child.wait_with_output().expect("wait for exareq");
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();

    assert_eq!(out.status.code(), Some(5), "stderr: {stderr}");
    assert!(stderr.contains("survey cancelled: interrupted"), "{stderr}");
    assert!(stderr.contains("--resume"), "{stderr}");
    assert!(
        stderr.contains("--jobs 4"),
        "resume hint keeps --jobs: {stderr}"
    );

    // The journal is a valid, non-torn, *canonical-order* prefix of whole
    // configs — exactly what a sequential preemption leaves.
    let m = SurveyManifest::new(
        "Relearn",
        p_values.iter().map(|&p| p as u64).collect(),
        n_values.to_vec(),
        "seed=7,drop=0.002",
    );
    let j = SurveyJournal::resume(&journal, &m).unwrap();
    assert!(!j.dropped_tail(), "cancellation must not tear the journal");
    let completed = j.entries().len();
    assert!(
        (2..25).contains(&completed),
        "expected a strict prefix, got {completed} configs"
    );
    let canonical: Vec<(u64, u64)> = p_values
        .iter()
        .flat_map(|&p| n_values.iter().map(move |&n| (p as u64, n)))
        .collect();
    let journaled: Vec<(u64, u64)> = j.entries().iter().map(|e| (e.p, e.n)).collect();
    assert_eq!(
        journaled,
        canonical[..completed].to_vec(),
        "journal must be a canonical-order prefix"
    );
    drop(j);

    // Resume (still at --jobs 4) to completion …
    let mut resumed: Vec<&str> = grid_args.to_vec();
    resumed.extend([
        "--jobs",
        "4",
        "--journal",
        journal_s,
        "-o",
        artifact_s,
        "--resume",
    ]);
    let (code, stdout, err) = exareq(&resumed);
    assert_eq!(code, Some(0), "stdout: {stdout}\nstderr: {err}");
    assert!(
        stdout.contains("survey complete: 25/25 configurations"),
        "{stdout}"
    );

    // … and compare against an uninterrupted *sequential* run of the same
    // seed: the strongest form of the identity.
    let mut uninterrupted: Vec<&str> = grid_args.to_vec();
    uninterrupted.extend(["--jobs", "1", "-o", baseline_s]);
    let (code, _, err) = exareq(&uninterrupted);
    assert_eq!(code, Some(0), "{err}");
    let resumed_bytes = std::fs::read(&artifact).unwrap();
    let baseline_bytes = std::fs::read(&baseline).unwrap();
    assert!(
        resumed_bytes == baseline_bytes,
        "preemption-identity violated: resumed --jobs 4 artifact differs \
         from uninterrupted sequential baseline"
    );
}
