//! Regenerates **Table VII** (and prints the Table VI inputs): maximum
//! overall problem size and minimum benchmark wall time for each study
//! application on the three exascale straw-man systems.
//!
//! Run with `cargo run --release -p exareq-bench --bin table7`.

use exareq_bench::write_report;
use exareq_codesign::report::render_strawman_block;
use exareq_codesign::{analyze_strawmen, catalog, table_six};

/// Paper's Table VII values: (app, [max problem per system], [wall time s]).
const PAPER: [(&str, [f64; 3], [f64; 3]); 4] = [
    ("Kripke", [1e10, 1e10, 1e10], [0.1, 0.1, 0.1]),
    ("LULESH", [3.9e10, 1.7e10, 1.9e10], [40.0, 21.5, 33.0]),
    ("MILC", [1e10, 1e10, 1e10], [100.0, 100.0, 100.0]),
    ("Relearn", [5e10, 4e12, 1e12], [4.0, 0.02, 0.2]),
];

fn main() {
    let systems = table_six();
    let mut out = String::new();
    out.push_str("== Table VI: straw-man systems ==\n");
    for s in &systems {
        out.push_str(&format!(
            "  {:<20} nodes {:.0e}  processors {:.0e}  per-node {:.0e}  mem/proc {:.0e} B  {:.0e} flop/s\n",
            s.name,
            s.nodes,
            s.processors,
            s.processors_per_node(),
            s.mem_per_processor,
            s.flops_per_processor
        ));
    }
    out.push_str("\n== Table VII reproduction ==\n");
    for app in catalog::paper_models() {
        out.push_str(&render_strawman_block(&analyze_strawmen(&app, &systems)));
        if let Some((_, probs, times)) = PAPER.iter().find(|(n, _, _)| *n == app.name) {
            out.push_str(&format!(
                "  paper: max problem {:.1e} / {:.1e} / {:.1e}   wall time {} / {} / {} s\n",
                probs[0], probs[1], probs[2], times[0], times[1], times[2]
            ));
        } else {
            out.push_str("  paper: absent from Table VII (cannot fully utilize the systems)\n");
        }
        out.push('\n');
    }
    out.push_str(
        "Qualitative checks: Kripke/MILC indifferent to the design; Relearn\n\
         strongly prefers the vector system; LULESH solves its largest problem\n\
         on the massively parallel system; icoFoam excluded everywhere.\n",
    );
    print!("{out}");
    write_report("table7.txt", &out);
}
