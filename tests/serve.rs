//! End-to-end lifecycle tests of `exareq serve`: a real daemon subprocess
//! on an ephemeral loopback port, spoken to over raw TCP.
//!
//! The central assertion is the crate's correctness contract: every daemon
//! answer is **byte-identical** to the equivalent direct library call. The
//! rest is the operational envelope — 503 backpressure under a saturated
//! queue, 504 past `--request-deadline-ms`, protocol errors for malformed
//! bytes, and a SIGTERM that drains in-flight requests and exits 0.

#![cfg(unix)]

use exareq::codesign::catalog;
use exareq::serve::{api, artifact};
use exareq::signal::{send_signal, SIGTERM};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A daemon subprocess bound to an ephemeral port, killed on drop so a
/// failing test never leaks a listener.
struct Daemon {
    child: Child,
    addr: String,
    /// Keeps the stdout pipe open: closing it would make the daemon's own
    /// shutdown summary line fail to write.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Writes the published Table II catalog into a fresh model dir as
/// requirements artifacts (no fitting needed — offline and fast).
fn model_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("exareq_serve_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("model dir");
    for app in catalog::paper_models() {
        std::fs::write(
            dir.join(format!("{}.json", app.name.to_lowercase())),
            artifact::requirements_to_string(&app),
        )
        .expect("write artifact");
    }
    dir
}

/// Spawns `exareq serve` on port 0 and waits for the flushed ready line
/// (`serving on HOST:PORT ...`) to learn the bound address.
fn spawn_daemon(dir: &std::path::Path, extra: &[&str]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_exareq"))
        .arg("serve")
        .arg("--model-dir")
        .arg(dir)
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn exareq serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut ready = String::new();
    reader.read_line(&mut ready).expect("readable stdout");
    let addr = ready
        .strip_prefix("serving on ")
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected ready line: {ready}"))
        .to_string();
    Daemon {
        child,
        addr,
        _stdout: reader,
    }
}

/// One raw HTTP exchange; returns (status, headers, body).
fn http(addr: &str, raw: &[u8]) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(raw).expect("write request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no head terminator in {response:?}"));
    let head = String::from_utf8(response[..head_end].to_vec()).expect("ASCII head");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head}"));
    (status, head, response[head_end + 4..].to_vec())
}

fn get(addr: &str, target: &str) -> (u16, String, Vec<u8>) {
    // `Connection: close` keeps the one-shot helpers one-shot now that
    // the daemon defaults HTTP/1.1 connections to keep-alive.
    http(
        addr,
        format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

fn post(addr: &str, target: &str, body: &str) -> (u16, String, Vec<u8>) {
    http(
        addr,
        format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// Reads exactly one response off a keep-alive socket, leaving any
/// pipelined follow-up bytes in `leftover` for the next call.
fn read_one_response(stream: &mut TcpStream, leftover: &mut Vec<u8>) -> (u16, String, Vec<u8>) {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = leftover.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "EOF before a complete response head");
        leftover.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(leftover[..head_end].to_vec()).expect("ASCII head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status in {head}"));
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no Content-Length in {head}"));
    let body_start = head_end + 4;
    while leftover.len() < body_start + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "EOF mid response body");
        leftover.extend_from_slice(&chunk[..n]);
    }
    let body = leftover[body_start..body_start + content_length].to_vec();
    leftover.drain(..body_start + content_length);
    (status, head, body)
}

fn keep_alive_post(target: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[test]
fn daemon_answers_are_byte_identical_to_the_library() {
    let dir = model_dir("identity");
    let daemon = spawn_daemon(&dir, &[]);

    let (status, _, body) = get(&daemon.addr, "/healthz");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("UTF-8 health body");
    // Backward compatible: plain 200 whose body still leads with the
    // legacy status field, so `grep '"status":"ok"'` keeps working ...
    assert!(text.starts_with(r#"{"status":"ok""#), "{text}");
    // ... and now reports live engine state as JSON.
    let health = exareq::profile::minijson::parse(&text).expect("valid JSON");
    use exareq::profile::minijson::Json;
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("queue_depth").and_then(Json::as_f64), Some(0.0));
    assert_eq!(
        health.get("in_flight").and_then(Json::as_f64),
        Some(1.0),
        "the /healthz request itself is the one in flight"
    );
    assert!(
        health
            .get("registry_generation")
            .and_then(Json::as_f64)
            .is_some(),
        "{text}"
    );

    let (status, _, body) = post(
        &daemon.addr,
        "/predict",
        r#"{"model":"Kripke","p":1e6,"n":4096}"#,
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        body,
        api::predict_body(&catalog::kripke(), 1e6, 4096.0).as_bytes(),
        "daemon /predict must equal the direct library call"
    );

    let (status, _, body) = post(&daemon.addr, "/upgrade", r#"{"model":"MILC"}"#);
    assert_eq!(status, 200);
    assert_eq!(
        body,
        api::upgrade_body(&catalog::milc(), None)
            .unwrap()
            .as_bytes()
    );

    let (status, _, body) = post(&daemon.addr, "/strawman", r#"{"model":"icoFoam"}"#);
    assert_eq!(status, 200);
    assert_eq!(body, api::strawman_body(&catalog::icofoam()).as_bytes());

    let (status, _, body) = get(&daemon.addr, "/models");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    for app in catalog::paper_models() {
        assert!(
            text.contains(&format!("\"name\":\"{}\"", app.name)),
            "{text}"
        );
    }

    let (status, _, body) = get(&daemon.addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("exareq_requests_total"), "{text}");
    assert!(text.contains("exareq_models_loaded 5"), "{text}");
}

#[test]
fn keep_alive_serves_many_byte_identical_requests_on_one_socket() {
    let dir = model_dir("keepalive");
    let daemon = spawn_daemon(&dir, &[]);

    let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut leftover = Vec::new();
    for i in 0..5 {
        let p = 2.0 + f64::from(i);
        let body = format!(r#"{{"model":"Kripke","p":{p},"n":64}}"#);
        stream
            .write_all(&keep_alive_post("/predict", &body))
            .expect("write request");
        let (status, head, body) = read_one_response(&mut stream, &mut leftover);
        assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
        assert!(
            head.contains("Connection: keep-alive"),
            "an HTTP/1.1 200 defaults to keep-alive: {head}"
        );
        assert_eq!(
            body,
            api::predict_body(&catalog::kripke(), p, 64.0).as_bytes(),
            "request {i} on the shared socket must equal the library call"
        );
    }

    // An explicit `Connection: close` is honoured, and the socket ends.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("write request");
    let (status, head, _) = read_one_response(&mut stream, &mut leftover);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("EOF after close");
    assert!(rest.is_empty(), "no bytes may follow a closing response");
}

#[test]
fn predict_batch_equals_the_concatenated_single_predicts() {
    let dir = model_dir("batch");
    let daemon = spawn_daemon(&dir, &[]);

    let points = [(2.0, 64.0), (32.0, 1024.0), (1e6, 4096.0)];
    let (status, _, body) = post(
        &daemon.addr,
        "/predict_batch",
        r#"{"model":"MILC","points":[[2,64],[32,1024],[1e6,4096]]}"#,
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let expected: String = points
        .iter()
        .map(|&(p, n)| format!("{}\n", api::predict_body(&catalog::milc(), p, n)))
        .collect();
    assert_eq!(
        body,
        expected.as_bytes(),
        "batch output must be the byte-exact concatenation of single predicts"
    );

    // Each JSONL line is also byte-identical to the daemon's own single
    // answer for that point.
    let (_, _, single) = post(
        &daemon.addr,
        "/predict",
        r#"{"model":"MILC","p":32,"n":1024}"#,
    );
    let second_line = body.split(|&b| b == b'\n').nth(1).expect("line 2");
    assert_eq!(second_line, &single[..]);
}

#[test]
fn keep_alive_connection_caps_and_idle_deadline_are_enforced() {
    let dir = model_dir("kalimits");
    let daemon = spawn_daemon(
        &dir,
        &["--keep-alive-requests", "2", "--idle-deadline-ms", "300"],
    );

    // Request cap: the second response on the socket forces close.
    let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut leftover = Vec::new();
    let request = keep_alive_post("/predict", r#"{"model":"Kripke","p":2,"n":64}"#);
    stream.write_all(&request).expect("first");
    let (_, head, _) = read_one_response(&mut stream, &mut leftover);
    assert!(head.contains("Connection: keep-alive"), "{head}");
    stream.write_all(&request).expect("second");
    let (_, head, _) = read_one_response(&mut stream, &mut leftover);
    assert!(
        head.contains("Connection: close"),
        "request cap must force close: {head}"
    );
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("EOF after cap");
    assert!(rest.is_empty());

    // Idle deadline: a quiet keep-alive socket is reaped server-side.
    let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut leftover = Vec::new();
    stream.write_all(&request).expect("warm request");
    let (status, _, _) = read_one_response(&mut stream, &mut leftover);
    assert_eq!(status, 200);
    let reaped_at = Instant::now();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("EOF when idle-reaped");
    assert!(rest.is_empty(), "idle reap is a silent close");
    assert!(
        reaped_at.elapsed() < Duration::from_secs(5),
        "idle connection must be reaped near the 300ms idle deadline"
    );
}

#[test]
fn sigterm_drains_pipelined_requests_already_buffered() {
    let dir = model_dir("pipedrain");
    let mut daemon = spawn_daemon(&dir, &[]);

    // One socket, two requests in one write: a held predict (worker) and
    // a piggybacked healthz that sits buffered behind it. SIGTERM lands
    // while the hold runs; the drain must still answer BOTH buffered
    // requests before closing.
    let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut pipelined = keep_alive_post(
        "/predict",
        r#"{"model":"MILC","p":8,"n":512,"hold_ms":700}"#,
    );
    pipelined.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    stream.write_all(&pipelined).expect("write pipelined pair");
    std::thread::sleep(Duration::from_millis(200));
    assert!(send_signal(daemon.child.id(), SIGTERM), "deliver SIGTERM");

    let mut leftover = Vec::new();
    let (status, _, body) = read_one_response(&mut stream, &mut leftover);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        body,
        api::predict_body(&catalog::milc(), 8.0, 512.0).as_bytes(),
        "the in-flight held request survives the SIGTERM byte-exact"
    );
    let (status, head, _) = read_one_response(&mut stream, &mut leftover);
    assert_eq!(status, 200, "the buffered pipelined request is drained too");
    assert!(
        head.contains("Connection: close"),
        "drain forces close on the final response: {head}"
    );
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("EOF after drain");
    assert!(rest.is_empty());

    let started = Instant::now();
    let status = loop {
        if let Some(status) = daemon.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "daemon failed to exit after the pipelined drain"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0), "a drained shutdown exits 0");
}

#[test]
fn measure_endpoint_is_gated_and_byte_identical_to_the_library() {
    use exareq::apps::{measure_config_resilient, Relearn, RetryPolicy};
    use exareq::core::cancel::CancelToken;
    use exareq::sim::FaultPlan;

    let dir = model_dir("measure");
    // Without the worker opt-in the endpoint is refused outright.
    {
        let daemon = spawn_daemon(&dir, &[]);
        let (status, _, body) = post(
            &daemon.addr,
            "/measure",
            r#"{"app":"Relearn","shard_id":0,"configs":[[2,64]]}"#,
        );
        assert_eq!(status, 403, "{}", String::from_utf8_lossy(&body));
        assert!(String::from_utf8_lossy(&body).contains("--allow-measure"));
    }

    let daemon = spawn_daemon(&dir, &["--allow-measure"]);
    let (status, _, body) = post(
        &daemon.addr,
        "/measure",
        r#"{"app":"Relearn","shard_id":3,"faults":"seed=7,drop=0.01","max_attempts":2,"configs":[[2,64],[2,256]]}"#,
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let plan = FaultPlan::parse("seed=7,drop=0.01").expect("fault spec");
    let retry = RetryPolicy::retries(1);
    let token = CancelToken::new();
    let entries: Vec<_> = [(2u64, 64u64), (2, 256)]
        .iter()
        .map(|&(p, n)| {
            measure_config_resilient(&Relearn, p as usize, n, &plan, &retry, &token)
                .expect("local measurement")
        })
        .collect();
    assert_eq!(
        body,
        api::measure_response_body(3, "Relearn", &entries).as_bytes(),
        "a worker-measured shard must equal the in-process measurement byte for byte"
    );

    let (status, _, metrics) = get(&daemon.addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(metrics).unwrap();
    assert!(text.contains("serve_measure_shards_total 1"), "{text}");
}

#[test]
fn protocol_and_routing_errors_answer_4xx() {
    let dir = model_dir("errors");
    let daemon = spawn_daemon(&dir, &[]);

    let (status, _, _) = http(&daemon.addr, b"NONSENSE\r\n\r\n");
    assert_eq!(status, 400);

    let (status, _, _) = get(&daemon.addr, "/no-such-endpoint");
    assert_eq!(status, 404);

    let (status, _, body) = post(
        &daemon.addr,
        "/predict",
        r#"{"model":"NoSuchApp","p":2,"n":3}"#,
    );
    assert_eq!(status, 404);
    assert!(String::from_utf8_lossy(&body).contains("unknown model"));

    let (status, _, _) = post(&daemon.addr, "/predict", "{ not json");
    assert_eq!(status, 400);

    // A huge declared body is refused from the head alone.
    let raw = format!(
        "POST /predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        64 * 1024 * 1024
    );
    let (status, _, _) = http(&daemon.addr, raw.as_bytes());
    assert_eq!(status, 413);
}

#[test]
fn saturated_queue_answers_503_with_retry_after() {
    let dir = model_dir("saturate");
    // One worker, queue depth 1, generous request deadline: a burst of
    // held requests saturates the worker and the queue slot, so most of
    // the burst must be shed by the acceptor with 503 — and none may
    // hang, error, or lose its response.
    let daemon = spawn_daemon(
        &dir,
        &[
            "--threads",
            "1",
            "--queue-depth",
            "1",
            "--request-deadline-ms",
            "30000",
        ],
    );
    let addr = daemon.addr.clone();

    let hold = r#"{"model":"Kripke","p":2,"n":3,"hold_ms":1200}"#;
    let burst: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || post(&addr, "/predict", hold))
        })
        .collect();
    let (mut ok, mut shed) = (0, 0);
    for client in burst {
        let (status, head, body) = client.join().expect("client thread");
        match status {
            200 => {
                assert_eq!(
                    body,
                    api::predict_body(&catalog::kripke(), 2.0, 3.0).as_bytes(),
                    "accepted requests still get the exact library answer"
                );
                ok += 1;
            }
            503 => {
                assert!(head.contains("Retry-After: 1"), "{head}");
                shed += 1;
            }
            other => panic!("unexpected status {other} under saturation"),
        }
    }
    assert!(ok >= 1, "the admitted requests must complete ({ok} did)");
    assert!(
        shed >= 1,
        "a saturated daemon must shed load with 503 ({ok} x 200, {shed} x 503)"
    );
}

#[test]
fn request_past_deadline_answers_504() {
    let dir = model_dir("deadline");
    let daemon = spawn_daemon(&dir, &["--request-deadline-ms", "100"]);
    let (status, _, body) = post(
        &daemon.addr,
        "/predict",
        r#"{"model":"Kripke","p":2,"n":3,"hold_ms":2000}"#,
    );
    assert_eq!(status, 504, "{}", String::from_utf8_lossy(&body));
    assert!(String::from_utf8_lossy(&body).contains("deadline"));

    // Within the deadline the same request is a normal 200.
    let (status, _, _) = post(
        &daemon.addr,
        "/predict",
        r#"{"model":"Kripke","p":2,"n":3}"#,
    );
    assert_eq!(status, 200);
}

#[test]
fn slow_loris_header_drip_is_cut_off_at_the_request_deadline() {
    let dir = model_dir("slowloris");
    let daemon = spawn_daemon(&dir, &["--request-deadline-ms", "600"]);

    // Drip a valid request head one byte at a time, far slower than the
    // deadline allows. Before the header-read deadline existed, each
    // dripped byte renewed the worker's per-read() timeout, so one lazy
    // peer could pin a worker indefinitely.
    let raw = b"GET /healthz HTTP/1.1\r\nHost: drip\r\n\r\n";
    let mut stream = TcpStream::connect(&daemon.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let started = Instant::now();
    let mut response = Vec::new();
    for byte in raw {
        if stream.write_all(std::slice::from_ref(byte)).is_err() {
            break; // daemon already gave up on us — exactly the point
        }
        std::thread::sleep(Duration::from_millis(50));
        if started.elapsed() > Duration::from_secs(5) {
            panic!("drip still being accepted 5s past a 600ms deadline");
        }
    }
    let _ = stream.read_to_end(&mut response);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "daemon must cut a dripping request near its deadline, took {elapsed:?}"
    );
    // The connection either got a 408 or was dropped; it must NOT have
    // been answered 200 (the full request never arrived in time).
    if !response.is_empty() {
        let head = String::from_utf8_lossy(&response);
        assert!(
            head.starts_with("HTTP/1.1 408"),
            "a cut-off drip answers 408, got: {head}"
        );
    }

    // The worker the drip tried to pin is free: a normal request on a
    // fresh connection answers promptly.
    let (status, _, _) = get(&daemon.addr, "/healthz");
    assert_eq!(status, 200, "daemon must survive a slow-loris client");
}

#[test]
fn sigterm_drains_in_flight_requests_and_exits_zero() {
    let dir = model_dir("drain");
    let mut daemon = spawn_daemon(&dir, &[]);
    let addr = daemon.addr.clone();

    // A request held well past the signal: it must still be answered.
    let in_flight = std::thread::spawn(move || {
        post(
            &addr,
            "/predict",
            r#"{"model":"MILC","p":8,"n":512,"hold_ms":800}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(200));

    assert!(send_signal(daemon.child.id(), SIGTERM), "deliver SIGTERM");

    // During the drain window the listener stays open and `GET /healthz`
    // must announce the departure: 503 with a `"status":"draining"` body,
    // so a router's prober moves traffic away before the port vanishes.
    // (The first probe may race the signal and still get a worker's 200.)
    let drain_probe = Instant::now();
    let mut saw_draining = false;
    while drain_probe.elapsed() < Duration::from_millis(500) {
        let (status, head, body) = get(&daemon.addr, "/healthz");
        if status == 503 {
            let text = String::from_utf8_lossy(&body);
            assert!(
                text.starts_with(r#"{"status":"draining""#),
                "draining healthz body: {text}"
            );
            assert!(head.contains("Retry-After: 1"), "{head}");
            saw_draining = true;
            break;
        }
        assert_eq!(status, 200, "pre-drain healthz must still be well-formed");
        std::thread::sleep(Duration::from_millis(30));
    }
    assert!(
        saw_draining,
        "healthz never reported draining during the drain window"
    );

    let started = Instant::now();
    let status = loop {
        if let Some(status) = daemon.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "daemon failed to exit after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(0), "a drained shutdown exits 0");

    let (code, _, body) = in_flight.join().expect("client thread");
    assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        body,
        api::predict_body(&catalog::milc(), 8.0, 512.0).as_bytes(),
        "the drained request still gets the exact library answer"
    );
}
