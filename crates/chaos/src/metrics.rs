//! Prometheus-style counters for injected faults.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::plan::{FaultClass, CLASSES};

/// Lock-free per-class fault counters plus a total-connections gauge.
#[derive(Debug, Default)]
pub struct ChaosMetrics {
    connections: AtomicU64,
    injected: [AtomicU64; CLASSES.len()],
}

impl ChaosMetrics {
    /// Fresh metrics with every counter at zero.
    pub fn new() -> Self {
        ChaosMetrics::default()
    }

    fn slot(class: FaultClass) -> usize {
        CLASSES
            .iter()
            .position(|c| *c == class)
            .expect("every FaultClass appears in CLASSES")
    }

    /// Record one accepted connection.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one injected fault of `class`. Called only when the fault was
    /// actually applied (e.g. corruption with an empty body counts nothing).
    pub fn record_fault(&self, class: FaultClass) {
        self.injected[Self::slot(class)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total connections the proxy has accepted.
    pub fn connections_total(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Injected count for one class.
    pub fn injected(&self, class: FaultClass) -> u64 {
        self.injected[Self::slot(class)].load(Ordering::Relaxed)
    }

    /// All `(label, count)` pairs in `CLASSES` order — the stable shape
    /// reproducibility assertions compare across same-seed runs.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        CLASSES
            .iter()
            .map(|c| (c.label(), self.injected(*c)))
            .collect()
    }

    /// Sum of injected faults across every class.
    pub fn injected_total(&self) -> u64 {
        CLASSES.iter().map(|c| self.injected(*c)).sum()
    }

    /// Render in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("# HELP chaos_connections_total Connections accepted by the chaos proxy.\n");
        out.push_str("# TYPE chaos_connections_total counter\n");
        out.push_str(&format!(
            "chaos_connections_total {}\n",
            self.connections_total()
        ));
        out.push_str("# HELP chaos_faults_injected_total Faults injected, by class.\n");
        out.push_str("# TYPE chaos_faults_injected_total counter\n");
        for class in CLASSES {
            out.push_str(&format!(
                "chaos_faults_injected_total{{class=\"{}\"}} {}\n",
                class.label(),
                self.injected(class)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_lists_every_class_with_counts() {
        let metrics = ChaosMetrics::new();
        metrics.record_connection();
        metrics.record_connection();
        metrics.record_fault(FaultClass::Partition);
        metrics.record_fault(FaultClass::Partition);
        metrics.record_fault(FaultClass::Corrupt);
        let text = metrics.render();
        assert!(text.contains("chaos_connections_total 2"));
        assert!(text.contains("chaos_faults_injected_total{class=\"partition\"} 2"));
        assert!(text.contains("chaos_faults_injected_total{class=\"corrupt\"} 1"));
        assert!(text.contains("chaos_faults_injected_total{class=\"slowloris_request\"} 0"));
        assert_eq!(metrics.injected_total(), 3);
        assert_eq!(metrics.counts().len(), CLASSES.len());
    }
}
