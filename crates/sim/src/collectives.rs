//! Collective operations built from point-to-point messages with real
//! algorithms, so byte counts carry the true structural `p`-dependence
//! (`log p` trees, `p−1` rings, pairwise quadratic exchanges).
//!
//! The byte totals of each algorithm match the closed forms in
//! `exareq_core::collective::CollectiveKind::total_bytes` message for
//! message; an integration test at the workspace root enforces this.

use crate::rank::Rank;
use crate::stats::OpClass;
use bytes::Bytes;

/// Tag space reserved for collectives (user tags share the space; keep user
/// tags below this value).
const COLL_TAG: u64 = 1 << 60;

impl Rank {
    /// Broadcast `data` from `root` to all ranks over a binomial tree
    /// (`p − 1` messages total). Returns the broadcast payload.
    pub fn bcast(&mut self, root: usize, data: &[u8]) -> Bytes {
        let p = self.size();
        assert!(root < p, "root {root} out of range");
        if p == 1 {
            return Bytes::copy_from_slice(data);
        }
        let vrank = (self.rank() + p - root) % p;
        let tag = COLL_TAG + 1;

        // Receive phase: a non-root rank receives from the peer that owns
        // the highest bit below its lowest set bit.
        let mut payload: Option<Bytes> = if vrank == 0 {
            Some(Bytes::copy_from_slice(data))
        } else {
            None
        };
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let vsrc = vrank - mask;
                let src = (vsrc + root) % p;
                payload = Some(self.recv_class(OpClass::Bcast, src, tag));
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children (vrank + mask for decreasing mask).
        let payload = payload.expect("bcast payload");
        let mut mask = mask >> 1;
        while mask > 0 {
            let vdst = vrank + mask;
            if vdst < p {
                let dst = (vdst + root) % p;
                self.send_class(OpClass::Bcast, dst, tag, &payload);
            }
            mask >>= 1;
        }
        payload
    }

    /// All-reduce (element-wise sum) of a `f64` vector via recursive
    /// doubling, with the standard fold step for non-power-of-two rank
    /// counts. Every rank ends with the global sum.
    pub fn allreduce_sum(&mut self, data: &mut [f64]) {
        let p = self.size();
        if p == 1 {
            return;
        }
        let tag = COLL_TAG + 2;
        let f = largest_pow2_leq(p);
        let r = p - f;
        let rank = self.rank();

        // Fold in: extra ranks (>= f) send their vector to rank − f.
        if rank >= f {
            self.send_f64s_class(OpClass::Allreduce, rank - f, tag, data);
        } else if rank < r {
            let theirs = self.recv_f64s_class(OpClass::Allreduce, rank + f, tag);
            add_into(data, &theirs);
        }

        // Recursive doubling among the first f ranks.
        if rank < f {
            let mut mask = 1usize;
            while mask < f {
                let partner = rank ^ mask;
                self.send_f64s_class(OpClass::Allreduce, partner, tag + mask as u64, data);
                let theirs = self.recv_f64s_class(OpClass::Allreduce, partner, tag + mask as u64);
                add_into(data, &theirs);
                mask <<= 1;
            }
        }

        // Fold out: partners send the result back to the extra ranks.
        if rank < r {
            self.send_f64s_class(OpClass::Allreduce, rank + f, tag, data);
        } else if rank >= f {
            let result = self.recv_f64s_class(OpClass::Allreduce, rank - f, tag);
            data.copy_from_slice(&result);
        }
    }

    /// All-gather over a ring: after `p − 1` rounds every rank holds every
    /// rank's block, returned in rank order.
    pub fn allgather(&mut self, mine: &[u8]) -> Vec<Bytes> {
        let p = self.size();
        let rank = self.rank();
        let tag = COLL_TAG + 3;
        let mut blocks: Vec<Option<Bytes>> = (0..p).map(|_| None).collect();
        blocks[rank] = Some(Bytes::copy_from_slice(mine));
        if p == 1 {
            return blocks.into_iter().map(|b| b.expect("own block")).collect();
        }
        let next = (rank + 1) % p;
        let prev = (rank + p - 1) % p;
        // In round k we forward the block that originated at rank − k.
        let mut outgoing = Bytes::copy_from_slice(mine);
        for k in 0..p - 1 {
            self.send_class(OpClass::Allgather, next, tag + k as u64, &outgoing);
            let incoming = self.recv_class(OpClass::Allgather, prev, tag + k as u64);
            let origin = (rank + p - 1 - k) % p;
            blocks[origin] = Some(incoming.clone());
            outgoing = incoming;
        }
        blocks
            .into_iter()
            .map(|b| b.expect("ring filled"))
            .collect()
    }

    /// All-to-all personalized exchange: `blocks[i]` is sent to rank `i`;
    /// the returned vector holds the block received from each rank (own
    /// block is passed through). Pairwise rounds: `p − 1` exchanges.
    ///
    /// # Panics
    /// Panics if `blocks.len() != self.size()`.
    pub fn alltoall(&mut self, blocks: &[Vec<u8>]) -> Vec<Bytes> {
        let p = self.size();
        assert_eq!(blocks.len(), p, "one block per destination");
        let rank = self.rank();
        let tag = COLL_TAG + 4;
        let mut out: Vec<Option<Bytes>> = (0..p).map(|_| None).collect();
        out[rank] = Some(Bytes::copy_from_slice(&blocks[rank]));
        for round in 1..p {
            let dst = (rank + round) % p;
            let src = (rank + p - round) % p;
            self.send_class(OpClass::Alltoall, dst, tag + round as u64, &blocks[dst]);
            let incoming = self.recv_class(OpClass::Alltoall, src, tag + round as u64);
            out[src] = Some(incoming);
        }
        out.into_iter()
            .map(|b| b.expect("exchange filled"))
            .collect()
    }

    /// Barrier: a zero-byte allreduce. Contributes messages but no payload
    /// bytes to the requirement counters.
    pub fn barrier(&mut self) {
        let mut nothing: [f64; 0] = [];
        self.allreduce_sum(&mut nothing);
    }
}

fn largest_pow2_leq(p: usize) -> usize {
    let np = p.next_power_of_two();
    if np > p {
        np / 2
    } else {
        np
    }
}

fn add_into(acc: &mut [f64], other: &[f64]) {
    assert_eq!(acc.len(), other.len(), "allreduce length mismatch");
    for (a, b) in acc.iter_mut().zip(other) {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_ranks, total_stats};
    use crate::stats::OpClass;

    #[test]
    fn largest_pow2() {
        assert_eq!(largest_pow2_leq(1), 1);
        assert_eq!(largest_pow2_leq(2), 2);
        assert_eq!(largest_pow2_leq(3), 2);
        assert_eq!(largest_pow2_leq(6), 4);
        assert_eq!(largest_pow2_leq(8), 8);
        assert_eq!(largest_pow2_leq(9), 8);
    }

    #[test]
    fn bcast_delivers_from_every_root() {
        for p in [1, 2, 3, 4, 5, 8, 13] {
            for root in 0..p {
                let results = run_ranks(p, |r| r.bcast(root, b"payload-xyz").to_vec());
                for res in &results {
                    assert_eq!(res.value, b"payload-xyz".to_vec(), "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn bcast_total_messages_p_minus_1() {
        for p in [2usize, 5, 8, 11] {
            let results = run_ranks(p, |r| {
                r.bcast(0, &[7u8; 10]);
            });
            let t = total_stats(&results);
            assert_eq!(t.class(OpClass::Bcast).sent, ((p - 1) * 10) as u64, "p={p}");
            assert_eq!(t.class(OpClass::Bcast).recv, ((p - 1) * 10) as u64);
        }
    }

    #[test]
    fn allreduce_sums_correctly() {
        for p in [1usize, 2, 3, 4, 6, 8, 12] {
            let results = run_ranks(p, |r| {
                let mut v = vec![r.rank() as f64, 1.0, (r.rank() * r.rank()) as f64];
                r.allreduce_sum(&mut v);
                v
            });
            let sum_rank: f64 = (0..p).map(|i| i as f64).sum();
            let sum_sq: f64 = (0..p).map(|i| (i * i) as f64).sum();
            for res in &results {
                assert_eq!(res.value, vec![sum_rank, p as f64, sum_sq], "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_bytes_match_closed_form() {
        // total = 2·f·log2(f)·s + 4·r·s with s the vector payload in bytes.
        for p in [2usize, 3, 4, 6, 8, 12, 16] {
            let elems = 5;
            let s = (elems * 8) as u64;
            let results = run_ranks(p, |r| {
                let mut v = vec![1.0f64; elems];
                r.allreduce_sum(&mut v);
            });
            let t = total_stats(&results);
            let f = largest_pow2_leq(p) as u64;
            let r_extra = p as u64 - f;
            // Per side (sent or received): f·log2(f)·s from recursive
            // doubling plus 2·r·s from the fold in/out.
            let per_side = f * (f as f64).log2() as u64 * s + 2 * r_extra * s;
            assert_eq!(t.class(OpClass::Allreduce).sent, per_side, "p={p}");
            assert_eq!(t.class(OpClass::Allreduce).recv, per_side, "p={p}");
        }
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        for p in [1usize, 2, 3, 5, 8] {
            let results = run_ranks(p, |r| {
                let mine = vec![r.rank() as u8; 4];
                r.allgather(&mine)
                    .into_iter()
                    .map(|b| b[0] as usize)
                    .collect::<Vec<_>>()
            });
            for res in &results {
                assert_eq!(res.value, (0..p).collect::<Vec<_>>(), "p={p}");
            }
        }
    }

    #[test]
    fn allgather_bytes_quadratic() {
        let p = 6usize;
        let bs = 10u64;
        let results = run_ranks(p, |r| {
            let mine = vec![0u8; 10];
            r.allgather(&mine);
        });
        let t = total_stats(&results);
        assert_eq!(
            t.class(OpClass::Allgather).sent,
            p as u64 * (p as u64 - 1) * bs
        );
    }

    #[test]
    fn alltoall_permutes_blocks() {
        for p in [1usize, 2, 4, 7] {
            let results = run_ranks(p, |r| {
                // Block for dst j encodes (me, j).
                let blocks: Vec<Vec<u8>> = (0..p).map(|j| vec![r.rank() as u8, j as u8]).collect();
                r.alltoall(&blocks)
                    .into_iter()
                    .map(|b| (b[0] as usize, b[1] as usize))
                    .collect::<Vec<_>>()
            });
            for (me, res) in results.iter().enumerate() {
                for (src, &(from, to)) in res.value.iter().enumerate() {
                    assert_eq!(from, src, "p={p}");
                    assert_eq!(to, me, "p={p}");
                }
            }
        }
    }

    #[test]
    fn barrier_moves_no_payload() {
        let results = run_ranks(5, |r| {
            r.barrier();
        });
        let t = total_stats(&results);
        assert_eq!(t.total_sent(), 0);
        assert!(t.messages_sent > 0);
    }
}
