//! Space-sharing co-design (Section II-E extension).
//!
//! "In principle, our approach can map more than one application on a
//! given system simultaneously. For example, we could assume that a system
//! is shared between two applications in space according to a certain
//! ratio as long as we can derive our model parameters p and n for each of
//! them." The paper leaves the scenario out of its study (sharing is "a
//! matter of scientific priority"); this module implements it: a system
//! skeleton is partitioned into process shares, each application inflates
//! its problem within its share, and the combined requirement load is
//! reported.

use crate::inflate::{inflate_problem, Inflation};
use crate::requirements::{AppRequirements, RateMetric};
use crate::skeleton::SystemSkeleton;
use serde::{Deserialize, Serialize};

/// One application's share of a space-partitioned system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShareOutcome {
    /// Application name.
    pub app: String,
    /// Fraction of the machine's processes granted.
    pub fraction: f64,
    /// Processes in the share.
    pub processes: f64,
    /// Problem size per process after inflation within the share.
    pub n: f64,
    /// Overall problem size solved by this application.
    pub overall_problem: f64,
    /// Per-process requirements at `(processes, n)` in
    /// [`RateMetric::ALL`] order.
    pub rates: [f64; 3],
}

/// Errors of the sharing analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SharingError {
    /// Fractions must be positive and sum to at most 1.
    InvalidFractions {
        /// The offending sum.
        sum: f64,
    },
    /// An application cannot run within its share.
    ShareTooSmall {
        /// Application that does not fit.
        app: String,
    },
    /// The number of fractions does not match the number of applications.
    ArityMismatch,
}

impl std::fmt::Display for SharingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SharingError::InvalidFractions { sum } => {
                write!(
                    f,
                    "share fractions must be positive and sum to ≤ 1 (got {sum})"
                )
            }
            SharingError::ShareTooSmall { app } => {
                write!(f, "{app} cannot fill its share of the machine")
            }
            SharingError::ArityMismatch => write!(f, "one fraction per application required"),
        }
    }
}

impl std::error::Error for SharingError {}

/// Partitions `system` between `apps` in space according to `fractions`
/// (of the process count; memory per process is unchanged — space
/// sharing, not memory oversubscription) and inflates each application's
/// problem within its share.
///
/// # Errors
/// Returns [`SharingError`] on invalid fractions or when an application's
/// footprint exceeds its share's memory even at `n = 1`.
pub fn share_system(
    apps: &[&AppRequirements],
    fractions: &[f64],
    system: &SystemSkeleton,
) -> Result<Vec<ShareOutcome>, SharingError> {
    if apps.len() != fractions.len() {
        return Err(SharingError::ArityMismatch);
    }
    let sum: f64 = fractions.iter().sum();
    if fractions.iter().any(|&f| f <= 0.0) || sum > 1.0 + 1e-12 {
        return Err(SharingError::InvalidFractions { sum });
    }

    let mut out = Vec::with_capacity(apps.len());
    for (app, &frac) in apps.iter().zip(fractions) {
        let share = SystemSkeleton::new(system.processes * frac, system.mem_per_process);
        let n = match inflate_problem(&app.bytes_used, &share) {
            Inflation::Fits(n) => n,
            _ => {
                return Err(SharingError::ShareTooSmall {
                    app: app.name.clone(),
                })
            }
        };
        let coords = [share.processes, n];
        let mut rates = [0.0; 3];
        for (slot, m) in rates.iter_mut().zip(RateMetric::ALL) {
            *slot = app.rate_model(m).eval(&coords);
        }
        out.push(ShareOutcome {
            app: app.name.clone(),
            fraction: frac,
            processes: share.processes,
            n,
            overall_problem: share.processes * n,
            rates,
        });
    }
    Ok(out)
}

/// Scans share splits between two applications in steps of `step`
/// (0 < step < 1) and returns, for each split, the pair of overall problem
/// sizes — the *trade-off frontier* a scientific-priority decision would
/// pick from.
pub fn two_app_frontier(
    a: &AppRequirements,
    b: &AppRequirements,
    system: &SystemSkeleton,
    step: f64,
) -> Vec<(f64, f64, f64)> {
    assert!(step > 0.0 && step < 1.0, "step in (0, 1)");
    let mut out = Vec::new();
    let mut frac = step;
    while frac < 1.0 - 1e-9 {
        if let Ok(res) = share_system(&[a, b], &[frac, 1.0 - frac], system) {
            out.push((frac, res[0].overall_problem, res[1].overall_problem));
        }
        frac += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::skeleton::SystemSkeleton;

    fn sys() -> SystemSkeleton {
        SystemSkeleton::reference_large()
    }

    #[test]
    fn even_split_halves_each_problem() {
        let kripke = catalog::kripke();
        let milc = catalog::milc();
        let shares = share_system(&[&kripke, &milc], &[0.5, 0.5], &sys()).unwrap();
        // Both have p-independent, linear-in-n footprints: n is unchanged by
        // the split, so each overall problem is exactly half the exclusive
        // one.
        let exclusive = share_system(&[&kripke], &[1.0], &sys()).unwrap()[0].overall_problem;
        assert!((shares[0].overall_problem - exclusive / 2.0).abs() / exclusive < 1e-9);
        assert_eq!(shares[0].fraction + shares[1].fraction, 1.0);
    }

    #[test]
    fn icofoam_gains_from_smaller_shares() {
        // icoFoam's p·log p footprint shrinks when it gets fewer processes,
        // so its problem size per process *grows* on a smaller share.
        let ico = catalog::icofoam();
        let kripke = catalog::kripke();
        let small = share_system(&[&ico, &kripke], &[0.1, 0.9], &sys()).unwrap();
        let large = share_system(&[&ico, &kripke], &[0.9, 0.1], &sys()).unwrap();
        assert!(small[0].n > large[0].n, "{} vs {}", small[0].n, large[0].n);
    }

    #[test]
    fn fractions_validated() {
        let k = catalog::kripke();
        assert!(matches!(
            share_system(&[&k, &k], &[0.7, 0.7], &sys()),
            Err(SharingError::InvalidFractions { .. })
        ));
        assert!(matches!(
            share_system(&[&k], &[-0.5], &sys()),
            Err(SharingError::InvalidFractions { .. })
        ));
        assert!(matches!(
            share_system(&[&k, &k], &[1.0], &sys()),
            Err(SharingError::ArityMismatch)
        ));
    }

    #[test]
    fn share_too_small_detected() {
        // icoFoam on an exascale machine: even a full share fails; any
        // share of it fails identically (the p·log p floor scales with its
        // own share, so use a skeleton where only tiny shares fail).
        let ico = catalog::icofoam();
        let tight = SystemSkeleton::new(1e6, 2.5e9);
        // Full machine: p·log p term = 1e2·1e6·19.9 ≈ 2e9 < 2.5e9 → fits.
        assert!(share_system(&[&ico], &[1.0], &tight).is_ok());
        // But Kripke sharing with a *bigger* machine's worth of processes…
        let huge = SystemSkeleton::new(1e9, 5e6);
        assert!(matches!(
            share_system(&[&ico], &[1.0], &huge),
            Err(SharingError::ShareTooSmall { .. })
        ));
    }

    #[test]
    fn frontier_is_monotone() {
        let kripke = catalog::kripke();
        let relearn = catalog::relearn();
        let frontier = two_app_frontier(&kripke, &relearn, &sys(), 0.1);
        assert!(frontier.len() >= 8);
        for w in frontier.windows(2) {
            // Kripke's problem grows with its share, Relearn's shrinks.
            assert!(w[1].1 > w[0].1);
            assert!(w[1].2 < w[0].2);
        }
    }

    #[test]
    fn rates_are_positive_and_consistent() {
        let lulesh = catalog::lulesh();
        let shares = share_system(&[&lulesh], &[0.25], &sys()).unwrap();
        let s = &shares[0];
        assert_eq!(s.processes, 0.25 * sys().processes);
        for r in s.rates {
            assert!(r > 0.0);
        }
        // Rate values equal direct evaluation.
        let direct = lulesh.flops.eval(&[s.processes, s.n]);
        assert_eq!(s.rates[0], direct);
    }
}
