//! Cross-crate consistency: the byte totals produced by the simulator's
//! collective implementations must equal the closed forms that
//! `exareq-core` uses for symbolic normalization — message for message.

use exareq::core::collective::CollectiveKind;
use exareq::sim::{run_ranks, run_ranks_with_faults, total_stats, FaultPlan, OpClass};

const PS: [usize; 8] = [2, 3, 4, 5, 6, 8, 12, 16];

#[test]
fn bcast_totals_match_closed_form() {
    for p in PS {
        let payload = 1000usize;
        let results = run_ranks(p, |r| {
            let _ = r.bcast(0, &vec![7u8; payload]);
        });
        let t = total_stats(&results);
        let measured = (t.class(OpClass::Bcast).sent + t.class(OpClass::Bcast).recv) as f64;
        let expected = CollectiveKind::Bcast.total_bytes(p as u64, payload as u64);
        assert_eq!(measured, expected, "p = {p}");
    }
}

#[test]
fn allreduce_totals_match_closed_form() {
    for p in PS {
        let elems = 17usize;
        let results = run_ranks(p, |r| {
            let mut v = vec![1.0f64; elems];
            r.allreduce_sum(&mut v);
        });
        let t = total_stats(&results);
        let measured = (t.class(OpClass::Allreduce).sent + t.class(OpClass::Allreduce).recv) as f64;
        let expected = CollectiveKind::Allreduce.total_bytes(p as u64, (elems * 8) as u64);
        assert_eq!(measured, expected, "p = {p}");
    }
}

#[test]
fn allgather_totals_match_closed_form() {
    for p in PS {
        let block = 64usize;
        let results = run_ranks(p, |r| {
            let _ = r.allgather(&vec![1u8; block]);
        });
        let t = total_stats(&results);
        let measured = (t.class(OpClass::Allgather).sent + t.class(OpClass::Allgather).recv) as f64;
        let expected = CollectiveKind::Allgather.total_bytes(p as u64, block as u64);
        assert_eq!(measured, expected, "p = {p}");
    }
}

#[test]
fn alltoall_totals_match_closed_form() {
    for p in PS {
        let block = 32usize;
        let results = run_ranks(p, |r| {
            let blocks: Vec<Vec<u8>> = (0..p).map(|_| vec![0u8; block]).collect();
            let _ = r.alltoall(&blocks);
        });
        let t = total_stats(&results);
        let measured = (t.class(OpClass::Alltoall).sent + t.class(OpClass::Alltoall).recv) as f64;
        let expected = CollectiveKind::Alltoall.total_bytes(p as u64, block as u64);
        assert_eq!(measured, expected, "p = {p}");
    }
}

#[test]
fn p2p_pair_matches_closed_form() {
    let results = run_ranks(2, |r| {
        if r.rank() == 0 {
            r.send(1, 0, &[0u8; 500]);
        } else {
            let _ = r.recv(0, 0);
        }
    });
    let t = total_stats(&results);
    assert_eq!(
        (t.class(OpClass::P2p).sent + t.class(OpClass::P2p).recv) as f64,
        CollectiveKind::PointToPoint.total_bytes(2, 500)
    );
}

#[test]
fn inert_fault_layer_is_byte_neutral() {
    // Routing every message through the fault layer with an empty plan
    // must not perturb a single byte: the closed forms still hold and no
    // fault events are recorded.
    for p in PS {
        let payload = 256usize;
        let elems = 9usize;
        let outcome = run_ranks_with_faults(p, &FaultPlan::none(), |r| {
            let _ = r.bcast(0, &vec![7u8; payload]);
            let mut v = vec![1.0f64; elems];
            r.allreduce_sum(&mut v);
        })
        .expect("fault-free collectives cannot fail");
        assert_eq!(outcome.completed(), p, "p = {p}");
        assert!(!outcome.is_degraded(), "p = {p}");
        assert_eq!(outcome.total_faults().total_events(), 0, "p = {p}");
        let t = outcome.total_stats();
        let bcast = (t.class(OpClass::Bcast).sent + t.class(OpClass::Bcast).recv) as f64;
        assert_eq!(
            bcast,
            CollectiveKind::Bcast.total_bytes(p as u64, payload as u64),
            "p = {p}"
        );
        let ar = (t.class(OpClass::Allreduce).sent + t.class(OpClass::Allreduce).recv) as f64;
        assert_eq!(
            ar,
            CollectiveKind::Allreduce.total_bytes(p as u64, (elems * 8) as u64),
            "p = {p}"
        );
    }
}

#[test]
fn class_labels_align_across_crates() {
    // The survey channel labels (apps crate) must match the symbols the
    // modeler uses for collective lookup.
    for (kind, label) in [
        (CollectiveKind::Bcast, "Bcast"),
        (CollectiveKind::Allreduce, "Allreduce"),
        (CollectiveKind::Allgather, "Allgather"),
        (CollectiveKind::Alltoall, "Alltoall"),
    ] {
        assert_eq!(kind.symbol(), label);
    }
    assert_eq!(OpClass::ALL.len(), 5);
}
