//! Cartesian process topologies and halo exchange, the communication
//! skeleton of the stencil-style study applications (LULESH, MILC, icoFoam).

use crate::rank::Rank;
use bytes::Bytes;

/// Splits `p` ranks into a balanced `ndims`-dimensional grid, mimicking
/// `MPI_Dims_create`: dimensions are as close to each other as possible,
/// in non-increasing order, with `Π dims = p`.
pub fn dims_create(p: usize, ndims: usize) -> Vec<usize> {
    assert!(p > 0 && ndims > 0);
    let mut dims = vec![1usize; ndims];
    // Distribute prime factors, largest first, onto the smallest dimension.
    let mut factors = prime_factors(p);
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let min = dims
            .iter()
            .enumerate()
            .min_by_key(|(_, &d)| d)
            .map(|(i, _)| i)
            .expect("ndims > 0");
        dims[min] *= f;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n.is_multiple_of(d) {
            out.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// A Cartesian view of the ranks: row-major coordinates over `dims`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CartGrid {
    /// Extent of each dimension; `Π dims == size`.
    pub dims: Vec<usize>,
    /// Whether each dimension wraps around.
    pub periodic: Vec<bool>,
}

impl CartGrid {
    /// Creates a grid over `p` ranks with balanced dimensions.
    ///
    /// # Panics
    /// Panics if `p` cannot be factored into `ndims` dimensions (never —
    /// `dims_create` always succeeds) or `ndims == 0`.
    pub fn balanced(p: usize, ndims: usize, periodic: bool) -> Self {
        CartGrid {
            dims: dims_create(p, ndims),
            periodic: vec![periodic; ndims],
        }
    }

    /// Total number of ranks in the grid.
    pub fn size(&self) -> usize {
        self.dims.iter().product()
    }

    /// Coordinates of `rank` (row-major).
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.size());
        let mut rem = rank;
        let mut coords = vec![0; self.dims.len()];
        for (i, &d) in self.dims.iter().enumerate().rev() {
            coords[i] = rem % d;
            rem /= d;
        }
        coords
    }

    /// Rank at the given coordinates (row-major).
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len());
        let mut rank = 0;
        for (c, &d) in coords.iter().zip(&self.dims) {
            assert!(*c < d, "coordinate out of range");
            rank = rank * d + c;
        }
        rank
    }

    /// The neighbor of `rank` displaced by `disp` along `dim`, or `None` at
    /// a non-periodic boundary.
    pub fn neighbor(&self, rank: usize, dim: usize, disp: isize) -> Option<usize> {
        let mut coords = self.coords(rank);
        let d = self.dims[dim] as isize;
        let c = coords[dim] as isize + disp;
        let c = if self.periodic[dim] {
            ((c % d) + d) % d
        } else if c < 0 || c >= d {
            return None;
        } else {
            c
        };
        coords[dim] = c as usize;
        Some(self.rank_of(&coords))
    }
}

impl Rank {
    /// Halo exchange along one dimension of `grid`: sends `outgoing` to the
    /// `+1` neighbor and receives from the `−1` neighbor (then vice versa),
    /// returning `(from_minus, from_plus)`. Boundary neighbors that do not
    /// exist yield `None`.
    pub fn halo_exchange(
        &mut self,
        grid: &CartGrid,
        dim: usize,
        tag: u64,
        to_plus: &[u8],
        to_minus: &[u8],
    ) -> (Option<Bytes>, Option<Bytes>) {
        let me = self.rank();
        let plus = grid.neighbor(me, dim, 1);
        let minus = grid.neighbor(me, dim, -1);
        // Sends first (channels are buffered, no deadlock).
        if let Some(d) = plus {
            if d != me {
                self.send(d, tag, to_plus);
            }
        }
        if let Some(d) = minus {
            if d != me {
                self.send(d, tag + 1, to_minus);
            }
        }
        let from_minus = match minus {
            Some(s) if s != me => Some(self.recv(s, tag)),
            Some(_) => Some(Bytes::copy_from_slice(to_plus)), // self-neighbor (dim size 1, periodic)
            None => None,
        };
        let from_plus = match plus {
            Some(s) if s != me => Some(self.recv(s, tag + 1)),
            Some(_) => Some(Bytes::copy_from_slice(to_minus)),
            None => None,
        };
        (from_minus, from_plus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_ranks;

    #[test]
    fn dims_create_balanced() {
        assert_eq!(dims_create(16, 2), vec![4, 4]);
        assert_eq!(dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(dims_create(12, 2), vec![4, 3]);
        assert_eq!(dims_create(7, 2), vec![7, 1]);
        assert_eq!(dims_create(1, 3), vec![1, 1, 1]);
        assert_eq!(dims_create(24, 3), vec![4, 3, 2]);
    }

    #[test]
    fn coords_roundtrip() {
        let g = CartGrid::balanced(24, 3, false);
        for rank in 0..24 {
            assert_eq!(g.rank_of(&g.coords(rank)), rank);
        }
    }

    #[test]
    fn neighbor_non_periodic_boundary() {
        let g = CartGrid {
            dims: vec![3, 3],
            periodic: vec![false, false],
        };
        // Rank 0 is (0,0): no −1 neighbors.
        assert_eq!(g.neighbor(0, 0, -1), None);
        assert_eq!(g.neighbor(0, 1, -1), None);
        assert_eq!(g.neighbor(0, 0, 1), Some(3));
        assert_eq!(g.neighbor(0, 1, 1), Some(1));
        // Rank 8 is (2,2): no +1 neighbors.
        assert_eq!(g.neighbor(8, 0, 1), None);
    }

    #[test]
    fn neighbor_periodic_wraps() {
        let g = CartGrid {
            dims: vec![4],
            periodic: vec![true],
        };
        assert_eq!(g.neighbor(0, 0, -1), Some(3));
        assert_eq!(g.neighbor(3, 0, 1), Some(0));
        assert_eq!(g.neighbor(1, 0, -5), Some(0));
    }

    #[test]
    fn halo_exchange_ring() {
        // 1-D periodic ring of 4: each rank sends its id both ways.
        let results = run_ranks(4, |r| {
            let g = CartGrid {
                dims: vec![4],
                periodic: vec![true],
            };
            let me = [r.rank() as u8];
            let (from_minus, from_plus) = r.halo_exchange(&g, 0, 10, &me, &me);
            (from_minus.unwrap()[0], from_plus.unwrap()[0])
        });
        for (rank, res) in results.iter().enumerate() {
            assert_eq!(res.value.0 as usize, (rank + 3) % 4);
            assert_eq!(res.value.1 as usize, (rank + 1) % 4);
        }
    }

    #[test]
    fn halo_exchange_boundary_none() {
        let results = run_ranks(3, |r| {
            let g = CartGrid {
                dims: vec![3],
                periodic: vec![false],
            };
            let me = [r.rank() as u8];
            let (from_minus, from_plus) = r.halo_exchange(&g, 0, 10, &me, &me);
            (from_minus.is_some(), from_plus.is_some())
        });
        assert_eq!(results[0].value, (false, true));
        assert_eq!(results[1].value, (true, true));
        assert_eq!(results[2].value, (true, false));
    }
}
