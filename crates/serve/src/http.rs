//! A minimal, hardened HTTP/1.1 codec — request line, headers, and a
//! `Content-Length` body; nothing else.
//!
//! Design rules, in order:
//!
//! 1. **Never panic.** Every byte sequence a socket can deliver — truncated,
//!    binary garbage, a 2 GiB `Content-Length` — maps to `Ok(None)` (need
//!    more bytes), a parsed [`Request`], or a typed 4xx/5xx [`HttpError`].
//!    `tests/http_properties.rs` fuzzes this contract.
//! 2. **Bounded memory.** The head is capped at [`MAX_HEAD_LEN`]; declared
//!    bodies past [`MAX_BODY_LEN`] (the minijson input cap — a body that
//!    large could never parse anyway) are refused with `413` before a
//!    single body byte is buffered.
//! 3. **No silent downgrades.** `Transfer-Encoding` (chunked bodies) is not
//!    implemented and says so with `501` instead of desynchronizing.

use exareq_profile::minijson;

/// Largest accepted request head (request line + headers), bytes.
pub const MAX_HEAD_LEN: usize = 16 * 1024;

/// Largest accepted request body: the minijson input cap, since every body
/// this server accepts is parsed by minijson.
pub const MAX_BODY_LEN: usize = minijson::MAX_INPUT_LEN;

/// A parse failure that already knows its HTTP answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Response status (400, 413, 431, 501).
    pub status: u16,
    /// One-line reason for the response body.
    pub reason: String,
}

impl HttpError {
    /// Build an error that already knows its HTTP answer. Public because
    /// the connection loop turns header-read deadline expiry into a `408`
    /// through the same path parse failures take.
    pub fn new(status: u16, reason: impl Into<String>) -> Self {
        HttpError {
            status,
            reason: reason.into(),
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Request target, verbatim (`/predict`).
    pub target: String,
    /// Header name/value pairs in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
    /// True when the request line said `HTTP/1.0` — which flips the
    /// keep-alive default to close, per [`Request::wants_keep_alive`].
    pub http10: bool,
}

impl Request {
    /// First header with the given name, ASCII-case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Keep-alive negotiation, request side: an explicit
    /// `Connection: close` or `Connection: keep-alive` header wins;
    /// absent one, HTTP/1.1 defaults to keep-alive and HTTP/1.0 to close.
    /// Any other `Connection` value is treated as close — the conservative
    /// reading for a codec that does not implement hop-by-hop options.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            Some(_) => false,
            None => !self.http10,
        }
    }
}

/// Finds the end of the head: the index one past the blank line. Accepts
/// both CRLF and bare-LF line endings (curl sends CRLF; hand-rolled test
/// clients often do not).
fn head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // "\n\n" or "\n\r\n" terminate the head.
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(i + 2);
            }
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Incrementally parses one request from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds a syntactically plausible
/// prefix that needs more bytes, `Ok(Some(request))` when a complete
/// request (head + declared body) is buffered, and `Err` the moment the
/// bytes can no longer become a request this codec accepts.
///
/// # Errors
/// `400` malformed head, `413` declared body over [`MAX_BODY_LEN`],
/// `431` head over [`MAX_HEAD_LEN`], `501` transfer-encoding.
pub fn parse_request(buf: &[u8]) -> Result<Option<Request>, HttpError> {
    Ok(parse_one(buf)?.map(|(request, _)| request))
}

/// [`parse_request`], additionally reporting how many bytes of `buf` the
/// request consumed — what a keep-alive connection loop needs to step past
/// one request to the (possibly already pipelined) next.
pub fn parse_one(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(body_start) = head_end(buf) else {
        if buf.len() > MAX_HEAD_LEN {
            return Err(HttpError::new(431, "request head too large"));
        }
        return Ok(None);
    };
    if body_start > MAX_HEAD_LEN {
        return Err(HttpError::new(431, "request head too large"));
    }
    let head = std::str::from_utf8(&buf[..body_start])
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::new(
                400,
                "request line is not `METHOD TARGET VERSION`",
            ))
        }
    };
    if !is_token(method) {
        return Err(HttpError::new(400, "malformed method token"));
    }
    if target.is_empty() || !target.starts_with('/') {
        return Err(HttpError::new(400, "request target must start with '/'"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::new(400, "unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    let mut content_length: usize = 0;
    for line in lines {
        if line.is_empty() {
            break; // the blank line ending the head
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, "header line without ':'"));
        };
        let name = name.trim();
        let value = value.trim();
        if !is_token(name) {
            return Err(HttpError::new(400, "malformed header name"));
        }
        if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::new(501, "transfer-encoding is not supported"));
        }
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::new(400, "malformed Content-Length"))?;
            if content_length > MAX_BODY_LEN {
                return Err(HttpError::new(
                    413,
                    format!("body of {content_length} bytes exceeds the {MAX_BODY_LEN}-byte cap"),
                ));
            }
        }
        headers.push((name.to_string(), value.to_string()));
    }

    let available = buf.len() - body_start;
    if available < content_length {
        return Ok(None);
    }
    Ok(Some((
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body: buf[body_start..body_start + content_length].to_vec(),
            http10: version == "HTTP/1.0",
        },
        body_start + content_length,
    )))
}

/// Canonical reason phrase for the statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// An outgoing response; `to_bytes` renders status line, headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `Retry-After` seconds, sent with 503 backpressure answers.
    pub retry_after: Option<u64>,
    /// Additional response headers (name, value), rendered after the
    /// fixed set. The router's `X-Exareq-Degraded: local` flag travels
    /// here — out-of-band, so the *body* stays byte-identical to the
    /// direct library call.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Whether this response announces `Connection: close` (and the
    /// engine closes afterwards) or `Connection: keep-alive`. Constructors
    /// default to close — only the serve engine's negotiated success path
    /// flips it, so every error, reject, and drain answer still closes.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            retry_after: None,
            extra_headers: Vec::new(),
            close: true,
        }
    }

    /// A plain-text response (the Prometheus exposition format).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into(),
            retry_after: None,
            extra_headers: Vec::new(),
            close: true,
        }
    }

    /// Serializes the response. The `Connection` header is negotiated:
    /// constructors default to `close`, and the serve engine flips
    /// [`Response::close`] off only for a 2xx on a connection whose
    /// request asked (or defaulted) to stay open — 4xx/5xx always close,
    /// so a client that desynchronized the framing can never be answered
    /// mid-stream. Every response carries an `X-Exareq-Digest` body
    /// checksum so clients can refuse answers corrupted in transit —
    /// without it, a flipped byte inside a well-formed 200 would be
    /// undetectable at the HTTP layer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.head_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// The serialized head alone — status line through the blank line,
    /// without the body. The serve engine queues head and body as separate
    /// `writev(2)` segments so a large body is never copied into a
    /// combined buffer; `head_bytes` + `body` concatenated are exactly
    /// [`Response::to_bytes`].
    pub fn head_bytes(&self) -> Vec<u8> {
        let connection = if self.close { "close" } else { "keep-alive" };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\nX-Exareq-Digest: {}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            connection,
            digest_hex(&self.body)
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        head.into_bytes()
    }
}

/// FNV-1a 64 over the body bytes — the integrity hash behind
/// `X-Exareq-Digest`. Kept in lockstep with `crates/net/src/client.rs`,
/// which re-hashes received bodies and fails the exchange on mismatch.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The wire form of [`fnv1a64`]: 16 lowercase hex digits.
pub fn digest_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_get() {
        let req = parse_request(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("valid")
            .expect("complete");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_bare_lf() {
        let req = parse_request(b"POST /predict HTTP/1.1\nContent-Length: 4\n\nabcd")
            .expect("valid")
            .expect("complete");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn incomplete_head_and_body_want_more_bytes() {
        assert_eq!(parse_request(b"GET /x HTTP/1.1\r\nHos"), Ok(None));
        assert_eq!(
            parse_request(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Ok(None)
        );
    }

    #[test]
    fn oversized_declared_body_is_413_before_buffering() {
        let head = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1u64 << 62);
        let err = parse_request(head.as_bytes()).unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn oversized_head_is_431() {
        let mut buf = b"GET /x HTTP/1.1\r\n".to_vec();
        buf.extend(std::iter::repeat_n(b'a', MAX_HEAD_LEN + 1));
        assert_eq!(parse_request(&buf).unwrap_err().status, 431);
    }

    #[test]
    fn malformed_heads_are_400() {
        for bad in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/9.9\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: lots\r\n\r\n",
            b"\xff\xfe /x HTTP/1.1\r\n\r\n",
        ] {
            let err = parse_request(bad).expect_err("must be rejected");
            assert_eq!(err.status, 400, "{bad:?}");
        }
    }

    #[test]
    fn transfer_encoding_is_501() {
        let err =
            parse_request(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 501);
    }

    #[test]
    fn keep_alive_negotiation_follows_version_and_header() {
        let parse = |raw: &[u8]| parse_request(raw).expect("valid").expect("complete");
        // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
        assert!(parse(b"GET /healthz HTTP/1.1\r\n\r\n").wants_keep_alive());
        assert!(!parse(b"GET /healthz HTTP/1.0\r\n\r\n").wants_keep_alive());
        // An explicit Connection header wins in both directions.
        assert!(!parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").wants_keep_alive());
        assert!(parse(b"GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").wants_keep_alive());
        // Unrecognized Connection options fall back to close.
        assert!(!parse(b"GET /x HTTP/1.1\r\nConnection: upgrade\r\n\r\n").wants_keep_alive());
    }

    #[test]
    fn parse_one_reports_consumed_bytes_for_pipelining() {
        let mut raw = b"POST /predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd".to_vec();
        let first_len = raw.len();
        raw.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        let (request, consumed) = parse_one(&raw).expect("valid").expect("complete");
        assert_eq!(request.body, b"abcd");
        assert_eq!(consumed, first_len);
        let (next, rest) = parse_one(&raw[consumed..])
            .expect("valid")
            .expect("complete");
        assert_eq!(next.target, "/healthz");
        assert_eq!(consumed + rest, raw.len());
    }

    #[test]
    fn negotiated_keep_alive_renders_in_the_response_head() {
        let mut r = Response::json(200, "{}".as_bytes().to_vec());
        r.close = false;
        let text = String::from_utf8(r.to_bytes()).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(!text.contains("Connection: close\r\n"), "{text}");
    }

    #[test]
    fn response_bytes_have_the_documented_shape() {
        let mut r = Response::json(503, "{}".as_bytes().to_vec());
        r.retry_after = Some(1);
        let text = String::from_utf8(r.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn head_and_body_concatenate_to_the_full_wire_bytes() {
        let mut r = Response::json(200, br#"{"model":"Kripke"}"#.to_vec());
        r.close = false;
        r.retry_after = Some(2);
        r.extra_headers.push(("X-Exareq-Degraded", "local".into()));
        let mut joined = r.head_bytes();
        joined.extend_from_slice(&r.body);
        assert_eq!(joined, r.to_bytes());
        assert!(r.head_bytes().ends_with(b"\r\n\r\n"));
    }

    #[test]
    fn every_response_carries_a_verifiable_body_digest() {
        let body = br#"{"model":"Kripke"}"#.to_vec();
        let r = Response::json(200, body.clone());
        let text = String::from_utf8(r.to_bytes()).unwrap();
        let expected = format!("X-Exareq-Digest: {}\r\n", digest_hex(&body));
        assert!(text.contains(&expected), "{text}");
        // A fixed vector pins the hash choice: FNV-1a 64, offset basis
        // 0xcbf29ce484222325, prime 0x100000001b3.
        assert_eq!(digest_hex(b""), "cbf29ce484222325");
        assert_eq!(digest_hex(b"a"), "af63dc4c8601ec8c");
    }

    #[test]
    fn extra_headers_render_without_touching_the_body() {
        let body = br#"{"x":1}"#.to_vec();
        let mut r = Response::json(200, body.clone());
        r.extra_headers
            .push(("X-Exareq-Degraded", "local".to_string()));
        let bytes = r.to_bytes();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.contains("X-Exareq-Degraded: local\r\n"), "{text}");
        let head_end = bytes.windows(4).position(|w| w == b"\r\n\r\n").unwrap();
        assert_eq!(&bytes[head_end + 4..], &body[..], "body bytes unchanged");
    }
}
