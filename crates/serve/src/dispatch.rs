//! Endpoint routing: one parsed [`Request`] in, one [`Response`] out.
//!
//! Every handler builds its body through [`crate::api`] so daemon answers
//! stay byte-identical to direct library calls. The request token carries
//! the `--request-deadline-ms` deadline; any checkpoint failure along the
//! way becomes a `504` — a parked request never wedges a worker past its
//! deadline.

use crate::api;
use crate::http::{Request, Response};
use crate::metrics::Metrics;
use crate::registry::ModelRegistry;
use exareq_core::cancel::CancelToken;
use std::time::Duration;

/// Sleep slice while honouring a `hold_ms` load-testing hold: short enough
/// that an expiring deadline turns into a 504 within ~5 ms.
const HOLD_SLICE: Duration = Duration::from_millis(5);

fn bad_request(reason: &str) -> Response {
    Response::json(400, api::error_body(reason).into_bytes())
}

fn not_found(reason: &str) -> Response {
    Response::json(404, api::error_body(reason).into_bytes())
}

fn deadline_expired() -> Response {
    Response::json(
        504,
        api::error_body("request deadline expired").into_bytes(),
    )
}

fn unknown_model(name: &str) -> Response {
    not_found(&format!("unknown model: {name}"))
}

/// Routes one request. Never panics; every path ends in a response.
pub fn dispatch(
    request: &Request,
    registry: &ModelRegistry,
    metrics: &Metrics,
    token: &CancelToken,
) -> Response {
    if token.checkpoint().is_err() {
        return deadline_expired();
    }
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => Response::json(200, api::health_body().into_bytes()),
        ("GET", "/models") => {
            registry.refresh();
            Response::json(200, api::models_body(&registry.snapshot()).into_bytes())
        }
        ("GET", "/metrics") => {
            let snap = registry.snapshot();
            Response::text(
                200,
                metrics
                    .render(snap.generation, snap.models.len())
                    .into_bytes(),
            )
        }
        ("POST", "/predict") => predict(request, registry, token),
        ("POST", "/upgrade") => upgrade(request, registry, token),
        ("POST", "/strawman") => strawman(request, registry, token),
        ("GET" | "POST", _) => not_found("no such endpoint"),
        _ => Response::json(405, api::error_body("method not allowed").into_bytes()),
    }
}

fn body_utf8(request: &Request) -> Result<&str, Response> {
    std::str::from_utf8(&request.body).map_err(|_| bad_request("body is not valid UTF-8"))
}

fn predict(request: &Request, registry: &ModelRegistry, token: &CancelToken) -> Response {
    let body = match body_utf8(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let query = match api::parse_predict(body) {
        Ok(q) => q,
        Err(reason) => return bad_request(&reason),
    };
    registry.refresh();
    let Some(app) = registry.get(&query.model) else {
        return unknown_model(&query.model);
    };
    // The load-testing hold: sleep in slices, converting deadline expiry
    // into the same 504 a slow real evaluation would earn.
    let mut held = Duration::ZERO;
    let hold = Duration::from_millis(query.hold_ms);
    while held < hold {
        if token.checkpoint().is_err() {
            return deadline_expired();
        }
        let slice = HOLD_SLICE.min(hold - held);
        std::thread::sleep(slice);
        held += slice;
    }
    if token.checkpoint().is_err() {
        return deadline_expired();
    }
    Response::json(200, api::predict_body(&app, query.p, query.n).into_bytes())
}

fn upgrade(request: &Request, registry: &ModelRegistry, token: &CancelToken) -> Response {
    let body = match body_utf8(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let query = match api::parse_upgrade(body) {
        Ok(q) => q,
        Err(reason) => return bad_request(&reason),
    };
    registry.refresh();
    let Some(app) = registry.get(&query.model) else {
        return unknown_model(&query.model);
    };
    let other = match &query.share_with {
        None => None,
        Some(name) => match registry.get(name) {
            Some(o) => Some(o),
            None => return unknown_model(name),
        },
    };
    if token.checkpoint().is_err() {
        return deadline_expired();
    }
    match api::upgrade_body(&app, other.as_deref().map(|o| (o, query.fraction))) {
        Ok(body) => Response::json(200, body.into_bytes()),
        Err(reason) => bad_request(&reason),
    }
}

fn strawman(request: &Request, registry: &ModelRegistry, token: &CancelToken) -> Response {
    let body = match body_utf8(request) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let model = match api::parse_strawman(body) {
        Ok(m) => m,
        Err(reason) => return bad_request(&reason),
    };
    registry.refresh();
    let Some(app) = registry.get(&model) else {
        return unknown_model(&model);
    };
    if token.checkpoint().is_err() {
        return deadline_expired();
    }
    Response::json(200, api::strawman_body(&app).into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact;
    use crate::registry::Fitter;
    use exareq_codesign::catalog;
    use exareq_core::cancel::Deadline;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn request(method: &str, target: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        }
    }

    fn no_fit() -> Box<Fitter> {
        Box::new(|_| Err("no fitting in this test".to_string()))
    }

    fn registry_with_catalog(tag: &str) -> (Arc<ModelRegistry>, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("exareq_dispatch_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        for app in catalog::paper_models() {
            std::fs::write(
                dir.join(format!("{}.json", app.name.to_lowercase())),
                artifact::requirements_to_string(&app),
            )
            .expect("write artifact");
        }
        let registry = Arc::new(ModelRegistry::new(&dir, no_fit()));
        registry.refresh();
        (registry, dir)
    }

    fn live_token() -> CancelToken {
        CancelToken::new().with_deadline(Deadline::after(Duration::from_secs(5)))
    }

    #[test]
    fn routes_every_endpoint() {
        let (registry, _dir) = registry_with_catalog("routes");
        let metrics = Metrics::new();
        let token = live_token();
        let ok = |r: Response| {
            assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
            r
        };
        ok(dispatch(
            &request("GET", "/healthz", ""),
            &registry,
            &metrics,
            &token,
        ));
        ok(dispatch(
            &request("GET", "/models", ""),
            &registry,
            &metrics,
            &token,
        ));
        ok(dispatch(
            &request("GET", "/metrics", ""),
            &registry,
            &metrics,
            &token,
        ));
        let predict = ok(dispatch(
            &request("POST", "/predict", r#"{"model":"Kripke","p":1e6,"n":4096}"#),
            &registry,
            &metrics,
            &token,
        ));
        assert_eq!(
            String::from_utf8(predict.body).unwrap(),
            api::predict_body(&catalog::kripke(), 1e6, 4096.0),
            "daemon answers must be byte-identical to direct library calls"
        );
        ok(dispatch(
            &request("POST", "/upgrade", r#"{"model":"MILC"}"#),
            &registry,
            &metrics,
            &token,
        ));
        ok(dispatch(
            &request("POST", "/strawman", r#"{"model":"LULESH"}"#),
            &registry,
            &metrics,
            &token,
        ));
    }

    #[test]
    fn unknown_routes_models_and_methods_map_to_404_405() {
        let (registry, _dir) = registry_with_catalog("missing");
        let metrics = Metrics::new();
        let token = live_token();
        let r = dispatch(&request("GET", "/nope", ""), &registry, &metrics, &token);
        assert_eq!(r.status, 404);
        let r = dispatch(
            &request("POST", "/predict", r#"{"model":"NoSuch","p":2,"n":3}"#),
            &registry,
            &metrics,
            &token,
        );
        assert_eq!(r.status, 404);
        let r = dispatch(&request("PUT", "/predict", ""), &registry, &metrics, &token);
        assert_eq!(r.status, 405);
        let r = dispatch(
            &request("POST", "/predict", "{ nope"),
            &registry,
            &metrics,
            &token,
        );
        assert_eq!(r.status, 400);
    }

    #[test]
    fn expired_deadline_is_504_everywhere() {
        let (registry, _dir) = registry_with_catalog("deadline");
        let metrics = Metrics::new();
        let expired = CancelToken::new().with_deadline(Deadline::after(Duration::ZERO));
        for (method, target, body) in [
            ("GET", "/healthz", ""),
            ("POST", "/predict", r#"{"model":"Kripke","p":2,"n":3}"#),
        ] {
            let r = dispatch(
                &request(method, target, body),
                &registry,
                &metrics,
                &expired,
            );
            assert_eq!(r.status, 504, "{method} {target}");
        }
    }

    #[test]
    fn hold_past_deadline_is_504_and_within_is_200() {
        let (registry, _dir) = registry_with_catalog("hold");
        let metrics = Metrics::new();
        let short = CancelToken::new().with_deadline(Deadline::after(Duration::from_millis(30)));
        let r = dispatch(
            &request(
                "POST",
                "/predict",
                r#"{"model":"Kripke","p":2,"n":3,"hold_ms":500}"#,
            ),
            &registry,
            &metrics,
            &short,
        );
        assert_eq!(r.status, 504);

        let roomy = live_token();
        let r = dispatch(
            &request(
                "POST",
                "/predict",
                r#"{"model":"Kripke","p":2,"n":3,"hold_ms":20}"#,
            ),
            &registry,
            &metrics,
            &roomy,
        );
        assert_eq!(r.status, 200);
    }
}
