//! Ablation **A1**: the PMNF model generator vs the Carrington-et-al.
//! simple-regression baseline (related work \[18\]: constant / linear /
//! logarithmic / exponential).
//!
//! The study fits both generators to the single-parameter requirement
//! shapes that actually occur in Table II and compares in-sample quality
//! and — the co-design-relevant number — extrapolation error two decades
//! beyond the measured range.
//!
//! Run with `cargo run --release -p exareq-bench --bin ablation_baseline`.

use exareq_bench::write_report;
use exareq_core::baseline::fit_baseline;
use exareq_core::fit::{fit_single, FitConfig};
use exareq_core::measurement::Experiment;

struct Shape {
    name: &'static str,
    f: fn(f64) -> f64,
}

fn main() {
    let shapes: Vec<Shape> = vec![
        Shape {
            name: "c*n         (Kripke flops)",
            f: |x| 1e7 * x,
        },
        Shape {
            name: "c*n*log n   (LULESH bytes)",
            f: |x| 1e5 * x * x.log2(),
        },
        Shape {
            name: "c*sqrt(n)   (Relearn bytes)",
            f: |x| 1e6 * x.sqrt(),
        },
        Shape {
            name: "c*n^1.5     (icoFoam flops)",
            f: |x| 1e8 * x.powf(1.5),
        },
        Shape {
            name: "c*p^0.25*log p (LULESH p-side)",
            f: |x| 1e5 * x.powf(0.25) * x.log2(),
        },
        Shape {
            name: "c*p^1.5     (MILC loads p-side)",
            f: |x| 1e5 * x.powf(1.5),
        },
        Shape {
            name: "c*log p     (Allreduce)",
            f: |x| 1e4 * x.log2(),
        },
        Shape {
            name: "c (constant)",
            f: |_| 4.2e6,
        },
    ];
    let xs: [f64; 7] = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    let horizon = 128.0 * 100.0; // two decades beyond the measured range
    let cfg = FitConfig::default();

    let mut out = String::new();
    out.push_str("== Ablation A1: PMNF vs Carrington-style baseline ==\n\n");
    out.push_str(&format!(
        "{:<34} {:>12} {:>12} {:>16} {:>16}\n",
        "shape", "PMNF smape%", "base smape%", "PMNF extrap err", "base extrap err"
    ));
    let mut pmnf_wins = 0;
    for s in &shapes {
        let exp = Experiment::from_fn(vec!["x"], &[&xs], |c| (s.f)(c[0]));
        let pm = fit_single(&exp, &cfg).expect("pmnf fit");
        let bl = fit_baseline(&exp).expect("baseline fit");
        let truth = (s.f)(horizon);
        let pm_err = ((pm.model.eval(&[horizon]) - truth) / truth).abs();
        let bl_err = ((bl.eval(horizon) - truth) / truth).abs();
        if pm_err <= bl_err + 1e-12 {
            pmnf_wins += 1;
        }
        let fmt_err = |e: f64| {
            if e > 100.0 {
                format!("{:>14.1e}x", e)
            } else {
                format!("{:>14.2}%", e * 100.0)
            }
        };
        out.push_str(&format!(
            "{:<34} {:>12.4} {:>12.4} {} {}\n",
            s.name,
            pm.smape,
            bl.smape,
            fmt_err(pm_err),
            fmt_err(bl_err)
        ));
    }
    let shape_count = shapes.len();
    out.push_str(&format!(
        "\nPMNF extrapolates at least as well on {pmnf_wins}/{shape_count} shapes.\n\
         The baseline's four-function vocabulary cannot express n·log n,\n\
         fractional powers, or power-log products — exactly the shapes that\n\
         dominate Table II — so its exascale projections go wrong by orders\n\
         of magnitude where PMNF stays exact (the paper's claim that its\n\
         method \"goes beyond\" simple regression [18]).\n",
    ));
    print!("{out}");
    write_report("ablation_baseline.txt", &out);
}
